// TreeIndex — the tree-query acceleration structure, and the heart of the
// poster's "novel mechanisms" claim.
//
// Each node receives a pre-order number `pre` and the maximum pre-order
// number in its subtree `post`, so
//     v is in subtree(u)  <=>  pre(u) <= pre(v) && pre(v) <= post(u).
// Subtree and ancestor/descendant predicates thus become *interval range
// predicates over integers*, which the query engine turns into B+-tree range
// scans instead of per-row tree walks — this is what removes the "lags
// concerning querying the tree".
//
// An Euler tour + sparse-table RMQ provides O(1) lowest-common-ancestor.

#ifndef DRUGTREE_PHYLO_TREE_INDEX_H_
#define DRUGTREE_PHYLO_TREE_INDEX_H_

#include <cstdint>
#include <vector>

#include "phylo/tree.h"
#include "util/result.h"

namespace drugtree {
namespace phylo {

/// Immutable acceleration index over a Tree. Build once after construction;
/// O(n log n) space for the LCA table.
class TreeIndex {
 public:
  /// Builds the index. Fails if the tree is empty or invalid.
  static util::Result<TreeIndex> Build(const Tree& tree);

  /// Pre-order number of a node (0-based; root is 0).
  int32_t Pre(NodeId id) const { return pre_[static_cast<size_t>(id)]; }

  /// Largest pre-order number within the node's subtree (inclusive).
  int32_t Post(NodeId id) const { return post_[static_cast<size_t>(id)]; }

  /// Depth in edges from the root.
  int32_t Depth(NodeId id) const { return depth_[static_cast<size_t>(id)]; }

  /// Number of nodes in the subtree rooted at `id`.
  int32_t SubtreeSize(NodeId id) const {
    return Post(id) - Pre(id) + 1;
  }

  /// Number of leaves in the subtree rooted at `id`.
  int32_t SubtreeLeafCount(NodeId id) const {
    return leaf_count_[static_cast<size_t>(id)];
  }

  /// True iff `descendant` lies in the subtree of `ancestor` (inclusive:
  /// a node is its own ancestor).
  bool IsAncestor(NodeId ancestor, NodeId descendant) const {
    return Pre(ancestor) <= Pre(descendant) && Pre(descendant) <= Post(ancestor);
  }

  /// Lowest common ancestor in O(1).
  NodeId Lca(NodeId a, NodeId b) const;

  /// Node with the given pre-order number.
  NodeId NodeAtPre(int32_t pre) const {
    return pre_to_node_[static_cast<size_t>(pre)];
  }

  /// All nodes in the subtree of `id`, by ascending pre-order — materialized
  /// from the interval, O(answer).
  std::vector<NodeId> SubtreeNodes(NodeId id) const;

  /// Patristic distance (sum of branch lengths) between two nodes, via LCA.
  double PathLength(NodeId a, NodeId b) const;

  size_t NumNodes() const { return pre_.size(); }

 private:
  TreeIndex() = default;

  const Tree* tree_ = nullptr;
  std::vector<int32_t> pre_;
  std::vector<int32_t> post_;
  std::vector<int32_t> depth_;
  std::vector<int32_t> leaf_count_;
  std::vector<double> root_dist_;     // branch-length distance from root
  std::vector<NodeId> pre_to_node_;

  // Euler tour for LCA.
  std::vector<NodeId> euler_;               // node at each tour step
  std::vector<int32_t> euler_depth_;        // depth at each tour step
  std::vector<int32_t> first_occurrence_;   // node -> first tour index
  // sparse_[k][i] = index (into euler_) of the min-depth step in
  // [i, i + 2^k).
  std::vector<std::vector<int32_t>> sparse_;
};

}  // namespace phylo
}  // namespace drugtree

#endif  // DRUGTREE_PHYLO_TREE_INDEX_H_
