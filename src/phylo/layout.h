// 2-D tree layout for rendering. The mobile layer ships node coordinates to
// the (simulated) client, and viewport queries select nodes by layout
// position, so layout is a server-side concern exactly as in DrugTree.

#ifndef DRUGTREE_PHYLO_LAYOUT_H_
#define DRUGTREE_PHYLO_LAYOUT_H_

#include <vector>

#include "phylo/tree.h"
#include "util/result.h"

namespace drugtree {
namespace phylo {

/// Position of one node in layout space. x grows with evolutionary distance
/// from the root (rectangular/"phylogram" layout); y is the leaf rank axis
/// in [0, num_leaves - 1].
struct NodePosition {
  NodeId id = kInvalidNode;
  double x = 0.0;
  double y = 0.0;
};

/// Layout options.
struct LayoutOptions {
  /// If true, x = branch-length distance from root (phylogram); otherwise
  /// x = depth in edges (cladogram).
  bool use_branch_lengths = true;
};

/// A computed layout: positions indexed by NodeId plus the bounding box.
class TreeLayout {
 public:
  /// Computes a rectangular layout: leaves get consecutive integer y in DFS
  /// order; internal nodes center on their children.
  static util::Result<TreeLayout> Compute(const Tree& tree,
                                          const LayoutOptions& options = {});

  const NodePosition& position(NodeId id) const {
    return positions_[static_cast<size_t>(id)];
  }
  const std::vector<NodePosition>& positions() const { return positions_; }

  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }

  /// Node ids whose position falls inside [x0,x1] x [y0,y1].
  std::vector<NodeId> NodesInRect(double x0, double y0, double x1,
                                  double y1) const;

 private:
  std::vector<NodePosition> positions_;
  double max_x_ = 0.0;
  double max_y_ = 0.0;
};

}  // namespace phylo
}  // namespace drugtree

#endif  // DRUGTREE_PHYLO_LAYOUT_H_
