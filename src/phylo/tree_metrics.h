// Tree comparison metrics. Robinson-Foulds distance scores reconstruction
// accuracy against the simulator's true tree (experiment E5).

#ifndef DRUGTREE_PHYLO_TREE_METRICS_H_
#define DRUGTREE_PHYLO_TREE_METRICS_H_

#include "phylo/tree.h"
#include "util/result.h"

namespace drugtree {
namespace phylo {

/// Robinson-Foulds distance between two trees over the same leaf set:
/// the number of non-trivial bipartitions present in exactly one tree.
/// Fails if the trees' leaf-name sets differ.
util::Result<int> RobinsonFoulds(const Tree& a, const Tree& b);

/// Normalized RF in [0, 1]: RF divided by the maximum possible
/// (2 * (n - 3) for two fully resolved unrooted trees; we use the sum of the
/// two trees' non-trivial split counts, which handles multifurcations).
util::Result<double> NormalizedRobinsonFoulds(const Tree& a, const Tree& b);

/// Sum of all branch lengths.
double TotalBranchLength(const Tree& tree);

/// True iff all leaves are equidistant from the root within `tolerance`
/// (i.e. the tree is ultrametric — what UPGMA guarantees).
bool IsUltrametric(const Tree& tree, double tolerance = 1e-6);

}  // namespace phylo
}  // namespace drugtree

#endif  // DRUGTREE_PHYLO_TREE_METRICS_H_
