#include "phylo/tree_metrics.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace drugtree {
namespace phylo {

namespace {

// Collects the non-trivial splits of a tree as sorted leaf-name sets,
// canonicalized to the side not containing the lexicographically smallest
// leaf (so rooting does not matter).
util::Result<std::set<std::vector<std::string>>> Splits(const Tree& tree) {
  std::vector<std::string> all_leaves = tree.LeafNames();
  std::sort(all_leaves.begin(), all_leaves.end());
  if (all_leaves.empty()) {
    return util::Status::InvalidArgument("tree has no leaves");
  }
  const std::string& anchor = all_leaves.front();

  // Leaf sets bottom-up.
  std::map<NodeId, std::vector<std::string>> below;
  std::set<std::vector<std::string>> splits;
  tree.PostOrder([&](NodeId id) {
    const Node& n = tree.node(id);
    std::vector<std::string> mine;
    if (n.IsLeaf()) {
      mine.push_back(n.name);
    } else {
      for (NodeId c : n.children) {
        auto& cv = below[c];
        mine.insert(mine.end(), cv.begin(), cv.end());
      }
      std::sort(mine.begin(), mine.end());
    }
    // Non-trivial split: 2 <= |side| <= n-2 after canonicalization.
    if (!n.IsRoot() && mine.size() >= 2 && mine.size() <= all_leaves.size() - 2) {
      std::vector<std::string> side = mine;
      if (std::binary_search(side.begin(), side.end(), anchor)) {
        // Complement.
        std::vector<std::string> comp;
        std::set_difference(all_leaves.begin(), all_leaves.end(), side.begin(),
                            side.end(), std::back_inserter(comp));
        side = std::move(comp);
      }
      if (side.size() >= 2) splits.insert(std::move(side));
    }
    below[id] = std::move(mine);
  });
  return splits;
}

}  // namespace

util::Result<int> RobinsonFoulds(const Tree& a, const Tree& b) {
  std::vector<std::string> la = a.LeafNames();
  std::vector<std::string> lb = b.LeafNames();
  std::sort(la.begin(), la.end());
  std::sort(lb.begin(), lb.end());
  if (la != lb) {
    return util::Status::InvalidArgument(
        "trees have different leaf sets; RF undefined");
  }
  DRUGTREE_ASSIGN_OR_RETURN(auto sa, Splits(a));
  DRUGTREE_ASSIGN_OR_RETURN(auto sb, Splits(b));
  int only_a = 0, only_b = 0;
  for (const auto& s : sa) {
    if (!sb.count(s)) ++only_a;
  }
  for (const auto& s : sb) {
    if (!sa.count(s)) ++only_b;
  }
  return only_a + only_b;
}

util::Result<double> NormalizedRobinsonFoulds(const Tree& a, const Tree& b) {
  DRUGTREE_ASSIGN_OR_RETURN(int rf, RobinsonFoulds(a, b));
  DRUGTREE_ASSIGN_OR_RETURN(auto sa, Splits(a));
  DRUGTREE_ASSIGN_OR_RETURN(auto sb, Splits(b));
  size_t denom = sa.size() + sb.size();
  if (denom == 0) return 0.0;
  return static_cast<double>(rf) / static_cast<double>(denom);
}

double TotalBranchLength(const Tree& tree) {
  double total = 0.0;
  tree.PreOrder([&](NodeId id) {
    if (!tree.node(id).IsRoot()) total += tree.node(id).branch_length;
  });
  return total;
}

bool IsUltrametric(const Tree& tree, double tolerance) {
  bool first = true;
  double depth0 = 0.0;
  bool ok = true;
  tree.PreOrder([&](NodeId id) {
    if (!tree.node(id).IsLeaf()) return;
    double d = tree.RootPathLength(id);
    if (first) {
      depth0 = d;
      first = false;
    } else if (std::abs(d - depth0) > tolerance) {
      ok = false;
    }
  });
  return ok;
}

}  // namespace phylo
}  // namespace drugtree
