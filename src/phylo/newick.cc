#include "phylo/newick.h"

#include <cctype>

#include "util/string_util.h"

namespace drugtree {
namespace phylo {

namespace {

class NewickParser {
 public:
  explicit NewickParser(const std::string& text) : text_(text) {}

  util::Result<Tree> Parse() {
    Tree tree;
    SkipSpace();
    DRUGTREE_RETURN_IF_ERROR(ParseSubtree(&tree, kInvalidNode));
    SkipSpace();
    if (!Consume(';')) return Error("expected ';' at end of tree");
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters after ';'");
    DRUGTREE_RETURN_IF_ERROR(tree.Validate());
    return tree;
  }

 private:
  util::Status ParseSubtree(Tree* tree, NodeId parent) {
    SkipSpace();
    NodeId me;
    if (Peek() == '(') {
      DRUGTREE_ASSIGN_OR_RETURN(me, AddNode(tree, parent));
      Consume('(');
      for (;;) {
        DRUGTREE_RETURN_IF_ERROR(ParseSubtree(tree, me));
        SkipSpace();
        if (Consume(',')) continue;
        if (Consume(')')) break;
        return Error("expected ',' or ')' in subtree");
      }
    } else {
      DRUGTREE_ASSIGN_OR_RETURN(me, AddNode(tree, parent));
    }
    SkipSpace();
    // Optional label.
    DRUGTREE_ASSIGN_OR_RETURN(std::string label, ParseLabel());
    tree->mutable_node(me).name = label;
    SkipSpace();
    // Optional branch length.
    if (Consume(':')) {
      SkipSpace();
      DRUGTREE_ASSIGN_OR_RETURN(double len, ParseNumber());
      if (len < 0) return Error("negative branch length");
      tree->mutable_node(me).branch_length = len;
    }
    return util::Status::OK();
  }

  util::Result<NodeId> AddNode(Tree* tree, NodeId parent) {
    if (parent == kInvalidNode) return tree->AddRoot();
    return tree->AddChild(parent);
  }

  util::Result<std::string> ParseLabel() {
    if (Peek() == '\'') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size()) {
        char c = text_[pos_];
        if (c == '\'') {
          // '' is an escaped quote inside a quoted label.
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\'') {
            out += '\'';
            pos_ += 2;
            continue;
          }
          ++pos_;
          return out;
        }
        out += c;
        ++pos_;
      }
      return util::Status(util::StatusCode::kParseError,
                          "unterminated quoted label");
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ',' || c == ')' || c == '(' || c == ':' || c == ';' ||
          std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      out += c;
      ++pos_;
    }
    return out;
  }

  util::Result<double> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected number");
    auto v = util::ParseDouble(text_.substr(start, pos_ - start));
    if (!v.ok()) return v.status();
    return *v;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  util::Status Error(const std::string& msg) const {
    return util::Status::ParseError(
        util::StringPrintf("Newick position %zu: %s", pos_, msg.c_str()));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void WriteSubtree(const Tree& tree, NodeId id, bool is_root, std::string* out) {
  const Node& n = tree.node(id);
  if (!n.IsLeaf()) {
    *out += '(';
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i) *out += ',';
      WriteSubtree(tree, n.children[i], false, out);
    }
    *out += ')';
  }
  // Quote labels containing Newick metacharacters.
  bool needs_quote = false;
  for (char c : n.name) {
    if (c == ',' || c == '(' || c == ')' || c == ':' || c == ';' || c == ' ' ||
        c == '\'') {
      needs_quote = true;
      break;
    }
  }
  if (needs_quote) {
    *out += '\'';
    for (char c : n.name) {
      if (c == '\'') *out += "''";
      else *out += c;
    }
    *out += '\'';
  } else {
    *out += n.name;
  }
  if (!is_root) *out += util::StringPrintf(":%.6f", n.branch_length);
}

}  // namespace

util::Result<Tree> ParseNewick(const std::string& text) {
  return NewickParser(text).Parse();
}

std::string WriteNewick(const Tree& tree) {
  if (tree.Empty()) return ";";
  std::string out;
  WriteSubtree(tree, tree.root(), true, &out);
  out += ';';
  return out;
}

}  // namespace phylo
}  // namespace drugtree
