#include "phylo/layout.h"

#include <algorithm>

namespace drugtree {
namespace phylo {

util::Result<TreeLayout> TreeLayout::Compute(const Tree& tree,
                                             const LayoutOptions& options) {
  if (tree.Empty()) {
    return util::Status::InvalidArgument("cannot lay out an empty tree");
  }
  TreeLayout layout;
  layout.positions_.resize(tree.NumNodes());

  // x: root distance (branch lengths or unit depth), top-down.
  tree.PreOrder([&](NodeId id) {
    const Node& n = tree.node(id);
    NodePosition& p = layout.positions_[static_cast<size_t>(id)];
    p.id = id;
    if (n.IsRoot()) {
      p.x = 0.0;
    } else {
      double step = options.use_branch_lengths ? n.branch_length : 1.0;
      p.x = layout.positions_[static_cast<size_t>(n.parent)].x + step;
    }
    layout.max_x_ = std::max(layout.max_x_, p.x);
  });

  // y: leaves get consecutive ranks in DFS order; internal nodes are the mean
  // of their children's y (post-order).
  double next_leaf_y = 0.0;
  // Pre-order assigns leaf ranks in display order.
  tree.PreOrder([&](NodeId id) {
    if (tree.node(id).IsLeaf()) {
      layout.positions_[static_cast<size_t>(id)].y = next_leaf_y;
      next_leaf_y += 1.0;
    }
  });
  layout.max_y_ = std::max(0.0, next_leaf_y - 1.0);
  tree.PostOrder([&](NodeId id) {
    const Node& n = tree.node(id);
    if (n.IsLeaf()) return;
    double sum = 0.0;
    for (NodeId c : n.children) {
      sum += layout.positions_[static_cast<size_t>(c)].y;
    }
    layout.positions_[static_cast<size_t>(id)].y =
        sum / static_cast<double>(n.children.size());
  });
  return layout;
}

std::vector<NodeId> TreeLayout::NodesInRect(double x0, double y0, double x1,
                                            double y1) const {
  std::vector<NodeId> out;
  for (const auto& p : positions_) {
    if (p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1) out.push_back(p.id);
  }
  return out;
}

}  // namespace phylo
}  // namespace drugtree
