// Rooted phylogenetic tree. Nodes are stored in a flat vector and addressed
// by integer NodeId, which is what the storage/query layers key on.

#ifndef DRUGTREE_PHYLO_TREE_H_
#define DRUGTREE_PHYLO_TREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/result.h"

namespace drugtree {
namespace phylo {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// One tree node. Leaves carry taxon names; internal nodes may be anonymous.
struct Node {
  NodeId id = kInvalidNode;
  NodeId parent = kInvalidNode;
  std::vector<NodeId> children;
  std::string name;           // taxon name for leaves; may be empty internally
  double branch_length = 0.0; // length of the edge to the parent

  bool IsLeaf() const { return children.empty(); }
  bool IsRoot() const { return parent == kInvalidNode; }
};

/// A rooted tree with arbitrary node degree (NJ trees root at a trifurcation).
///
/// Construction is via AddRoot/AddChild (builders and the Newick parser use
/// this), after which the structure is immutable in practice; Validate()
/// checks the invariants.
class Tree {
 public:
  Tree() = default;

  /// Creates the root node; fails if one already exists.
  util::Result<NodeId> AddRoot(std::string name = "", double branch_length = 0.0);

  /// Adds a child under `parent`; fails if parent is out of range.
  util::Result<NodeId> AddChild(NodeId parent, std::string name = "",
                                double branch_length = 0.0);

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumLeaves() const;
  bool Empty() const { return nodes_.empty(); }

  NodeId root() const { return nodes_.empty() ? kInvalidNode : 0; }

  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  Node& mutable_node(NodeId id) { return nodes_[static_cast<size_t>(id)]; }
  bool Contains(NodeId id) const {
    return id >= 0 && static_cast<size_t>(id) < nodes_.size();
  }

  /// All leaf node ids, in DFS (pre-order) order.
  std::vector<NodeId> Leaves() const;

  /// Leaf taxon names in DFS order.
  std::vector<std::string> LeafNames() const;

  /// Finds the first node with the given name, or kInvalidNode.
  NodeId FindByName(const std::string& name) const;

  /// Depth (edge count from root) of a node.
  int Depth(NodeId id) const;

  /// Maximum leaf depth.
  int Height() const;

  /// Sum of branch lengths from the root to `id`.
  double RootPathLength(NodeId id) const;

  /// Pre-order traversal; visit(node_id) for every node.
  void PreOrder(const std::function<void(NodeId)>& visit) const;

  /// Post-order traversal.
  void PostOrder(const std::function<void(NodeId)>& visit) const;

  /// Checks structural invariants: node 0 is the only root, parent/child
  /// links are mutually consistent, the graph is a single connected tree,
  /// branch lengths are non-negative, and leaf names are unique.
  util::Status Validate() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace phylo
}  // namespace drugtree

#endif  // DRUGTREE_PHYLO_TREE_H_
