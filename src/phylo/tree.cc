#include "phylo/tree.h"

#include <unordered_set>

#include "util/string_util.h"

namespace drugtree {
namespace phylo {

util::Result<NodeId> Tree::AddRoot(std::string name, double branch_length) {
  if (!nodes_.empty()) {
    return util::Status::AlreadyExists("tree already has a root");
  }
  Node n;
  n.id = 0;
  n.name = std::move(name);
  n.branch_length = branch_length;
  nodes_.push_back(std::move(n));
  return NodeId{0};
}

util::Result<NodeId> Tree::AddChild(NodeId parent, std::string name,
                                    double branch_length) {
  if (!Contains(parent)) {
    return util::Status::InvalidArgument(
        util::StringPrintf("parent node %d does not exist", parent));
  }
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.parent = parent;
  n.name = std::move(name);
  n.branch_length = branch_length;
  NodeId id = n.id;
  nodes_.push_back(std::move(n));
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  return id;
}

size_t Tree::NumLeaves() const {
  size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.IsLeaf()) ++n;
  }
  return n;
}

std::vector<NodeId> Tree::Leaves() const {
  std::vector<NodeId> out;
  PreOrder([&](NodeId id) {
    if (node(id).IsLeaf()) out.push_back(id);
  });
  return out;
}

std::vector<std::string> Tree::LeafNames() const {
  std::vector<std::string> out;
  PreOrder([&](NodeId id) {
    if (node(id).IsLeaf()) out.push_back(node(id).name);
  });
  return out;
}

NodeId Tree::FindByName(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n.name == name) return n.id;
  }
  return kInvalidNode;
}

int Tree::Depth(NodeId id) const {
  int d = 0;
  while (node(id).parent != kInvalidNode) {
    id = node(id).parent;
    ++d;
  }
  return d;
}

int Tree::Height() const {
  int h = 0;
  for (const auto& n : nodes_) {
    if (n.IsLeaf()) h = std::max(h, Depth(n.id));
  }
  return h;
}

double Tree::RootPathLength(NodeId id) const {
  double total = 0.0;
  while (node(id).parent != kInvalidNode) {
    total += node(id).branch_length;
    id = node(id).parent;
  }
  return total;
}

void Tree::PreOrder(const std::function<void(NodeId)>& visit) const {
  if (nodes_.empty()) return;
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    visit(id);
    const auto& kids = node(id).children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
}

void Tree::PostOrder(const std::function<void(NodeId)>& visit) const {
  if (nodes_.empty()) return;
  // Two-stack iterative post-order.
  std::vector<NodeId> stack = {root()};
  std::vector<NodeId> order;
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    order.push_back(id);
    for (NodeId c : node(id).children) stack.push_back(c);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) visit(*it);
}

util::Status Tree::Validate() const {
  if (nodes_.empty()) return util::Status::OK();
  if (!nodes_[0].IsRoot()) {
    return util::Status::Internal("node 0 is not the root");
  }
  std::unordered_set<std::string> leaf_names;
  size_t visited = 0;
  for (const auto& n : nodes_) {
    if (n.id != kInvalidNode && static_cast<size_t>(n.id) >= nodes_.size()) {
      return util::Status::Internal("node id out of range");
    }
    if (n.id != 0 && n.parent == kInvalidNode) {
      return util::Status::Internal(
          util::StringPrintf("node %d has no parent but is not the root", n.id));
    }
    if (n.branch_length < 0.0) {
      return util::Status::Internal(
          util::StringPrintf("node %d has negative branch length", n.id));
    }
    if (n.parent != kInvalidNode) {
      if (!Contains(n.parent)) {
        return util::Status::Internal("dangling parent pointer");
      }
      const auto& kids = node(n.parent).children;
      bool linked = false;
      for (NodeId c : kids) {
        if (c == n.id) {
          linked = true;
          break;
        }
      }
      if (!linked) {
        return util::Status::Internal(util::StringPrintf(
            "node %d not in its parent's child list", n.id));
      }
    }
    if (n.IsLeaf() && !n.name.empty()) {
      if (!leaf_names.insert(n.name).second) {
        return util::Status::Internal("duplicate leaf name: " + n.name);
      }
    }
  }
  PreOrder([&](NodeId) { ++visited; });
  if (visited != nodes_.size()) {
    return util::Status::Internal(util::StringPrintf(
        "tree is disconnected: visited %zu of %zu nodes", visited,
        nodes_.size()));
  }
  return util::Status::OK();
}

}  // namespace phylo
}  // namespace drugtree
