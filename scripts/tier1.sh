#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then an ASan+UBSan smoke run
# of the observability tests (the newest subsystem, and the one with the most
# concurrency) in a separate sanitized build tree.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

cmake -B build-asan -S . -DDRUGTREE_SANITIZE=address
cmake --build build-asan -j "$(nproc)" \
  --target obs_test obs_telemetry_test query_batch_test \
           storage_encoding_test query_adaptive_test
./build-asan/tests/obs_test
./build-asan/tests/obs_telemetry_test
./build-asan/tests/query_batch_test
./build-asan/tests/storage_encoding_test
./build-asan/tests/query_adaptive_test

# TSan smoke of the concurrency-bearing paths: the thread pool itself, the
# multi-channel network + windowed mediator, morsel-parallel execution, the
# multi-session serving layer (admission/scheduler/cancellation), the
# vectorized batch engine under parallelism + mid-query cancellation, and
# the sharded scatter-gather tier (replica failover races, per-shard
# deadline cancellation, cross-replica handle tracking), and the adaptive
# planning loop (shared plan cache / cost calibrator / adaptive controller
# hit from every serving slot), and the continuous-telemetry stack (gauge
# Set vs Snapshot hammer, sampler/alert engine ticked from serving threads).
cmake -B build-tsan -S . -DDRUGTREE_SANITIZE=thread
cmake --build build-tsan -j "$(nproc)" \
  --target util_thread_pool_test integration_async_test query_parallel_test \
           server_test query_batch_test shard_test query_adaptive_test \
           obs_test obs_telemetry_test
./build-tsan/tests/util_thread_pool_test
./build-tsan/tests/integration_async_test
./build-tsan/tests/query_parallel_test
./build-tsan/tests/server_test
./build-tsan/tests/query_batch_test
./build-tsan/tests/shard_test
./build-tsan/tests/query_adaptive_test
./build-tsan/tests/obs_test
./build-tsan/tests/obs_telemetry_test

# Statusz smoke: the serving layer's JSON introspection snapshot must parse
# and cover every exported surface (tracker tree, SLOs, occupancy, traces,
# timeline/alerts/health telemetry blocks).
scripts/statusz_check.sh build

# Standing perf-regression gate (E16): the deterministic telemetry timeline
# must match the recorded baseline point-for-point (and the selftest proves
# the gate rejects a synthetically regressed artifact).
scripts/perf_gate.sh build
scripts/perf_gate.sh build --selftest

# Release-build throughput smokes: the columnar batch engine must never be
# slower than the row engine on the scan-filter-project workload it targets,
# and encoded segments must hit >=2x compression on dict/RLE-friendly
# columns and never lose to the plain batch path on low-cardinality
# predicates.
cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-rel -j "$(nproc)" \
  --target bench_vectorized_smoke bench_encoding bench_shard bench_adaptive
./build-rel/bench/bench_vectorized_smoke
./build-rel/bench/bench_encoding

# Scale-out gate (E14): the 4-shard topology must deliver >= 2x the
# 1-shard analytic throughput on the heavy broadcast join, and the routed
# interactive path must keep its p99 inside the 2ms mobile budget.
./build-rel/bench/bench_shard --gate

# Adaptive-planning gate (E15): the virtual clock must leave calibration
# untouched, the plan cache must serve >= 90% of the skewed mix and cut
# optimizer (re-plan) time at least in half, and the adaptive controller
# must hold the interactive p99 inside the 2ms budget under analytic load.
./build-rel/bench/bench_adaptive --gate

# Tracing overhead A/B gate: the instrumented Release build (with trace
# capture on) must stay within budget of the DRUGTREE_OBS_NOOP build. Also
# gates the memory-tracker fast path (tracked vectorized smoke, <5%) and
# the continuous-telemetry sampler (DRUGTREE_TELEMETRY on/off, <5%).
scripts/obs_noop_ab.sh build-rel build-noop

# Informational perf diff vs the recorded baselines. Never fails tier-1:
# shared machines are noisy and baselines may predate hardware changes —
# read the table when it flags.
scripts/bench_diff.sh build \
  || echo "bench_diff: regressions flagged (informational)"

echo "tier-1 OK"
