#!/usr/bin/env bash
# Record the perf baseline for the E3 (federated integration), E9
# (end-to-end workflow), and E10 (multi-session serving) benches. Each run
# writes two artifacts into baselines/: BENCH_<name>.json (the process
# metric registry snapshot via --metrics-json) and BENCH_<name>.txt (the
# human-readable tables), so later PRs can diff the perf trajectory against
# this one.
#
# Usage: scripts/bench_baseline.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="baselines"
mkdir -p "${OUT_DIR}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target bench_integration bench_end_to_end bench_server

for name in bench_integration bench_end_to_end bench_server; do
  bin="${BUILD_DIR}/bench/${name}"
  echo "== ${name} -> ${OUT_DIR}/BENCH_${name}.{json,txt}"
  "${bin}" --metrics-json="${OUT_DIR}/BENCH_${name}.json" \
    | tee "${OUT_DIR}/BENCH_${name}.txt"
done

echo "baselines written to ${OUT_DIR}/"
