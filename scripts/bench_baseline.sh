#!/usr/bin/env bash
# Record the perf baseline for the E1 (tree query), E2 (optimizer ablation +
# vectorization), E3 (federated integration), E9 (end-to-end workflow),
# E10 (multi-session serving), E14 (sharded scale-out), and E15 (adaptive
# planning) benches. Each run writes two artifacts into
# baselines/: BENCH_<name>.json (the process metric registry snapshot via
# --metrics-json) and BENCH_<name>.txt (the human-readable tables), so later
# PRs can diff the perf trajectory against this one. The vectorized
# throughput smoke's row-vs-batch speedup is recorded as text as well, and
# the E16 telemetry timeline (bench_server --telemetry) is recorded as the
# reference artifact for scripts/perf_gate.sh. Every JSON artifact is
# checked to exist and be non-empty; a bench that silently writes nothing
# fails the script.
#
# Usage: scripts/bench_baseline.sh [build-dir]   (default: build)
# Env:
#   BENCH_OUT_DIR  where the artifacts land (default: baselines). bench_diff
#                  points this at a scratch dir to snapshot a fresh run.
#   BENCH_LIST     the metrics-bearing benches to run (default: all five).
#   BENCH_SMOKE    0 skips the vectorized throughput smoke (default: 1).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="${BENCH_OUT_DIR:-baselines}"
BENCH_LIST="${BENCH_LIST:-bench_integration bench_end_to_end bench_server \
bench_tree_query bench_optimizer_ablation bench_shard bench_adaptive}"
mkdir -p "${OUT_DIR}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  cmake -B "${BUILD_DIR}" -S .
fi
SMOKE="${BENCH_SMOKE:-1}"
SMOKE_TARGET=""
if [[ "${SMOKE}" == "1" ]]; then
  SMOKE_TARGET="bench_vectorized_smoke bench_encoding"
fi
# shellcheck disable=SC2086
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
  --target ${BENCH_LIST} ${SMOKE_TARGET}

for name in ${BENCH_LIST}; do
  bin="${BUILD_DIR}/bench/${name}"
  echo "== ${name} -> ${OUT_DIR}/BENCH_${name}.{json,txt}"
  rm -f "${OUT_DIR}/BENCH_${name}.json"
  "${bin}" --metrics-json="${OUT_DIR}/BENCH_${name}.json" \
    | tee "${OUT_DIR}/BENCH_${name}.txt"
  # A bench that exits zero but writes no registry snapshot would silently
  # record an empty baseline and every later bench_diff would "pass".
  if [[ ! -s "${OUT_DIR}/BENCH_${name}.json" ]]; then
    echo "bench_baseline: FAIL — ${name} produced no metrics JSON artifact" \
         "at ${OUT_DIR}/BENCH_${name}.json" >&2
    exit 1
  fi
done

if [[ "${SMOKE}" == "1" ]]; then
  echo "== bench_vectorized_smoke -> ${OUT_DIR}/BENCH_bench_vectorized_smoke.txt"
  "${BUILD_DIR}/bench/bench_vectorized_smoke" \
    | tee "${OUT_DIR}/BENCH_bench_vectorized_smoke.txt"
  # E13 encoding sweep: compression ratios are deterministic; timings vary
  # with the machine but the recorded speedups show the trajectory.
  echo "== bench_encoding -> ${OUT_DIR}/BENCH_bench_encoding.txt"
  "${BUILD_DIR}/bench/bench_encoding" \
    | tee "${OUT_DIR}/BENCH_bench_encoding.txt"
fi

# E12 memory-pressure saturation sweep: virtual clock, so the recorded
# table is bit-stable and diffable across PRs. Skipped on targeted
# re-records whose BENCH_LIST leaves bench_server unbuilt.
if [[ " ${BENCH_LIST} " == *" bench_server "* ]]; then
  echo "== bench_server --memsweep -> ${OUT_DIR}/BENCH_bench_server_memsweep.txt"
  "${BUILD_DIR}/bench/bench_server" --memsweep \
    | tee "${OUT_DIR}/BENCH_bench_server_memsweep.txt"

  # E16 telemetry timeline: the brown-out scenario on the virtual clock is
  # bit-deterministic, so the recorded timeline + alert transitions are the
  # reference artifact for scripts/perf_gate.sh.
  echo "== bench_server --telemetry -> ${OUT_DIR}/BENCH_bench_server_timeline.json"
  rm -f "${OUT_DIR}/BENCH_bench_server_timeline.json"
  "${BUILD_DIR}/bench/bench_server" --telemetry \
    --timeline-json="${OUT_DIR}/BENCH_bench_server_timeline.json" \
    | tee "${OUT_DIR}/BENCH_bench_server_telemetry.txt"
  if [[ ! -s "${OUT_DIR}/BENCH_bench_server_timeline.json" ]]; then
    echo "bench_baseline: FAIL — bench_server --telemetry produced no" \
         "timeline artifact" >&2
    exit 1
  fi
fi

echo "baselines written to ${OUT_DIR}/"
