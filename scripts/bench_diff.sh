#!/usr/bin/env bash
# Perf-trajectory diff against the recorded baselines. Re-runs the selected
# benches with --metrics-json into a scratch dir (via bench_baseline.sh), then
# compares per-operation span timings — span.<x>.total_micros divided by
# span.<x>.count — against baselines/BENCH_<name>.json. Per-op time is the
# stable quantity: raw counters drift with the benchmark harness's adaptive
# iteration counts, but micros-per-operation should not.
#
# Exits non-zero when any per-op timing regresses past the threshold, so
# callers decide whether that is fatal (tier1 treats it as informational:
# shared machines are noisy and baselines may predate hardware changes).
#
# Usage: scripts/bench_diff.sh [build-dir]
# Env:
#   BENCH_DIFF_LIST           benches to run (default: bench_tree_query)
#   BENCH_DIFF_THRESHOLD_PCT  allowed per-op regression (default: 25)
#   BENCH_DIFF_BASELINES      baseline dir (default: baselines)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
LIST="${BENCH_DIFF_LIST:-bench_tree_query}"
THRESHOLD="${BENCH_DIFF_THRESHOLD_PCT:-25}"
BASE_DIR="${BENCH_DIFF_BASELINES:-baselines}"

SCRATCH="$(mktemp -d)"
trap 'rm -rf "${SCRATCH}"' EXIT

# Fresh snapshots through the same driver that recorded the baselines.
BENCH_OUT_DIR="${SCRATCH}" BENCH_LIST="${LIST}" BENCH_SMOKE=0 \
  scripts/bench_baseline.sh "${BUILD_DIR}" >/dev/null 2>&1

status=0
for name in ${LIST}; do
  base="${BASE_DIR}/BENCH_${name}.json"
  fresh="${SCRATCH}/BENCH_${name}.json"
  if [[ ! -f "${base}" ]]; then
    echo "bench_diff: no baseline for ${name} (skipped)"
    continue
  fi
  python3 - "${base}" "${fresh}" "${THRESHOLD}" "${name}" <<'EOF' || status=1
import json, sys

base_path, fresh_path, threshold, name = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), sys.argv[4])

def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {m["name"]: m.get("value", 0) for m in doc["metrics"]
            if m.get("kind") == "counter"}

base, fresh = load(base_path), load(fresh_path)
suffix = ".total_micros"
rows, regressions = [], 0
for metric in sorted(base):
    if not metric.endswith(suffix):
        continue
    count_metric = metric[: -len(suffix)] + ".count"
    b_total, b_count = base[metric], base.get(count_metric, 0)
    f_total, f_count = fresh.get(metric, 0), fresh.get(count_metric, 0)
    # Skip spans absent from either run or too small to time reliably.
    if b_count <= 0 or f_count <= 0 or b_total < 10_000:
        continue
    b_per, f_per = b_total / b_count, f_total / f_count
    delta = 100.0 * (f_per - b_per) / b_per
    flag = ""
    if delta > threshold:
        flag = "  << REGRESSION"
        regressions += 1
    span = metric[: -len(suffix)]
    rows.append(f"  {span:<42} {b_per:10.2f}us {f_per:10.2f}us "
                f"{delta:+7.1f}%{flag}")

print(f"== bench_diff {name} (per-op span timings, threshold "
      f"+{threshold:.0f}%)")
print(f"  {'span':<42} {'baseline':>12} {'fresh':>12} {'delta':>8}")
print("\n".join(rows) if rows else "  (no comparable span timings)")
sys.exit(1 if regressions else 0)
EOF
done

if [[ ${status} -ne 0 ]]; then
  echo "bench_diff: per-op regressions flagged (threshold +${THRESHOLD}%)"
fi
exit ${status}
