#!/usr/bin/env bash
# Statusz smoke: `bench_server --statusz` must emit one parseable JSON
# object covering every introspection surface the serving layer exports —
# the memory-tracker tree, per-class SLO state, admission occupancy,
# scheduler slots, per-class counters, and TraceStore totals. Runs on a
# virtual clock, so the shape (not just the parse) is asserted exactly.
#
# Usage: scripts/statusz_check.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
if [[ ! -x "${BUILD_DIR}/bench/bench_server" ]]; then
  cmake -B "${BUILD_DIR}" -S .
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_server
fi

SNAPSHOT="$(mktemp)"
trap 'rm -f "${SNAPSHOT}"' EXIT
"${BUILD_DIR}/bench/bench_server" --statusz > "${SNAPSHOT}"

python3 - "${SNAPSHOT}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def need(cond, what):
    if not cond:
        sys.exit(f"statusz_check: FAIL — {what}")

# Memory-tracker tree: rooted at "server", recursive children, and every
# node carries the accounting quadruple.
mem = doc.get("memory")
need(isinstance(mem, dict), "missing memory tree")
need(mem.get("name") == "server", "memory root not named 'server'")
def walk(node, depth=0):
    for key in ("name", "used", "peak", "soft_limit", "hard_limit",
                "children"):
        need(key in node, f"tracker node {node.get('name')!r} missing {key}")
    need(node["peak"] >= node["used"] >= 0,
         f"tracker node {node['name']!r} has peak < used")
    for child in node["children"]:
        walk(child, depth + 1)
walk(mem)
classes = {c["name"] for c in mem["children"]}
need({"interactive", "analytic"} <= classes,
     f"memory tree missing class nodes (got {sorted(classes)})")

# Per-class SLO state with the burn-rate math surfaced.
slo = doc.get("slo")
need(isinstance(slo, dict), "missing slo section")
for cls in ("interactive", "analytic"):
    s = slo.get(cls)
    need(isinstance(s, dict), f"missing slo[{cls}]")
    for key in ("target_micros", "objective", "window_total", "window_good",
                "window_bad", "compliance", "burn_rate", "total"):
        need(key in s, f"slo[{cls}] missing {key}")
    need(0.0 <= s["compliance"] <= 1.0, f"slo[{cls}] compliance out of range")

# Admission occupancy, scheduler slots, per-class serving counters.
adm = doc.get("admission")
need(isinstance(adm, dict), "missing admission section")
for cls in ("interactive", "analytic"):
    a = adm.get(cls)
    need(isinstance(a, dict), f"missing admission[{cls}]")
    for key in ("queue_depth", "queue_capacity", "admitted", "shed"):
        need(key in a, f"admission[{cls}] missing {key}")

sched = doc.get("scheduler")
need(isinstance(sched, dict), "missing scheduler section")
for key in ("total_slots", "free_slots", "running", "paused"):
    need(key in sched, f"scheduler missing {key}")
need(sched["free_slots"] == sched["total_slots"],
     "drained server should have every slot free")

cls_section = doc.get("classes")
need(isinstance(cls_section, dict), "missing classes section")
for cls in ("interactive", "analytic"):
    c = cls_section.get(cls)
    need(isinstance(c, dict), f"missing classes[{cls}]")
    for key in ("admitted", "shed", "memory_shed", "completed", "failed",
                "memory_aborted", "cancelled", "deadline_missed"):
        need(key in c, f"classes[{cls}] missing {key}")
need(cls_section["interactive"]["completed"] > 0,
     "statusz workload completed no interactive requests")

# TraceStore totals match the served workload.
ts = doc.get("trace_store")
need(isinstance(ts, dict), "missing trace_store section")
for key in ("recorded", "dropped", "slow"):
    need(key in ts, f"trace_store missing {key}")
need(ts["recorded"] > 0, "trace_store recorded nothing")

print("statusz_check: OK —",
      f"{cls_section['interactive']['completed']} interactive +",
      f"{cls_section['analytic']['completed']} analytic served,",
      f"{ts['recorded']} traces, root peak {mem['peak']} bytes")
EOF
