#!/usr/bin/env bash
# Statusz smoke: `bench_server --statusz` must emit one parseable JSON
# object covering every introspection surface the serving layer exports —
# the memory-tracker tree, per-class SLO state, admission occupancy,
# scheduler slots, per-class counters, TraceStore totals, and the
# continuous-telemetry surfaces (timeline series summaries, alert rules and
# transitions, derived per-subsystem health). Runs on a virtual clock, so
# the shape (not just the parse) is asserted exactly.
# A second pass validates the sharded topology snapshot from
# `bench_shard --statusz`: contiguous interval ranges covering the pre
# axis, per-replica server snapshots carrying their shard identities and
# health rollups, and the router's decision counters.
#
# Usage: scripts/statusz_check.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
if [[ ! -x "${BUILD_DIR}/bench/bench_server" || \
      ! -x "${BUILD_DIR}/bench/bench_shard" ]]; then
  cmake -B "${BUILD_DIR}" -S .
  cmake --build "${BUILD_DIR}" -j "$(nproc)" \
    --target bench_server bench_shard
fi

SNAPSHOT="$(mktemp)"
SHARD_SNAPSHOT="$(mktemp)"
trap 'rm -f "${SNAPSHOT}" "${SHARD_SNAPSHOT}"' EXIT
"${BUILD_DIR}/bench/bench_server" --statusz > "${SNAPSHOT}"
"${BUILD_DIR}/bench/bench_shard" --statusz > "${SHARD_SNAPSHOT}"

python3 - "${SNAPSHOT}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def need(cond, what):
    if not cond:
        sys.exit(f"statusz_check: FAIL — {what}")

# Single-node shape: a shard identity block, explicitly standalone.
shard = doc.get("shard")
need(isinstance(shard, dict), "missing shard identity block")
need(shard.get("id") == "", "single-node server carries a shard id")
need(shard.get("role") == "standalone",
     f"single-node role is {shard.get('role')!r}, want 'standalone'")

# Memory-tracker tree: rooted at "server", recursive children, and every
# node carries the accounting quadruple.
mem = doc.get("memory")
need(isinstance(mem, dict), "missing memory tree")
need(mem.get("name") == "server", "memory root not named 'server'")
def walk(node, depth=0):
    for key in ("name", "used", "peak", "soft_limit", "hard_limit",
                "children"):
        need(key in node, f"tracker node {node.get('name')!r} missing {key}")
    need(node["peak"] >= node["used"] >= 0,
         f"tracker node {node['name']!r} has peak < used")
    for child in node["children"]:
        walk(child, depth + 1)
walk(mem)
classes = {c["name"] for c in mem["children"]}
need({"interactive", "analytic"} <= classes,
     f"memory tree missing class nodes (got {sorted(classes)})")

# Per-class SLO state with the burn-rate math surfaced.
slo = doc.get("slo")
need(isinstance(slo, dict), "missing slo section")
for cls in ("interactive", "analytic"):
    s = slo.get(cls)
    need(isinstance(s, dict), f"missing slo[{cls}]")
    for key in ("target_micros", "objective", "window_total", "window_good",
                "window_bad", "compliance", "burn_rate", "total"):
        need(key in s, f"slo[{cls}] missing {key}")
    need(0.0 <= s["compliance"] <= 1.0, f"slo[{cls}] compliance out of range")

# Admission occupancy, scheduler slots, per-class serving counters.
adm = doc.get("admission")
need(isinstance(adm, dict), "missing admission section")
for cls in ("interactive", "analytic"):
    a = adm.get(cls)
    need(isinstance(a, dict), f"missing admission[{cls}]")
    for key in ("queue_depth", "queue_capacity", "admitted", "shed"):
        need(key in a, f"admission[{cls}] missing {key}")

sched = doc.get("scheduler")
need(isinstance(sched, dict), "missing scheduler section")
for key in ("total_slots", "free_slots", "running", "paused"):
    need(key in sched, f"scheduler missing {key}")
need(sched["free_slots"] == sched["total_slots"],
     "drained server should have every slot free")

cls_section = doc.get("classes")
need(isinstance(cls_section, dict), "missing classes section")
for cls in ("interactive", "analytic"):
    c = cls_section.get(cls)
    need(isinstance(c, dict), f"missing classes[{cls}]")
    for key in ("admitted", "shed", "memory_shed", "completed", "failed",
                "memory_aborted", "cancelled", "deadline_missed"):
        need(key in c, f"classes[{cls}] missing {key}")
need(cls_section["interactive"]["completed"] > 0,
     "statusz workload completed no interactive requests")

# TraceStore totals match the served workload.
ts = doc.get("trace_store")
need(isinstance(ts, dict), "missing trace_store section")
for key in ("recorded", "dropped", "slow"):
    need(key in ts, f"trace_store missing {key}")
need(ts["recorded"] > 0, "trace_store recorded nothing")

# Adaptive-planning surfaces: plan cache counters, calibrator coefficients,
# and the per-class controller snapshot.
pc = doc.get("plan_cache")
need(isinstance(pc, dict), "missing plan_cache section")
for key in ("entries", "variants", "capacity", "hits", "rebinds", "misses",
            "invalidations", "installs", "variant_evictions"):
    need(key in pc, f"plan_cache missing {key}")
need(pc["installs"] >= pc["entries"], "plan_cache entries exceed installs")

cal = doc.get("cost_calibrator")
need(isinstance(cal, dict), "missing cost_calibrator section")
for key in ("observations", "updates", "version", "coefficients"):
    need(key in cal, f"cost_calibrator missing {key}")
need(cal["version"] == 0,
     "virtual-clock workload moved cost coefficients (determinism break)")
coeffs = cal["coefficients"]
for key in ("seq_scan_row", "index_probe", "hash_build_row", "hash_probe_row",
            "nested_loop_row", "encoded_scan_discount"):
    need(key in coeffs, f"cost_calibrator coefficients missing {key}")

ada = doc.get("adaptive")
need(isinstance(ada, dict), "missing adaptive section")
for key in ("enabled", "decisions", "steps_down", "steps_up",
            "last_p99_micros", "analytic"):
    need(key in ada, f"adaptive missing {key}")
for key in ("batch_size", "parallelism"):
    need(key in ada["analytic"], f"adaptive.analytic missing {key}")

# Continuous-telemetry surfaces: the timeline ring summaries, the alert
# engine's rule/transition state, and the derived per-subsystem health.
tl = doc.get("timeline")
need(isinstance(tl, dict), "missing timeline section")
need(tl.get("enabled") is True, "telemetry not enabled in statusz workload")
need(tl.get("sample_interval_micros", 0) > 0, "bad sample_interval_micros")
need(tl.get("samples", 0) > 0, "sampler never ran during statusz workload")
series = tl.get("series")
need(isinstance(series, list) and len(series) > 0, "timeline has no series")
for s in series:
    for key in ("name", "points", "observed", "first_t", "last_t", "last",
                "min", "max", "mean"):
        need(key in s, f"timeline series {s.get('name')!r} missing {key}")
    need(s["observed"] >= s["points"] >= 1,
         f"timeline series {s['name']!r} observed < retained points")
    need(s["last_t"] >= s["first_t"],
         f"timeline series {s['name']!r} timestamps inverted")
series_names = {s["name"] for s in series}
need("slo.interactive.burn_rate" in series_names,
     "timeline lacks the interactive burn-rate series")
need("memory.pressure_pct" in series_names,
     "timeline lacks the memory pressure series")

al = doc.get("alerts")
need(isinstance(al, dict), "missing alerts section")
need(isinstance(al.get("firing"), int), "alerts.firing is not an int")
rules = al.get("rules")
need(isinstance(rules, list) and len(rules) > 0, "alert engine has no rules")
for r in rules:
    for key in ("name", "kind", "series", "subsystem", "severity", "state",
                "fired", "resolved"):
        need(key in r, f"alert rule {r.get('name')!r} missing {key}")
    need(r["state"] in ("inactive", "pending", "firing"),
         f"alert rule {r['name']!r} has unknown state {r['state']!r}")
need({"interactive_burn", "memory_pressure"} <=
     {r["name"] for r in rules}, "default alert rules missing")
need(isinstance(al.get("transitions"), list), "alerts missing transitions")

health = doc.get("health")
need(isinstance(health, dict), "missing health section")
need(health.get("overall") in ("healthy", "degraded", "critical"),
     f"bad overall health {health.get('overall')!r}")
subs = health.get("subsystems")
need(isinstance(subs, dict), "missing health.subsystems")
for sub in ("admission", "scheduler", "plan_cache", "memory", "serving"):
    need(subs.get(sub) in ("healthy", "degraded", "critical"),
         f"health.subsystems missing or bad {sub!r}")
need(health["overall"] == "healthy",
     "drained statusz workload should end healthy")

print("statusz_check: OK —",
      f"{cls_section['interactive']['completed']} interactive +",
      f"{cls_section['analytic']['completed']} analytic served,",
      f"{ts['recorded']} traces, plan cache {pc['hits']}/{pc['installs']}",
      f"hits/installs, root peak {mem['peak']} bytes,",
      f"{len(series)} timeline series / {tl['samples']} samples,",
      f"{len(rules)} alert rules, health {health['overall']}")
EOF

python3 - "${SHARD_SNAPSHOT}" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def need(cond, what):
    if not cond:
        sys.exit(f"statusz_check (sharded): FAIL — {what}")

router = doc.get("router")
need(isinstance(router, dict), "missing router section")
shards = router.get("num_shards")
replicas = router.get("replicas_per_shard")
need(isinstance(shards, int) and shards >= 1, "bad num_shards")
need(isinstance(replicas, int) and replicas >= 1, "bad replicas_per_shard")

# Routing decision counters: the workload must have exercised the router.
dec = router.get("decisions")
need(isinstance(dec, dict), "missing decisions block")
for key in ("routed", "scatter", "broadcast", "fallback", "failed"):
    need(key in dec, f"decisions missing {key}")
need(dec["failed"] == 0, "router recorded failed requests")
need(sum(dec[k] for k in ("routed", "scatter", "broadcast", "fallback")) > 0,
     "router served nothing")

# Topology: contiguous interval ranges covering the pre axis from 0, each
# shard carrying its fan-out counters and fully-identified replicas.
topo = router.get("topology")
need(isinstance(topo, list) and len(topo) == shards,
     f"topology has {len(topo) if isinstance(topo, list) else '?'} shards, "
     f"want {shards}")
expect_lo = 0
for s, entry in enumerate(topo):
    need(entry.get("shard") == s, f"shard {s} out of order")
    need(entry.get("pre_lo") == expect_lo,
         f"shard {s} range starts at {entry.get('pre_lo')}, want {expect_lo}")
    need(entry["pre_hi"] >= entry["pre_lo"], f"shard {s} range inverted")
    expect_lo = entry["pre_hi"] + 1
    need(entry.get("leaves", 0) >= 1, f"shard {s} owns no leaves")
    for key in ("sub_requests", "shed", "deadline_missed", "failovers",
                "hop_cost_micros"):
        need(key in entry, f"shard {s} missing {key}")
    reps = entry.get("replicas")
    need(isinstance(reps, list) and len(reps) == replicas,
         f"shard {s} has wrong replica count")
    for r, rep in enumerate(reps):
        need(rep.get("id") == f"s{s}r{r}", f"replica {s}/{r} misidentified")
        need(rep.get("down") is False, f"replica {s}/{r} marked down")
        need(rep.get("health") in ("healthy", "degraded", "critical"),
             f"replica {s}/{r} health is {rep.get('health')!r}")
        inner = rep.get("statusz")
        need(isinstance(inner, dict), f"replica {s}/{r} missing statusz")
        need(inner.get("shard", {}).get("id") == f"s{s}r{r}",
             f"replica {s}/{r} server snapshot lacks its shard id")
        need(inner.get("shard", {}).get("role") == "replica",
             f"replica {s}/{r} server role is not 'replica'")
        need("memory" in inner and "scheduler" in inner,
             f"replica {s}/{r} snapshot not a full server statusz")
        # Every replica carries the full telemetry surface: its own
        # timeline, alert engine, and derived health rollup.
        need(inner.get("timeline", {}).get("enabled") is True,
             f"replica {s}/{r} snapshot lacks an enabled timeline")
        need(isinstance(inner.get("alerts", {}).get("rules"), list),
             f"replica {s}/{r} snapshot lacks alert rules")
        need(inner.get("health", {}).get("overall") == rep.get("health"),
             f"replica {s}/{r} top-level health disagrees with its rollup")
total_subs = sum(e["sub_requests"] for e in topo)
need(total_subs > 0, "no sub-requests reached any shard")

coord = router.get("coordinator")
need(isinstance(coord, dict), "missing coordinator snapshot")
need(coord.get("shard", {}).get("id") == "coord",
     "coordinator snapshot lacks its identity")

print("statusz_check (sharded): OK —",
      f"{shards}x{replicas} topology, pre axis [0,{expect_lo - 1}],",
      f"{total_subs} sub-requests,",
      f"decisions {dec['routed']}/{dec['scatter']}/{dec['broadcast']}/"
      f"{dec['fallback']} routed/scatter/broadcast/fallback")
EOF
