#!/usr/bin/env bash
# DRUGTREE_OBS_NOOP A/B overhead gate: the fully-instrumented Release build
# (spans compiled in, trace capture enabled via DRUGTREE_TRACE_CAPTURE=1)
# must stay within a small budget of the noop build (DRUGTREE_OBS_NOOP=ON,
# spans compiled out) on the tree-query bench.
#
# Shared machines show ~10% run-to-run wall noise, so a naive single-run
# comparison would flake. The gate interleaves A/B process runs and takes
# the best-of-N per benchmark (noise is strictly additive, so min converges
# on the true cost), then gates on the geomean of the per-benchmark ratios.
#
# A second gate covers the memory-tracker fast path: the vectorized smoke
# in tracked mode (DRUGTREE_SMOKE_TRACKED=1) interleaves the same batch
# query with and without a per-query tracker hierarchy attached and fails
# if charging costs more than DRUGTREE_TRACKER_BUDGET_PCT percent.
#
# Usage: scripts/obs_noop_ab.sh [instrumented-build-dir] [noop-build-dir]
# Env:
#   DRUGTREE_AB_BUDGET_PCT       allowed geomean overhead (default: 5)
#   DRUGTREE_AB_REPS             interleaved A/B repetitions (default: 5)
#   DRUGTREE_AB_FILTER           --benchmark_filter for the probe workload
#   DRUGTREE_TRACKER_BUDGET_PCT  tracker fast-path budget (default: 5)
#   DRUGTREE_TELEMETRY_BUDGET_PCT  telemetry on/off budget (default: 5)
#   DRUGTREE_TELEMETRY_AB_REPS     telemetry lane repetitions (default: 10)
set -euo pipefail
cd "$(dirname "$0")/.."

ON_DIR="${1:-build-rel}"
OFF_DIR="${2:-build-noop}"
BUDGET="${DRUGTREE_AB_BUDGET_PCT:-5}"
REPS="${DRUGTREE_AB_REPS:-5}"
FILTER="${DRUGTREE_AB_FILTER:-BM_SubtreeQuery_(Naive|Optimized)/1024|BM_AncestorQuery_Optimized/4096}"

if [[ ! -d "${ON_DIR}" ]]; then
  cmake -B "${ON_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
fi
if [[ ! -d "${OFF_DIR}" ]]; then
  cmake -B "${OFF_DIR}" -S . -DCMAKE_BUILD_TYPE=Release -DDRUGTREE_OBS_NOOP=ON
fi
cmake --build "${ON_DIR}" -j "$(nproc)" \
  --target bench_tree_query bench_vectorized_smoke bench_encoding bench_server
cmake --build "${OFF_DIR}" -j "$(nproc)" --target bench_tree_query

SCRATCH="$(mktemp -d)"
trap 'rm -rf "${SCRATCH}"' EXIT

echo "== obs noop A/B gate: ${REPS} interleaved reps, budget +${BUDGET}%"
for i in $(seq 1 "${REPS}"); do
  DRUGTREE_TRACE_CAPTURE=1 "${ON_DIR}/bench/bench_tree_query" \
    --benchmark_filter="${FILTER}" \
    --benchmark_out="${SCRATCH}/on_${i}.json" \
    --benchmark_out_format=json >/dev/null 2>&1
  "${OFF_DIR}/bench/bench_tree_query" \
    --benchmark_filter="${FILTER}" \
    --benchmark_out="${SCRATCH}/off_${i}.json" \
    --benchmark_out_format=json >/dev/null 2>&1
done

python3 - "${SCRATCH}" "${REPS}" "${BUDGET}" <<'EOF'
import json, math, sys

scratch, reps, budget = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])

def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: b["real_time"] for b in doc["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"}

on, off = {}, {}
for i in range(1, reps + 1):
    for name, v in load(f"{scratch}/on_{i}.json").items():
        on.setdefault(name, []).append(v)
    for name, v in load(f"{scratch}/off_{i}.json").items():
        off.setdefault(name, []).append(v)

common = sorted(set(on) & set(off))
if not common:
    sys.exit("obs_noop_ab: no common benchmarks between the two builds")

ratios = []
for name in common:
    a, b = min(on[name]), min(off[name])
    ratios.append(a / b)
    print(f"  {name:<40} traced={a:12.1f}ns noop={b:12.1f}ns "
          f"{100 * (a / b - 1):+.1f}%")

geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
overhead = 100 * (geomean - 1)
print(f"  geomean overhead {overhead:+.2f}% (budget +{budget:.0f}%)")
if overhead > budget:
    sys.exit(f"obs_noop_ab: FAIL — tracing overhead {overhead:+.2f}% exceeds "
             f"+{budget:.0f}% budget")
print("obs_noop_ab: OK")
EOF

# Continuous-telemetry overhead lane: the same serving probe workload with
# the sampler + alert engine live (DRUGTREE_TELEMETRY=1, 10ms cadence) vs
# disabled (DRUGTREE_TELEMETRY=0, null telemetry surfaces). Interleaved
# best-of-N like the tracing gate; the probe prints one machine-readable
# `abprobe_micros:` wall total per run.
TELEMETRY_BUDGET="${DRUGTREE_TELEMETRY_BUDGET_PCT:-5}"
# The serving probe is short (~20ms) so per-run scheduler jitter is large
# relative to the budget; more interleaved reps than the tracing gate let
# the best-of-N min actually converge.
TELEMETRY_REPS="${DRUGTREE_TELEMETRY_AB_REPS:-10}"
echo "== telemetry on/off gate: ${TELEMETRY_REPS} interleaved reps, budget +${TELEMETRY_BUDGET}%"
for i in $(seq 1 "${TELEMETRY_REPS}"); do
  DRUGTREE_TELEMETRY=1 "${ON_DIR}/bench/bench_server" --abprobe \
    > "${SCRATCH}/tel_on_${i}.txt"
  DRUGTREE_TELEMETRY=0 "${ON_DIR}/bench/bench_server" --abprobe \
    > "${SCRATCH}/tel_off_${i}.txt"
done

python3 - "${SCRATCH}" "${TELEMETRY_REPS}" "${TELEMETRY_BUDGET}" <<'EOF'
import sys

scratch, reps, budget = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])

def load(path):
    with open(path) as f:
        for line in f:
            if line.startswith("abprobe_micros:"):
                return float(line.split(":", 1)[1])
    sys.exit(f"obs_noop_ab: {path} carries no abprobe_micros line")

on = min(load(f"{scratch}/tel_on_{i}.txt") for i in range(1, reps + 1))
off = min(load(f"{scratch}/tel_off_{i}.txt") for i in range(1, reps + 1))
overhead = 100 * (on / off - 1)
print(f"  telemetry on={on:.0f}us off={off:.0f}us ({overhead:+.2f}%, "
      f"budget +{budget:.0f}%)")
if overhead > budget:
    sys.exit(f"obs_noop_ab: FAIL — telemetry overhead {overhead:+.2f}% "
             f"exceeds +{budget:.0f}% budget")
print("obs_noop_ab: telemetry gate OK")
EOF

echo "== memory-tracker fast-path gate (budget +${DRUGTREE_TRACKER_BUDGET_PCT:-5}%)"
DRUGTREE_SMOKE_TRACKED=1 "${ON_DIR}/bench/bench_vectorized_smoke"

echo "== encoded-scan tracker gate (budget +${DRUGTREE_TRACKER_BUDGET_PCT:-5}%)"
DRUGTREE_ENCODED_TRACKED=1 "${ON_DIR}/bench/bench_encoding"
