#!/usr/bin/env bash
# Standing perf-regression gate over the E16 telemetry timeline.
#
# `bench_server --telemetry` runs a fixed brown-out scenario on a virtual
# clock and emits {"timeline":...,"alerts":...} — every sampled point and
# every alert transition is bit-deterministic, so the artifact is diffable
# byte-for-byte across machines and PRs. The gate re-runs the scenario and
# compares the fresh artifact against the recorded baseline
# (baselines/BENCH_bench_server_timeline.json):
#
#   * the series set must match exactly (a vanished series is a telemetry
#     regression even when nothing else moved);
#   * per series: observed count, point count, and every timestamp must
#     match exactly; point values must match within PERF_GATE_TOL_PCT
#     percent (default 0 = exact);
#   * alert transitions (rule, from, to, at_micros) must match exactly —
#     an alert that fires earlier, later, or not at all is a behaviour
#     change, not noise.
#
# Modes:
#   scripts/perf_gate.sh [build-dir]             gate against the baseline
#   scripts/perf_gate.sh [build-dir] --record    (re)record the baseline
#   scripts/perf_gate.sh [build-dir] --selftest  prove the gate can fail:
#       perturb a copy of the fresh artifact (one point value, one
#       transition timestamp) and assert the comparison rejects it, then
#       assert the unperturbed artifact passes against itself.
#
# Env: PERF_GATE_TOL_PCT  point-value tolerance band in percent (default 0)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build"
MODE="gate"
for arg in "$@"; do
  case "${arg}" in
    --record) MODE="record" ;;
    --selftest) MODE="selftest" ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done
BASELINE="baselines/BENCH_bench_server_timeline.json"
TOL="${PERF_GATE_TOL_PCT:-0}"

if [[ ! -x "${BUILD_DIR}/bench/bench_server" ]]; then
  cmake -B "${BUILD_DIR}" -S .
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_server
fi

SCRATCH="$(mktemp -d)"
trap 'rm -rf "${SCRATCH}"' EXIT
FRESH="${SCRATCH}/fresh.json"
"${BUILD_DIR}/bench/bench_server" --telemetry \
  --timeline-json="${FRESH}" > "${SCRATCH}/telemetry.txt" 2>&1 \
  || { cat "${SCRATCH}/telemetry.txt"; echo "perf_gate: bench failed"; exit 1; }
[[ -s "${FRESH}" ]] || { echo "perf_gate: bench produced no artifact"; exit 1; }

compare() {  # compare <baseline> <fresh> <tol_pct>
  python3 - "$1" "$2" "$3" <<'EOF'
import json, sys

base_path, fresh_path, tol_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(base_path) as f:
    base = json.load(f)
with open(fresh_path) as f:
    fresh = json.load(f)

failures = []
def fail(what):
    failures.append(what)

def series_map(doc):
    return {s["name"]: s for s in doc["timeline"]["series"]}

bs, fs = series_map(base), series_map(fresh)
for name in sorted(set(bs) - set(fs)):
    fail(f"series vanished: {name}")
for name in sorted(set(fs) - set(bs)):
    fail(f"series appeared: {name}")

def close(a, b):
    if a == b:
        return True
    if tol_pct <= 0:
        return False
    scale = max(abs(a), abs(b), 1e-12)
    return abs(a - b) <= scale * tol_pct / 100.0

checked_points = 0
for name in sorted(set(bs) & set(fs)):
    b, f = bs[name], fs[name]
    if b["observed"] != f["observed"]:
        fail(f"{name}: observed {b['observed']} -> {f['observed']}")
    if len(b["points"]) != len(f["points"]):
        fail(f"{name}: {len(b['points'])} -> {len(f['points'])} points")
        continue
    for i, (bp, fp) in enumerate(zip(b["points"], f["points"])):
        if bp[0] != fp[0]:
            fail(f"{name}[{i}]: timestamp {bp[0]} -> {fp[0]}")
        if not close(bp[1], fp[1]):
            fail(f"{name}[{i}] @t={bp[0]}: value {bp[1]} -> {fp[1]} "
                 f"(tol {tol_pct}%)")
        checked_points += 1

def transitions(doc):
    return [(t["rule"], t["from"], t["to"], t["at_micros"])
            for t in doc["alerts"]["transitions"]]

bt, ft = transitions(base), transitions(fresh)
if bt != ft:
    fail(f"alert transitions differ: baseline {bt} vs fresh {ft}")

if failures:
    for f in failures[:20]:
        print(f"  perf_gate: {f}")
    if len(failures) > 20:
        print(f"  perf_gate: ... and {len(failures) - 20} more")
    sys.exit(f"perf_gate: FAIL — {len(failures)} divergence(s) vs baseline")
print(f"perf_gate: OK — {len(bs)} series, {checked_points} points, "
      f"{len(bt)} alert transitions match (tol {tol_pct}%)")
EOF
}

case "${MODE}" in
  record)
    mkdir -p baselines
    cp "${FRESH}" "${BASELINE}"
    cp "${SCRATCH}/telemetry.txt" "baselines/BENCH_bench_server_telemetry.txt"
    echo "perf_gate: recorded ${BASELINE}"
    ;;
  selftest)
    # The gate must reject a synthetically regressed baseline...
    python3 - "${FRESH}" "${SCRATCH}/perturbed.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
# Regress one sampled point by 50% and slide one alert transition by 1ms.
for s in doc["timeline"]["series"]:
    if s["points"]:
        s["points"][-1][1] = s["points"][-1][1] * 1.5 + 1.0
        break
if doc["alerts"]["transitions"]:
    doc["alerts"]["transitions"][0]["at_micros"] += 1000
with open(sys.argv[2], "w") as f:
    json.dump(doc, f)
EOF
    if compare "${SCRATCH}/perturbed.json" "${FRESH}" "${TOL}" \
        > "${SCRATCH}/selftest.out" 2>&1; then
      cat "${SCRATCH}/selftest.out"
      echo "perf_gate: SELFTEST FAIL — perturbed baseline was accepted"
      exit 1
    fi
    # ...and accept the genuine artifact against itself.
    compare "${FRESH}" "${FRESH}" "${TOL}" > /dev/null
    echo "perf_gate: selftest OK — perturbed baseline rejected," \
         "identical artifact accepted"
    ;;
  gate)
    if [[ ! -s "${BASELINE}" ]]; then
      echo "perf_gate: FAIL — no baseline at ${BASELINE};" \
           "run scripts/perf_gate.sh --record (or scripts/bench_baseline.sh)"
      exit 1
    fi
    compare "${BASELINE}" "${FRESH}" "${TOL}"
    ;;
esac
