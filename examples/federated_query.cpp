// Federated integration demo: shows the mediator pulling from the three
// simulated remote databases, the cost of per-record vs batched fetching,
// and the semantic cache warming up under point requests.
//
//   $ ./build/examples/federated_query

#include <cstdio>

#include "integration/mediator.h"
#include "integration/prefetcher.h"
#include "util/clock.h"
#include "util/string_util.h"
#include "util/rng.h"

using namespace drugtree;
using namespace drugtree::integration;

int main() {
  util::SimulatedClock clock;
  NetworkParams net_params;  // 50 ms latency, 1 MB/s
  SimulatedNetwork network(&clock, net_params);
  util::Rng rng(2026);

  ProteinSourceParams pp;
  pp.num_families = 4;
  pp.taxa_per_family = 12;
  auto proteins = ProteinSource::Create(pp, &network, &rng);
  chem::LigandGenParams lp;
  auto ligands = LigandSource::Create(200, lp, &network, &rng);
  if (!proteins.ok() || !ligands.ok()) {
    std::fprintf(stderr, "source setup failed\n");
    return 1;
  }
  std::vector<std::string> accs = proteins->ListAccessions();
  std::vector<std::string> lig_ids = ligands->ListIds();
  ActivityGenParams ap;
  auto activities =
      ActivitySource::Create(accs, lig_ids, ap, &network, &rng);
  if (!activities.ok()) {
    std::fprintf(stderr, "activity source failed\n");
    return 1;
  }
  SemanticCache cache(4 * 1024 * 1024);
  Mediator mediator(&*proteins, &*ligands, &*activities, &cache);

  auto report = [&](const char* label, int64_t start_us, uint64_t start_req) {
    std::printf("%-34s %8.1f ms  %4llu requests\n", label,
                (clock.NowMicros() - start_us) / 1000.0,
                (unsigned long long)(network.num_requests() - start_req));
  };

  // Integration, batched vs per-record.
  {
    int64_t t0 = clock.NowMicros();
    uint64_t r0 = network.num_requests();
    MediatorOptions opts;
    opts.batch_requests = true;
    auto ds = mediator.IntegrateAll(opts);
    if (!ds.ok()) return 1;
    report("IntegrateAll (batched)", t0, r0);
  }
  {
    int64_t t0 = clock.NowMicros();
    uint64_t r0 = network.num_requests();
    MediatorOptions opts;
    opts.batch_requests = false;
    opts.use_cache = false;
    auto ds = mediator.IntegrateAll(opts);
    if (!ds.ok()) return 1;
    report("IntegrateAll (per-record)", t0, r0);
  }

  // Point lookups: cold, then cache-warm.
  {
    cache.Clear();
    MediatorOptions opts;
    int64_t t0 = clock.NowMicros();
    uint64_t r0 = network.num_requests();
    for (int i = 0; i < 10; ++i) {
      if (!mediator.GetProtein(accs[static_cast<size_t>(i)], opts).ok()) return 1;
    }
    report("10 point lookups (cold)", t0, r0);
    t0 = clock.NowMicros();
    r0 = network.num_requests();
    for (int i = 0; i < 10; ++i) {
      if (!mediator.GetProtein(accs[static_cast<size_t>(i)], opts).ok()) return 1;
    }
    report("10 point lookups (warm)", t0, r0);
  }

  // Tree-aware prefetching: one miss widens to the family.
  {
    cache.Clear();
    PrefetcherOptions popts;
    TreeAwarePrefetcher prefetcher(&mediator, &cache, popts);
    int64_t t0 = clock.NowMicros();
    uint64_t r0 = network.num_requests();
    // Touch 12 proteins of the same family (typical clade drill-down).
    auto fam = proteins->FetchFamily("family-2");
    for (const auto& rec : fam) {
      if (!prefetcher.GetProtein(rec.accession).ok()) return 1;
    }
    report("family drill-down (prefetching)", t0, r0);
    std::printf("  prefetch usefulness: %.0f%% (%llu of %llu installs used)\n",
                prefetcher.stats().Usefulness() * 100,
                (unsigned long long)prefetcher.stats().useful_prefetches,
                (unsigned long long)prefetcher.stats().prefetched_records);
  }
  std::printf("\nsemantic cache: %llu hits, %llu misses, %s resident\n",
              (unsigned long long)cache.stats().hits,
              (unsigned long long)cache.stats().misses,
              util::HumanBytes(cache.used_bytes()).c_str());
  return 0;
}
