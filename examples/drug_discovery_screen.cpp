// Drug-discovery screening — the pharma workflow the poster's introduction
// motivates. An analyst picks a target clade on the phylogeny, finds its
// strongest known binder, and screens the ligand library for similar
// compounds that are still drug-like.
//
//   $ ./build/examples/drug_discovery_screen

#include <cstdio>

#include "chem/fingerprint.h"
#include "chem/similarity.h"
#include "chem/smiles.h"
#include "core/drugtree.h"
#include "util/clock.h"

using namespace drugtree;

int main() {
  util::SimulatedClock clock;
  core::BuildOptions options;
  options.seed = 11;
  options.num_families = 5;
  options.taxa_per_family = 12;
  options.num_ligands = 600;
  auto built = core::DrugTree::Build(options, &clock);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  auto& dt = *built;

  // Step 1: pick the clade with the most assay data (hot target family).
  auto hot = dt->Query(
      "SELECT t.node_id, o.activity_count FROM tree_nodes t "
      "JOIN node_overlay o ON t.node_id = o.node_id "
      "WHERE t.depth = 1 ORDER BY o.activity_count DESC, t.node_id LIMIT 1");
  if (!hot.ok() || hot->result.rows.empty()) {
    std::fprintf(stderr, "no clade found\n");
    return 1;
  }
  long long clade = hot->result.rows[0][0].AsInt64();
  std::printf("target clade: node %lld (%lld assays in subtree)\n\n", clade,
              (long long)hot->result.rows[0][1].AsInt64());

  // Step 2: the strongest binder against that clade.
  char sql[1024];
  std::snprintf(sql, sizeof(sql),
                "SELECT l.ligand_id, l.smiles, a.affinity_nm "
                "FROM proteins p "
                "JOIN activities a ON p.accession = a.accession "
                "JOIN ligands l ON a.ligand_id = l.ligand_id "
                "WHERE SUBTREE(p.node_id, %lld) "
                "ORDER BY a.affinity_nm, l.ligand_id LIMIT 1",
                clade);
  auto lead = dt->Query(sql);
  if (!lead.ok() || lead->result.rows.empty()) {
    std::fprintf(stderr, "no lead compound found\n");
    return 1;
  }
  std::string lead_id = lead->result.rows[0][0].AsString();
  std::string lead_smiles = lead->result.rows[0][1].AsString();
  std::printf("lead compound: %s (%.1f nM)\n  %s\n\n", lead_id.c_str(),
              lead->result.rows[0][2].AsDouble(), lead_smiles.c_str());

  // Step 3: similarity screen of the whole library against the lead.
  auto lead_mol = chem::ParseSmiles(lead_smiles);
  if (!lead_mol.ok()) {
    std::fprintf(stderr, "bad lead SMILES\n");
    return 1;
  }
  auto lead_fp = chem::ComputeFingerprint(*lead_mol);
  chem::SimilarityIndex index(1024);
  auto* ligands = dt->ligands();
  auto id_col = *ligands->schema().IndexOf("ligand_id");
  auto smiles_col = *ligands->schema().IndexOf("smiles");
  auto drug_col = *ligands->schema().IndexOf("drug_like");
  std::vector<std::string> ids;
  for (auto rid : ligands->LiveRows()) {
    const auto& row = ligands->row(rid);
    auto mol = chem::ParseSmiles(row[smiles_col].AsString());
    if (!mol.ok()) continue;
    auto fp = chem::ComputeFingerprint(*mol);
    if (!fp.ok()) continue;
    if (!index.Add(static_cast<int64_t>(ids.size()), *fp).ok()) continue;
    ids.push_back(row[id_col].AsString());
  }
  auto hits = index.SearchTopK(*lead_fp, 10);
  if (!hits.ok()) {
    std::fprintf(stderr, "similarity search failed\n");
    return 1;
  }
  std::printf("top analogues by Tanimoto similarity (drug-like flag):\n");
  for (const auto& hit : *hits) {
    const std::string& lig = ids[static_cast<size_t>(hit.id)];
    // Look the drug-likeness flag up relationally.
    auto rows = ligands->IndexLookup("ligand_id", storage::Value::String(lig));
    bool drug_like = rows.ok() && !rows->empty() &&
                     ligands->row((*rows)[0])[drug_col].AsBool();
    std::printf("  %-10s sim=%.3f %s\n", lig.c_str(), hit.similarity,
                drug_like ? "[drug-like]" : "");
  }
  return 0;
}
