// Quickstart: build a DrugTree over synthetic federated sources and run the
// three canonical analyst queries.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/drugtree.h"
#include "util/clock.h"

using drugtree::core::BuildOptions;
using drugtree::core::DrugTree;

int main() {
  // A simulated clock makes the "remote" source fetches instantaneous in
  // wall-clock terms while still modelling their latency.
  drugtree::util::SimulatedClock clock;

  BuildOptions options;
  options.seed = 7;
  options.num_families = 4;
  options.taxa_per_family = 16;
  options.num_ligands = 300;

  auto built = DrugTree::Build(options, &clock);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  auto& dt = *built;
  std::printf("DrugTree built: %zu tree nodes, %lld proteins, "
              "%lld ligands, %lld activities\n\n",
              dt->tree().NumNodes(),
              (long long)dt->overlay()->proteins()->NumRows(),
              (long long)dt->ligands()->NumRows(),
              (long long)dt->activities()->NumRows());

  // Pick an interesting clade: the root's first child.
  auto root = dt->tree().root();
  auto clade = dt->tree().node(root).children.front();

  const char* queries[] = {
      // 1. Who lives in this clade?
      "SELECT p.accession, p.family, p.organism FROM proteins p "
      "WHERE SUBTREE(p.node_id, %d) LIMIT 8",
      // 2. Strongest binders against clade members.
      "SELECT p.accession, l.name, a.affinity_nm FROM proteins p "
      "JOIN activities a ON p.accession = a.accession "
      "JOIN ligands l ON a.ligand_id = l.ligand_id "
      "WHERE SUBTREE(p.node_id, %d) AND a.affinity_nm < 200.0 "
      "ORDER BY a.affinity_nm LIMIT 8",
      // 3. Overlay rollup per family.
      "SELECT p.family, COUNT(*) AS assays, AVG(a.affinity_nm) AS avg_nm "
      "FROM proteins p JOIN activities a ON p.accession = a.accession "
      "GROUP BY p.family ORDER BY assays DESC",
  };
  for (const char* fmt : queries) {
    char sql[1024];
    std::snprintf(sql, sizeof(sql), fmt, clade);
    std::printf("SQL> %s\n", sql);
    auto outcome = dt->Query(sql);
    if (!outcome.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", outcome->result.ToString(10).c_str());
  }

  // EXPLAIN ANALYZE: re-run the overlay join with per-operator
  // instrumentation. Every operator reports rows_out, Next() calls, and
  // cumulative time; the root's row count equals the materialized result's.
  {
    char sql[1024];
    std::snprintf(sql, sizeof(sql),
                  "EXPLAIN ANALYZE SELECT p.accession, l.name, a.affinity_nm "
                  "FROM proteins p "
                  "JOIN activities a ON p.accession = a.accession "
                  "JOIN ligands l ON a.ligand_id = l.ligand_id "
                  "WHERE SUBTREE(p.node_id, %d) AND a.affinity_nm < 200.0 "
                  "ORDER BY a.affinity_nm LIMIT 8",
                  clade);
    std::printf("SQL> %s\n", sql);
    auto outcome = dt->Query(sql);
    if (!outcome.ok()) {
      std::fprintf(stderr, "explain analyze failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", outcome->analyzed_plan.c_str());
    std::printf("(materialized %zu rows)\n\n", outcome->result.rows.size());
  }

  // Live update: a new assay invalidates caches and shifts the overlay.
  auto leaf = dt->tree().Leaves().front();
  const std::string& acc = dt->tree().node(leaf).name;
  auto st = dt->AddActivity(acc, "L000001", 3.5, "Kd");
  if (!st.ok()) {
    std::fprintf(stderr, "AddActivity failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("added a 3.5 nM measurement for %s; epoch bumped\n",
              acc.c_str());
  return 0;
}
