// Mobile analyst session — replays a generated interaction trace against the
// DrugTree server on three device profiles, with and without the mobile
// optimizations, and prints the latency report.
//
//   $ ./build/examples/mobile_session

#include <cstdio>

#include "core/drugtree.h"
#include "util/clock.h"

using namespace drugtree;

int main() {
  util::SimulatedClock clock;
  core::BuildOptions options;
  options.seed = 23;
  options.num_families = 6;
  options.taxa_per_family = 24;
  options.num_ligands = 400;
  auto built = core::DrugTree::Build(options, &clock);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    return 1;
  }
  auto& dt = *built;
  std::printf("tree: %zu nodes, %zu leaves\n\n", dt->tree().NumNodes(),
              dt->tree().NumLeaves());

  mobile::TraceParams tp;
  tp.num_actions = 40;
  auto trace = dt->MakeTrace(tp, 99);

  struct Config {
    const char* label;
    mobile::DeviceProfile device;
    bool lod;
    bool delta;
  };
  Config configs[] = {
      {"phone-3G, full shipping", mobile::DeviceProfile::Phone3G(), false,
       false},
      {"phone-3G, LOD + delta", mobile::DeviceProfile::Phone3G(), true, true},
      {"tablet-wifi, LOD + delta", mobile::DeviceProfile::TabletWifi(), true,
       true},
      {"desktop-lan, LOD + delta", mobile::DeviceProfile::DesktopLan(), true,
       true},
  };
  for (const auto& config : configs) {
    mobile::SessionOptions sopts;
    sopts.progressive_lod = config.lod;
    sopts.delta_encoding = config.delta;
    auto session = dt->MakeSession(config.device, sopts,
                                   query::PlannerOptions::Optimized());
    auto report = session.Run(trace);
    if (!report.ok()) {
      std::fprintf(stderr, "session failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("== %s ==\n%s\n", config.label, report->ToString().c_str());
  }
  return 0;
}
