// Tests for the SQL extensions: DISTINCT and BETWEEN, plus network failure
// injection with retry in the integration layer.

#include <gtest/gtest.h>

#include "integration/network.h"
#include "integration/protein_source.h"
#include "query/planner.h"
#include "util/clock.h"
#include "util/rng.h"

namespace drugtree {
namespace query {
namespace {

using storage::IndexKind;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = Schema::Create({{"k", ValueType::kInt64, false},
                                  {"g", ValueType::kString, false}});
    ASSERT_TRUE(schema.ok());
    table_ = std::make_unique<Table>("t", *schema);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(table_
                      ->Insert({Value::Int64(i % 10),
                                Value::String(i % 2 ? "odd" : "even")})
                      .ok());
    }
    ASSERT_TRUE(table_->CreateIndex("k", IndexKind::kBTree).ok());
    ASSERT_TRUE(table_->Analyze().ok());
    ASSERT_TRUE(catalog_.Register(table_.get()).ok());
    planner_ = std::make_unique<Planner>(&catalog_);
  }

  QueryResult Run(const std::string& sql,
                  PlannerOptions opts = PlannerOptions::Optimized()) {
    auto outcome = planner_->Run(sql, opts);
    EXPECT_TRUE(outcome.ok()) << sql << ": " << outcome.status();
    return outcome.ok() ? outcome->result : QueryResult{};
  }

  std::unique_ptr<Table> table_;
  Catalog catalog_;
  std::unique_ptr<Planner> planner_;
};

TEST_F(ExtensionsTest, DistinctRemovesDuplicates) {
  auto r = Run("SELECT DISTINCT t.g FROM t ORDER BY t.g");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "even");
  EXPECT_EQ(r.rows[1][0].AsString(), "odd");
}

TEST_F(ExtensionsTest, DistinctOnMultipleColumns) {
  auto r = Run("SELECT DISTINCT t.k, t.g FROM t");
  EXPECT_EQ(r.rows.size(), 10u);  // (k, parity-of-k) pairs are 1:1
}

TEST_F(ExtensionsTest, DistinctWithoutKeywordKeepsDuplicates) {
  auto r = Run("SELECT t.g FROM t");
  EXPECT_EQ(r.rows.size(), 30u);
}

TEST_F(ExtensionsTest, DistinctInteractsWithLimit) {
  auto r = Run("SELECT DISTINCT t.k FROM t ORDER BY t.k LIMIT 4");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[3][0].AsInt64(), 3);
}

TEST_F(ExtensionsTest, DistinctInCacheKey) {
  auto s1 = ParseQuery("SELECT DISTINCT t.g FROM t");
  auto s2 = ParseQuery("SELECT t.g FROM t");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(s1->ToString(), s2->ToString());
}

TEST_F(ExtensionsTest, BetweenDesugarsToRange) {
  auto r = Run("SELECT t.k FROM t WHERE t.k BETWEEN 3 AND 5 "
               "ORDER BY t.k");
  ASSERT_EQ(r.rows.size(), 9u);  // 3,4,5 x3 each
  EXPECT_EQ(r.rows.front()[0].AsInt64(), 3);
  EXPECT_EQ(r.rows.back()[0].AsInt64(), 5);
}

TEST_F(ExtensionsTest, BetweenUsesBTreeIndex) {
  auto outcome = planner_->Run(
      "SELECT t.k FROM t WHERE t.k BETWEEN 3 AND 5",
      PlannerOptions::Optimized());
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome->physical_plan.find("IndexScan"), std::string::npos)
      << outcome->physical_plan;
}

TEST_F(ExtensionsTest, BetweenInsideConjunction) {
  auto r = Run(
      "SELECT t.k FROM t WHERE t.k BETWEEN 2 AND 8 AND t.g = 'even' "
      "ORDER BY t.k");
  for (const auto& row : r.rows) {
    EXPECT_GE(row[0].AsInt64(), 2);
    EXPECT_LE(row[0].AsInt64(), 8);
    EXPECT_EQ(row[0].AsInt64() % 2, 0);
  }
}

TEST_F(ExtensionsTest, NotBetween) {
  auto r = Run("SELECT DISTINCT t.k FROM t WHERE NOT t.k BETWEEN 2 AND 7 "
               "ORDER BY t.k");
  ASSERT_EQ(r.rows.size(), 4u);  // 0, 1, 8, 9
  EXPECT_EQ(r.rows[0][0].AsInt64(), 0);
  EXPECT_EQ(r.rows[3][0].AsInt64(), 9);
}

TEST_F(ExtensionsTest, BetweenSyntaxErrors) {
  EXPECT_TRUE(planner_->Run("SELECT t.k FROM t WHERE t.k BETWEEN 3", {})
                  .status()
                  .IsParseError());
  EXPECT_TRUE(planner_->Run("SELECT t.k FROM t WHERE t.k BETWEEN AND 5", {})
                  .status()
                  .IsParseError());
}

}  // namespace
}  // namespace query

namespace integration {
namespace {

TEST(FailureInjectionTest, NoFailuresByDefault) {
  util::SimulatedClock clock;
  SimulatedNetwork net(&clock, NetworkParams{});
  for (int i = 0; i < 50; ++i) net.Request(100);
  EXPECT_EQ(net.num_failures(), 0u);
}

TEST(FailureInjectionTest, FailuresChargeTimeoutAndRetry) {
  util::SimulatedClock clock;
  NetworkParams params;
  params.latency_micros = 1000;
  params.bandwidth_bytes_per_sec = 0;
  params.jitter_fraction = 0;
  params.failure_probability = 0.5;
  params.timeout_micros = 10'000;
  SimulatedNetwork net(&clock, params, /*seed=*/3);
  int64_t total = 0;
  for (int i = 0; i < 200; ++i) total += net.Request(0);
  // Every delivery costs 1 ms; every failure costs 10 ms; with p=0.5 there
  // is ~1 failure per delivery.
  EXPECT_GT(net.num_failures(), 50u);
  EXPECT_LT(net.num_failures(), 350u);
  int64_t expected = 200 * 1000 +
                     static_cast<int64_t>(net.num_failures()) * 10'000;
  EXPECT_EQ(total, expected);
  EXPECT_EQ(clock.NowMicros(), expected);
}

TEST(FailureInjectionTest, TryRequestReportsOutcome) {
  util::SimulatedClock clock;
  NetworkParams params;
  params.failure_probability = 1.0;
  params.timeout_micros = 500;
  SimulatedNetwork net(&clock, params);
  int64_t charged = 0;
  EXPECT_FALSE(net.TryRequest(10, &charged));
  EXPECT_EQ(charged, 500);
  EXPECT_EQ(net.num_failures(), 1u);
}

TEST(FailureInjectionTest, AlwaysFailingLinkStillTerminates) {
  util::SimulatedClock clock;
  NetworkParams params;
  params.failure_probability = 1.0;
  params.timeout_micros = 1;
  SimulatedNetwork net(&clock, params);
  EXPECT_GE(net.Request(10), 1000);  // capped retries, no hang
}

TEST(FailureInjectionTest, SourcesSurviveFlakyLink) {
  util::SimulatedClock clock;
  NetworkParams params;
  params.latency_micros = 100;
  params.failure_probability = 0.3;
  params.timeout_micros = 1000;
  params.jitter_fraction = 0;
  SimulatedNetwork net(&clock, params, 11);
  util::Rng rng(4);
  ProteinSourceParams pp;
  pp.num_families = 2;
  pp.taxa_per_family = 4;
  pp.sequence_length = 40;
  auto src = ProteinSource::Create(pp, &net, &rng);
  ASSERT_TRUE(src.ok());
  // Every fetch succeeds despite the 30% failure rate (retries absorb it).
  for (const auto& acc : src->ListAccessions()) {
    EXPECT_TRUE(src->FetchByAccession(acc).ok());
  }
  EXPECT_GT(net.num_failures(), 0u);
}

}  // namespace
}  // namespace integration
}  // namespace drugtree
