#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace drugtree {
namespace util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  Status s = Status::NotFound("no such thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "no such thing");
  EXPECT_EQ(s.ToString(), "NotFound: no such thing");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::Internal("boom");
  Status copy = s;
  EXPECT_EQ(copy, s);
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsInternal());
  EXPECT_EQ(moved.message(), "boom");
}

TEST(StatusTest, CopyAssignOverwrites) {
  Status a = Status::Internal("a");
  Status b = Status::NotFound("b");
  a = b;
  EXPECT_TRUE(a.IsNotFound());
  a = Status::OK();
  EXPECT_TRUE(a.ok());
}

TEST(StatusTest, WithContextPrefixes) {
  Status s = Status::IoError("disk gone").WithContext("loading proteins");
  EXPECT_EQ(s.message(), "loading proteins: disk gone");
  EXPECT_TRUE(s.IsIoError());
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTimeout), "Timeout");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
}

TEST(StatusTest, CancelledCarriesMessageAndSurvivesContext) {
  Status s = Status::Cancelled("deadline exceeded");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_EQ(s.ToString(), "Cancelled: deadline exceeded");
  Status wrapped = s.WithContext("serving request 7");
  EXPECT_TRUE(wrapped.IsCancelled());
  EXPECT_EQ(wrapped.message(), "serving request 7: deadline exceeded");
  EXPECT_FALSE(s.IsTimeout());
  EXPECT_FALSE(s.IsAborted());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  DRUGTREE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  DRUGTREE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = Status::NotFound("gone");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
  EXPECT_EQ(err.ValueOr(-1), -1);
  EXPECT_EQ(ok.ValueOr(-1), 42);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = DoublePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = DoublePositive(0);
  EXPECT_TRUE(err.status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace util
}  // namespace drugtree
