// Model-based aggregate verification: on random data, GROUP BY results must
// match a brute-force reference computed with plain C++ maps — across naive
// and optimized plans. Plus a SMILES-parser fuzz sweep (never crashes, only
// clean ParseError or success).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "chem/properties.h"
#include "chem/smiles.h"
#include "query/planner.h"
#include "util/rng.h"

namespace drugtree {
namespace query {
namespace {

using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

class AggregateModel : public ::testing::TestWithParam<int> {};

TEST_P(AggregateModel, GroupByMatchesBruteForce) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 17);
  auto schema = Schema::Create({{"g", ValueType::kString, false},
                                {"v", ValueType::kDouble, true},
                                {"w", ValueType::kInt64, false}});
  ASSERT_TRUE(schema.ok());
  Table table("data", *schema);
  struct Ref {
    int64_t count = 0;
    int64_t non_null = 0;
    double sum = 0;
    double min = 1e300, max = -1e300;
  };
  std::map<std::string, Ref> reference;
  int rows = 200 + static_cast<int>(rng.Uniform(300));
  for (int i = 0; i < rows; ++i) {
    std::string g = "g" + std::to_string(rng.Uniform(7));
    bool null_v = rng.Bernoulli(0.15);
    double v = rng.NextGaussian() * 10;
    int64_t w = rng.UniformRange(0, 100);
    ASSERT_TRUE(table
                    .Insert({Value::String(g),
                             null_v ? Value::Null() : Value::Double(v),
                             Value::Int64(w)})
                    .ok());
    Ref& ref = reference[g];
    ++ref.count;
    if (!null_v) {
      ++ref.non_null;
      ref.sum += v;
      ref.min = std::min(ref.min, v);
      ref.max = std::max(ref.max, v);
    }
  }
  ASSERT_TRUE(table.Analyze().ok());
  Catalog catalog;
  ASSERT_TRUE(catalog.Register(&table).ok());
  Planner planner(&catalog);

  for (auto opts :
       {PlannerOptions::Naive(), PlannerOptions::Optimized()}) {
    auto outcome = planner.Run(
        "SELECT d.g, COUNT(*) AS n, COUNT(d.v) AS nv, SUM(d.v) AS s, "
        "AVG(d.v) AS a, MIN(d.v) AS lo, MAX(d.v) AS hi "
        "FROM data d GROUP BY d.g ORDER BY d.g",
        opts);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    ASSERT_EQ(outcome->result.rows.size(), reference.size());
    size_t i = 0;
    for (const auto& [g, ref] : reference) {
      const auto& row = outcome->result.rows[i++];
      EXPECT_EQ(row[0].AsString(), g);
      EXPECT_EQ(row[1].AsInt64(), ref.count) << g;
      EXPECT_EQ(row[2].AsInt64(), ref.non_null) << g;
      if (ref.non_null == 0) {
        EXPECT_TRUE(row[3].is_null());
        EXPECT_TRUE(row[4].is_null());
        EXPECT_TRUE(row[5].is_null());
      } else {
        EXPECT_NEAR(row[3].AsDouble(), ref.sum, 1e-6) << g;
        EXPECT_NEAR(row[4].AsDouble(), ref.sum / ref.non_null, 1e-6) << g;
        EXPECT_NEAR(row[5].AsDouble(), ref.min, 1e-9) << g;
        EXPECT_NEAR(row[6].AsDouble(), ref.max, 1e-9) << g;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateModel, ::testing::Range(0, 6));

class AggregateWithFilterModel : public ::testing::TestWithParam<int> {};

TEST_P(AggregateWithFilterModel, FilteredCountMatchesManualScan) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 37 + 1);
  auto schema = Schema::Create(
      {{"k", ValueType::kInt64, false}, {"v", ValueType::kDouble, false}});
  Table table("data", *schema);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(table
                    .Insert({Value::Int64(rng.UniformRange(0, 50)),
                             Value::Double(rng.NextDouble() * 100)})
                    .ok());
  }
  ASSERT_TRUE(table.CreateIndex("k", storage::IndexKind::kBTree).ok());
  ASSERT_TRUE(table.Analyze().ok());
  Catalog catalog;
  ASSERT_TRUE(catalog.Register(&table).ok());
  Planner planner(&catalog);
  int64_t lo = rng.UniformRange(0, 25), hi = lo + 10;
  double threshold = rng.UniformDouble(20, 80);
  int64_t expected = 0;
  for (auto rid : table.LiveRows()) {
    const auto& row = table.row(rid);
    if (row[0].AsInt64() >= lo && row[0].AsInt64() <= hi &&
        row[1].AsDouble() < threshold) {
      ++expected;
    }
  }
  char sql[256];
  std::snprintf(sql, sizeof(sql),
                "SELECT COUNT(*) AS n FROM data d WHERE d.k BETWEEN %lld "
                "AND %lld AND d.v < %.6f",
                (long long)lo, (long long)hi, threshold);
  for (auto opts : {PlannerOptions::Naive(), PlannerOptions::Optimized()}) {
    auto outcome = planner.Run(sql, opts);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->result.rows[0][0].AsInt64(), expected) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateWithFilterModel,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace query

namespace chem {
namespace {

// Fuzz: random character soup must either parse cleanly or return a
// ParseError/InvalidArgument — never crash, never hang.
class SmilesFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SmilesFuzz, RandomInputNeverCrashes) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 911 + 77);
  const std::string alphabet = "CNOSPFIclnos()[]=#123%+-H Br";
  for (int trial = 0; trial < 400; ++trial) {
    std::string input;
    size_t len = rng.Uniform(24);
    for (size_t i = 0; i < len; ++i) {
      input += alphabet[rng.Uniform(alphabet.size())];
    }
    auto mol = ParseSmiles(input);
    if (mol.ok()) {
      // Whatever parsed must be internally consistent.
      EXPECT_GE(mol->num_atoms(), 1);
      EXPECT_GE(mol->RingCount(), 0);
      auto props = ComputeProperties(*mol);
      EXPECT_GE(props.molecular_weight, 0.0);
    } else {
      EXPECT_TRUE(mol.status().IsParseError() ||
                  mol.status().IsInvalidArgument() ||
                  mol.status().IsAlreadyExists())
          << input << " -> " << mol.status();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmilesFuzz, ::testing::Range(0, 4));

// Mutation fuzz: valid SMILES with single-character corruptions.
TEST(SmilesFuzzTest, CorruptedValidSmiles) {
  util::Rng rng(5);
  const std::string base = "CC(=O)Oc1ccccc1C(=O)O";
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = char(32 + rng.Uniform(95));
    auto mol = ParseSmiles(mutated);  // must not crash either way
    if (mol.ok()) {
      EXPECT_GE(mol->num_atoms(), 1);
    }
  }
}

}  // namespace
}  // namespace chem
}  // namespace drugtree
