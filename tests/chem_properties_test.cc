#include "chem/properties.h"

#include <gtest/gtest.h>

#include "chem/smiles.h"

namespace drugtree {
namespace chem {
namespace {

MolecularProperties PropsOf(const std::string& smiles) {
  auto m = ParseSmiles(smiles);
  EXPECT_TRUE(m.ok()) << smiles;
  return ComputeProperties(*m);
}

TEST(PropertiesTest, WaterWeightEthanol) {
  auto p = PropsOf("CCO");
  EXPECT_NEAR(p.molecular_weight, 46.07, 0.1);
  EXPECT_EQ(p.hba, 1);
  EXPECT_EQ(p.hbd, 1);
  EXPECT_EQ(p.heavy_atoms, 3);
  EXPECT_EQ(p.ring_count, 0);
}

TEST(PropertiesTest, BenzeneWeight) {
  auto p = PropsOf("c1ccccc1");
  EXPECT_NEAR(p.molecular_weight, 78.11, 0.2);
  EXPECT_EQ(p.ring_count, 1);
  EXPECT_EQ(p.hbd, 0);
  EXPECT_EQ(p.hba, 0);
}

TEST(PropertiesTest, AspirinBundle) {
  auto p = PropsOf("CC(=O)Oc1ccccc1C(=O)O");
  EXPECT_NEAR(p.molecular_weight, 180.16, 1.0);
  EXPECT_EQ(p.hba, 4);
  EXPECT_EQ(p.hbd, 1);
  EXPECT_EQ(p.ring_count, 1);
  EXPECT_EQ(p.LipinskiViolations(), 0);
  EXPECT_TRUE(p.IsDrugLike());
}

TEST(PropertiesTest, HydrophobicChainHasPositiveLogP) {
  EXPECT_GT(PropsOf("CCCCCCCCCCCC").log_p, 2.0);
}

TEST(PropertiesTest, PolyolHasNegativeLogP) {
  EXPECT_LT(PropsOf("OCC(O)C(O)C(O)C(O)CO").log_p, 0.0);  // sorbitol
}

TEST(PropertiesTest, RotatableBonds) {
  // Butane: one central rotatable bond (terminal bonds excluded).
  EXPECT_EQ(PropsOf("CCCC").rotatable_bonds, 1);
  // Ring bonds are not rotatable.
  EXPECT_EQ(PropsOf("C1CCCCC1").rotatable_bonds, 0);
  // Biphenyl-like: the inter-ring single bond rotates.
  EXPECT_EQ(PropsOf("c1ccccc1c1ccccc1").rotatable_bonds, 1);
  // Double bonds do not rotate.
  EXPECT_EQ(PropsOf("CC=CC").rotatable_bonds, 0);
}

TEST(PropertiesTest, LipinskiViolationCounting) {
  MolecularProperties p;
  p.molecular_weight = 600;  // violation 1
  p.log_p = 6;               // violation 2
  p.hbd = 6;                 // violation 3
  p.hba = 11;                // violation 4
  EXPECT_EQ(p.LipinskiViolations(), 4);
  EXPECT_FALSE(p.IsDrugLike());
  p.hbd = 2;
  p.hba = 4;
  EXPECT_EQ(p.LipinskiViolations(), 2);
  EXPECT_FALSE(p.IsDrugLike());
  p.log_p = 3;
  EXPECT_EQ(p.LipinskiViolations(), 1);
  EXPECT_TRUE(p.IsDrugLike());
}

TEST(PropertiesTest, ChargedNitrogenCounted) {
  auto p = PropsOf("C[N+](C)(C)C");
  EXPECT_EQ(p.hba, 1);
  EXPECT_EQ(p.hbd, 0);
}

TEST(PropertiesTest, EmptyMolecule) {
  Molecule m;
  auto p = ComputeProperties(m);
  EXPECT_DOUBLE_EQ(p.molecular_weight, 0.0);
  EXPECT_EQ(p.heavy_atoms, 0);
}

}  // namespace
}  // namespace chem
}  // namespace drugtree
