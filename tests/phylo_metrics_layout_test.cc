#include <gtest/gtest.h>

#include <algorithm>

#include "phylo/layout.h"
#include "phylo/newick.h"
#include "phylo/tree_metrics.h"

namespace drugtree {
namespace phylo {
namespace {

TEST(RobinsonFouldsTest, IdenticalTreesZero) {
  auto a = ParseNewick("((a,b),(c,d));");
  auto b = ParseNewick("((a,b),(c,d));");
  auto rf = RobinsonFoulds(*a, *b);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(*rf, 0);
}

TEST(RobinsonFouldsTest, RerootedEquivalentTreesZero) {
  // Same unrooted topology written with different rootings.
  auto a = ParseNewick("((a,b),(c,d));");
  auto b = ParseNewick("(a,(b,(c,d)));");
  auto rf = RobinsonFoulds(*a, *b);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(*rf, 0);
}

TEST(RobinsonFouldsTest, DifferentTopologiesPositive) {
  auto a = ParseNewick("((a,b),(c,d));");
  auto b = ParseNewick("((a,c),(b,d));");
  auto rf = RobinsonFoulds(*a, *b);
  ASSERT_TRUE(rf.ok());
  EXPECT_GT(*rf, 0);
}

TEST(RobinsonFouldsTest, MaximallyDifferentNormalizedIsOne) {
  auto a = ParseNewick("((a,b),(c,d));");
  auto b = ParseNewick("((a,c),(b,d));");
  auto nrf = NormalizedRobinsonFoulds(*a, *b);
  ASSERT_TRUE(nrf.ok());
  EXPECT_DOUBLE_EQ(*nrf, 1.0);
}

TEST(RobinsonFouldsTest, DifferentLeafSetsRejected) {
  auto a = ParseNewick("((a,b),c);");
  auto b = ParseNewick("((a,b),d);");
  EXPECT_TRUE(RobinsonFoulds(*a, *b).status().IsInvalidArgument());
}

TEST(RobinsonFouldsTest, SymmetricMetric) {
  auto a = ParseNewick("(((a,b),c),(d,(e,f)));");
  auto b = ParseNewick("(((a,c),b),(e,(d,f)));");
  EXPECT_EQ(*RobinsonFoulds(*a, *b), *RobinsonFoulds(*b, *a));
}

TEST(TreeMetricsTest, TotalBranchLength) {
  auto t = ParseNewick("((a:1,b:2):3,c:4);");
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(TotalBranchLength(*t), 10.0);
}

TEST(TreeMetricsTest, UltrametricDetection) {
  auto ultra = ParseNewick("((a:1,b:1):1,c:2);");
  EXPECT_TRUE(IsUltrametric(*ultra));
  auto skew = ParseNewick("((a:1,b:5):1,c:2);");
  EXPECT_FALSE(IsUltrametric(*skew));
}

TEST(LayoutTest, RejectsEmptyTree) {
  Tree t;
  EXPECT_TRUE(TreeLayout::Compute(t).status().IsInvalidArgument());
}

TEST(LayoutTest, LeavesGetConsecutiveRanks) {
  auto t = ParseNewick("((a,b),(c,d));");
  auto layout = TreeLayout::Compute(*t);
  ASSERT_TRUE(layout.ok());
  std::vector<double> ys;
  for (NodeId leaf : t->Leaves()) ys.push_back(layout->position(leaf).y);
  std::vector<double> expected = {0, 1, 2, 3};
  EXPECT_EQ(ys, expected);
  EXPECT_DOUBLE_EQ(layout->max_y(), 3.0);
}

TEST(LayoutTest, InternalNodesCenterOnChildren) {
  auto t = ParseNewick("((a,b),(c,d));");
  auto layout = TreeLayout::Compute(*t);
  ASSERT_TRUE(layout.ok());
  NodeId root = t->root();
  double sum = 0;
  for (NodeId c : t->node(root).children) sum += layout->position(c).y;
  EXPECT_DOUBLE_EQ(layout->position(root).y,
                   sum / t->node(root).children.size());
}

TEST(LayoutTest, PhylogramXUsesBranchLengths) {
  auto t = ParseNewick("((a:2,b:1):3,c:1);");
  auto layout = TreeLayout::Compute(*t);
  ASSERT_TRUE(layout.ok());
  EXPECT_DOUBLE_EQ(layout->position(t->root()).x, 0.0);
  EXPECT_DOUBLE_EQ(layout->position(t->FindByName("a")).x, 5.0);
  EXPECT_DOUBLE_EQ(layout->position(t->FindByName("c")).x, 1.0);
  EXPECT_DOUBLE_EQ(layout->max_x(), 5.0);
}

TEST(LayoutTest, CladogramXUsesUnitDepth) {
  auto t = ParseNewick("((a:2,b:1):3,c:1);");
  LayoutOptions opt;
  opt.use_branch_lengths = false;
  auto layout = TreeLayout::Compute(*t, opt);
  ASSERT_TRUE(layout.ok());
  EXPECT_DOUBLE_EQ(layout->position(t->FindByName("a")).x, 2.0);
  EXPECT_DOUBLE_EQ(layout->position(t->FindByName("c")).x, 1.0);
}

TEST(LayoutTest, NodesInRect) {
  auto t = ParseNewick("((a:1,b:1):1,c:2);");
  auto layout = TreeLayout::Compute(*t);
  ASSERT_TRUE(layout.ok());
  auto all = layout->NodesInRect(0, 0, 100, 100);
  EXPECT_EQ(all.size(), t->NumNodes());
  // Only the root sits at x == 0.
  auto at_origin_x = layout->NodesInRect(-0.1, -100, 0.1, 100);
  ASSERT_EQ(at_origin_x.size(), 1u);
  EXPECT_EQ(at_origin_x[0], t->root());
  EXPECT_TRUE(layout->NodesInRect(50, 50, 60, 60).empty());
}

}  // namespace
}  // namespace phylo
}  // namespace drugtree
