#include "storage/bptree.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/rng.h"

namespace drugtree {
namespace storage {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 1);
  EXPECT_TRUE(tree.Find(Value::Int64(1)).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_TRUE(
      tree.RangeScan(Value::Null(), true, Value::Null(), true).empty());
}

TEST(BPlusTreeTest, InsertAndFind) {
  BPlusTree tree(8);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int64(i), i * 10).ok());
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.Height(), 1);
  for (int i = 0; i < 100; ++i) {
    auto rows = tree.Find(Value::Int64(i));
    ASSERT_EQ(rows.size(), 1u) << i;
    EXPECT_EQ(rows[0], i * 10);
  }
  EXPECT_TRUE(tree.Find(Value::Int64(-1)).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, DuplicateKeysAllowed) {
  BPlusTree tree(4);
  for (RowId r = 0; r < 20; ++r) {
    ASSERT_TRUE(tree.Insert(Value::Int64(7), r).ok());
  }
  auto rows = tree.Find(Value::Int64(7));
  ASSERT_EQ(rows.size(), 20u);
  for (RowId r = 0; r < 20; ++r) EXPECT_EQ(rows[static_cast<size_t>(r)], r);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, ExactDuplicatePairRejected) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert(Value::Int64(1), 5).ok());
  EXPECT_TRUE(tree.Insert(Value::Int64(1), 5).IsAlreadyExists());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, EraseRemovesExactPair) {
  BPlusTree tree(4);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int64(i % 10), i).ok());
  }
  ASSERT_TRUE(tree.Erase(Value::Int64(3), 3).ok());
  ASSERT_TRUE(tree.Erase(Value::Int64(3), 13).ok());
  auto rows = tree.Find(Value::Int64(3));
  EXPECT_EQ(rows.size(), 3u);  // 23, 33, 43 remain
  EXPECT_TRUE(tree.Erase(Value::Int64(3), 3).IsNotFound());
  EXPECT_TRUE(tree.Erase(Value::Int64(99), 1).IsNotFound());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, RangeScanInclusiveExclusive) {
  BPlusTree tree(4);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int64(i), i).ok());
  }
  auto inc = tree.RangeScan(Value::Int64(5), true, Value::Int64(8), true);
  EXPECT_EQ(inc, (std::vector<RowId>{5, 6, 7, 8}));
  auto exc = tree.RangeScan(Value::Int64(5), false, Value::Int64(8), false);
  EXPECT_EQ(exc, (std::vector<RowId>{6, 7}));
  auto open_lo = tree.RangeScan(Value::Null(), true, Value::Int64(2), true);
  EXPECT_EQ(open_lo, (std::vector<RowId>{0, 1, 2}));
  auto open_hi = tree.RangeScan(Value::Int64(17), true, Value::Null(), true);
  EXPECT_EQ(open_hi, (std::vector<RowId>{17, 18, 19}));
  auto empty = tree.RangeScan(Value::Int64(8), true, Value::Int64(5), true);
  EXPECT_TRUE(empty.empty());
}

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree tree(4);
  std::vector<std::string> words = {"kinase", "ligase", "protease",
                                    "hydrolase", "transferase"};
  for (size_t i = 0; i < words.size(); ++i) {
    ASSERT_TRUE(tree.Insert(Value::String(words[i]),
                            static_cast<RowId>(i)).ok());
  }
  auto rows = tree.RangeScan(Value::String("k"), true,
                             Value::String("m"), true);
  // kinase, ligase in [k, m].
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, MoveSemantics) {
  BPlusTree a(4);
  ASSERT_TRUE(a.Insert(Value::Int64(1), 1).ok());
  BPlusTree b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.Find(Value::Int64(1)).size(), 1u);
}

// Model-based property test: the tree must agree with std::multimap under a
// random mix of inserts, erases, point and range queries.
class BPlusTreeModel : public ::testing::TestWithParam<int> {};

TEST_P(BPlusTreeModel, MatchesMultimap) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 997 + 13);
  int fanout = 4 + static_cast<int>(rng.Uniform(60));
  BPlusTree tree(fanout);
  std::multimap<int64_t, RowId> model;
  std::set<std::pair<int64_t, RowId>> pairs;

  for (int op = 0; op < 3000; ++op) {
    int which = static_cast<int>(rng.Uniform(10));
    if (which < 6) {
      // Insert.
      int64_t key = rng.UniformRange(0, 200);
      RowId row = rng.UniformRange(0, 500);
      bool exists = pairs.count({key, row}) > 0;
      auto st = tree.Insert(Value::Int64(key), row);
      if (exists) {
        EXPECT_TRUE(st.IsAlreadyExists());
      } else {
        EXPECT_TRUE(st.ok());
        model.emplace(key, row);
        pairs.insert({key, row});
      }
    } else if (which < 8) {
      // Erase.
      int64_t key = rng.UniformRange(0, 200);
      RowId row = rng.UniformRange(0, 500);
      bool exists = pairs.count({key, row}) > 0;
      auto st = tree.Erase(Value::Int64(key), row);
      if (exists) {
        EXPECT_TRUE(st.ok());
        pairs.erase({key, row});
        auto range = model.equal_range(key);
        for (auto it = range.first; it != range.second; ++it) {
          if (it->second == row) {
            model.erase(it);
            break;
          }
        }
      } else {
        EXPECT_TRUE(st.IsNotFound());
      }
    } else if (which == 8) {
      // Point query.
      int64_t key = rng.UniformRange(0, 200);
      auto got = tree.Find(Value::Int64(key));
      std::vector<RowId> expect;
      auto range = model.equal_range(key);
      for (auto it = range.first; it != range.second; ++it) {
        expect.push_back(it->second);
      }
      std::sort(expect.begin(), expect.end());
      EXPECT_EQ(got, expect) << "key " << key;
    } else {
      // Range query.
      int64_t lo = rng.UniformRange(0, 200);
      int64_t hi = rng.UniformRange(0, 200);
      if (lo > hi) std::swap(lo, hi);
      auto got = tree.RangeScan(Value::Int64(lo), true, Value::Int64(hi), true);
      std::vector<RowId> expect;
      for (auto it = model.lower_bound(lo); it != model.end() && it->first <= hi;
           ++it) {
        expect.push_back(it->second);
      }
      // Tree returns key order with row-id tiebreak; model iteration within
      // a key is insertion order. Compare as multisets per key via sort of
      // (key grouped) — simpler: sizes + sorted contents.
      auto sorted_got = got;
      std::sort(sorted_got.begin(), sorted_got.end());
      std::sort(expect.begin(), expect.end());
      EXPECT_EQ(sorted_got, expect);
    }
  }
  EXPECT_EQ(tree.size(), pairs.size());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeModel, ::testing::Range(0, 8));

TEST(BPlusTreeTest, LargeSequentialAndReverseInserts) {
  for (bool reverse : {false, true}) {
    BPlusTree tree(16);
    for (int i = 0; i < 5000; ++i) {
      int key = reverse ? 5000 - i : i;
      ASSERT_TRUE(tree.Insert(Value::Int64(key), key).ok());
    }
    EXPECT_EQ(tree.size(), 5000u);
    EXPECT_TRUE(tree.CheckInvariants().ok());
    auto all = tree.RangeScan(Value::Null(), true, Value::Null(), true);
    ASSERT_EQ(all.size(), 5000u);
    for (size_t i = 1; i < all.size(); ++i) EXPECT_LT(all[i - 1], all[i]);
  }
}

}  // namespace
}  // namespace storage
}  // namespace drugtree
