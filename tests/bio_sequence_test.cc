#include <gtest/gtest.h>

#include "bio/fasta.h"
#include "bio/sequence.h"
#include "bio/substitution_matrix.h"

namespace drugtree {
namespace bio {
namespace {

TEST(SequenceTest, ResidueIndexRoundTrips) {
  for (int i = 0; i < kNumAminoAcids; ++i) {
    EXPECT_EQ(ResidueIndex(kAminoAcids[i]), i);
  }
}

TEST(SequenceTest, ResidueIndexCaseInsensitive) {
  EXPECT_EQ(ResidueIndex('a'), ResidueIndex('A'));
  EXPECT_EQ(ResidueIndex('w'), ResidueIndex('W'));
}

TEST(SequenceTest, InvalidResiduesRejected) {
  EXPECT_LT(ResidueIndex('B'), 0);  // B, J, O, U, X, Z are not canonical
  EXPECT_LT(ResidueIndex('X'), 0);
  EXPECT_LT(ResidueIndex('*'), 0);
  EXPECT_LT(ResidueIndex('1'), 0);
  EXPECT_FALSE(IsValidResidue('Z'));
  EXPECT_TRUE(IsValidResidue('K'));
}

TEST(SequenceTest, CreateValidatesAndNormalizes) {
  auto s = Sequence::Create("p1", "acdef");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->residues(), "ACDEF");
  EXPECT_EQ(s->id(), "p1");
  EXPECT_EQ(s->length(), 5u);
}

TEST(SequenceTest, CreateRejectsInvalidResidue) {
  auto s = Sequence::Create("p1", "ACXDE");
  EXPECT_TRUE(s.status().IsParseError());
  EXPECT_NE(s.status().message().find("position 2"), std::string::npos);
}

TEST(SequenceTest, EmptySequenceAllowed) {
  auto s = Sequence::Create("p1", "");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
  EXPECT_DOUBLE_EQ(s->ApproximateMassDa(), 0.0);
}

TEST(SequenceTest, Composition) {
  auto s = Sequence::Create("p", "AARV");
  ASSERT_TRUE(s.ok());
  auto counts = s->Composition();
  EXPECT_EQ(counts[ResidueIndex('A')], 2);
  EXPECT_EQ(counts[ResidueIndex('R')], 1);
  EXPECT_EQ(counts[ResidueIndex('V')], 1);
  EXPECT_EQ(counts[ResidueIndex('W')], 0);
}

TEST(SequenceTest, MassIncreasesWithLength) {
  auto a = Sequence::Create("a", "AAA");
  auto b = Sequence::Create("b", "AAAAAA");
  EXPECT_GT(b->ApproximateMassDa(), a->ApproximateMassDa());
  // Glycine (smallest) chain below tryptophan chain.
  auto g = Sequence::Create("g", "GGG");
  auto w = Sequence::Create("w", "WWW");
  EXPECT_LT(g->ApproximateMassDa(), w->ApproximateMassDa());
}

TEST(FastaTest, ParseSingleRecord) {
  auto seqs = ParseFasta(">p1 some description\nACDE\nFGHI\n");
  ASSERT_TRUE(seqs.ok());
  ASSERT_EQ(seqs->size(), 1u);
  EXPECT_EQ((*seqs)[0].id(), "p1");
  EXPECT_EQ((*seqs)[0].residues(), "ACDEFGHI");
}

TEST(FastaTest, ParseMultipleRecordsAndBlankLines) {
  auto seqs = ParseFasta(">a\nACD\n\n>b\nWYV\n");
  ASSERT_TRUE(seqs.ok());
  ASSERT_EQ(seqs->size(), 2u);
  EXPECT_EQ((*seqs)[1].id(), "b");
  EXPECT_EQ((*seqs)[1].residues(), "WYV");
}

TEST(FastaTest, RejectsDataBeforeHeader) {
  EXPECT_TRUE(ParseFasta("ACDE\n>a\nACD\n").status().IsParseError());
}

TEST(FastaTest, RejectsDuplicateIds) {
  EXPECT_TRUE(ParseFasta(">a\nAC\n>a\nDE\n").status().IsParseError());
}

TEST(FastaTest, RejectsEmptyRecord) {
  EXPECT_TRUE(ParseFasta(">a\n>b\nACD\n").status().IsParseError());
}

TEST(FastaTest, RejectsEmptyHeader) {
  EXPECT_TRUE(ParseFasta(">\nACD\n").status().IsParseError());
}

TEST(FastaTest, RejectsInvalidResidues) {
  EXPECT_TRUE(ParseFasta(">a\nAC1D\n").status().IsParseError());
}

TEST(FastaTest, WriteParseRoundTrip) {
  std::vector<Sequence> seqs;
  seqs.push_back(*Sequence::Create("prot_one", std::string(150, 'A')));
  seqs.push_back(*Sequence::Create("prot_two", "MKVLW"));
  std::string text = WriteFasta(seqs, 60);
  auto parsed = ParseFasta(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], seqs[0]);
  EXPECT_EQ((*parsed)[1], seqs[1]);
}

TEST(FastaTest, WrappingAtWidth) {
  std::vector<Sequence> seqs = {*Sequence::Create("p", std::string(100, 'G'))};
  std::string text = WriteFasta(seqs, 40);
  // 100 residues at width 40 -> 3 sequence lines.
  int lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 4);  // header + 3
}

TEST(FastaTest, FileRoundTrip) {
  std::string path = testing::TempDir() + "/drugtree_fasta_test.fa";
  std::vector<Sequence> seqs = {*Sequence::Create("x", "MKVLW")};
  ASSERT_TRUE(WriteFastaFile(path, seqs).ok());
  auto loaded = ReadFastaFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)[0], seqs[0]);
}

TEST(FastaTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadFastaFile("/nonexistent/nope.fa").status().IsIoError());
}

TEST(SubstitutionMatrixTest, Blosum62KnownValues) {
  const auto& m = SubstitutionMatrix::Blosum62();
  EXPECT_EQ(m.Score('A', 'A'), 4);
  EXPECT_EQ(m.Score('W', 'W'), 11);
  EXPECT_EQ(m.Score('A', 'W'), -3);
  EXPECT_EQ(m.Score('R', 'K'), 2);
  EXPECT_EQ(m.Score('C', 'C'), 9);
}

TEST(SubstitutionMatrixTest, Pam250KnownValues) {
  const auto& m = SubstitutionMatrix::Pam250();
  EXPECT_EQ(m.Score('W', 'W'), 17);
  EXPECT_EQ(m.Score('C', 'C'), 12);
  EXPECT_EQ(m.Score('A', 'A'), 2);
}

TEST(SubstitutionMatrixTest, BothSymmetric) {
  EXPECT_TRUE(SubstitutionMatrix::Blosum62().IsSymmetric());
  EXPECT_TRUE(SubstitutionMatrix::Pam250().IsSymmetric());
}

TEST(SubstitutionMatrixTest, DiagonalIsMaxInRow) {
  // Self-substitution should never score worse than substitution (BLOSUM62).
  const auto& m = SubstitutionMatrix::Blosum62();
  for (int i = 0; i < kNumAminoAcids; ++i) {
    for (int j = 0; j < kNumAminoAcids; ++j) {
      EXPECT_GE(m.ScoreByIndex(i, i), m.ScoreByIndex(i, j));
    }
  }
}

TEST(SubstitutionMatrixTest, ByNameLookup) {
  auto b = SubstitutionMatrix::ByName("blosum62");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->name(), "BLOSUM62");
  auto p = SubstitutionMatrix::ByName("PAM250");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(SubstitutionMatrix::ByName("PAM30").status().IsNotFound());
}

}  // namespace
}  // namespace bio
}  // namespace drugtree
