// Observability layer tests: metric registry semantics, span nesting with
// simulated-clock attribution, and EXPLAIN / EXPLAIN ANALYZE through the
// full parse -> plan -> execute pipeline.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/planner.h"
#include "util/clock.h"

namespace drugtree {
namespace {

using obs::MetricRegistry;
using obs::Tracer;

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, CounterRegisterSnapshotReset) {
  MetricRegistry registry;
  obs::Counter* c = registry.GetCounter("test.counter");
  ASSERT_NE(c, nullptr);
  // Same (name, labels) -> same pointer (the hot-path caching contract).
  EXPECT_EQ(c, registry.GetCounter("test.counter"));

  c->Add(5);
  c->Increment();
  EXPECT_EQ(c->Value(), 6);
  EXPECT_EQ(registry.Snapshot().Value("test.counter"), 6);

  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(registry.Snapshot().Value("test.counter"), 0);
}

TEST(MetricRegistryTest, LabelsDiscriminateInstances) {
  MetricRegistry registry;
  obs::Counter* a = registry.GetCounter("net.requests", {{"link", "3g"}});
  obs::Counter* b = registry.GetCounter("net.requests", {{"link", "wifi"}});
  EXPECT_NE(a, b);
  a->Add(2);
  b->Add(7);
  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.Value("net.requests{link=3g}"), 2);
  EXPECT_EQ(snapshot.Value("net.requests{link=wifi}"), 7);
}

TEST(MetricRegistryTest, GaugeAndHistogram) {
  MetricRegistry registry;
  obs::Gauge* g = registry.GetGauge("test.gauge");
  g->Set(42);
  g->Add(-2);
  EXPECT_EQ(g->Value(), 40);

  obs::HistogramMetric* h = registry.GetHistogram("test.latency");
  h->Observe(1.0);
  h->Observe(3.0);
  auto snapshot = registry.Snapshot();
  const obs::MetricSnapshot* hist = snapshot.Find("test.latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(hist->hist.count(), 2);
  EXPECT_DOUBLE_EQ(hist->hist.Mean(), 2.0);
}

TEST(MetricRegistryTest, SnapshotIsSortedAndRenders) {
  MetricRegistry registry;
  registry.GetCounter("b.metric")->Add(1);
  registry.GetCounter("a.metric")->Add(2);
  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 2u);
  EXPECT_EQ(snapshot.metrics[0].name, "a.metric");
  EXPECT_EQ(snapshot.metrics[1].name, "b.metric");
  EXPECT_NE(snapshot.ToText().find("a.metric"), std::string::npos);
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"name\":\"a.metric\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":2"), std::string::npos);
}

TEST(MetricRegistryTest, CounterIsThreadSafe) {
  MetricRegistry registry;
  obs::Counter* c = registry.GetCounter("test.parallel");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kAddsPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), kThreads * kAddsPerThread);
}

// ---------------------------------------------------------------------------
// Span tracing
// ---------------------------------------------------------------------------

TEST(TracerTest, NestedSpansWithSimulatedClockAttribution) {
  util::SimulatedClock clock;
  Tracer* tracer = Tracer::Default();
  tracer->set_clock(&clock);
  tracer->set_capture(true);
  tracer->Clear();

  {
    obs::ScopedSpan outer(tracer, "test.outer");
    clock.AdvanceMicros(100);
    {
      obs::ScopedSpan inner(tracer, "test.inner");
      clock.AdvanceMicros(250);
    }
    clock.AdvanceMicros(50);
  }
  tracer->set_clock(nullptr);
  tracer->set_capture(false);

  const obs::Span* root = tracer->last_trace();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "test.outer");
  EXPECT_EQ(root->DurationMicros(), 400);
  EXPECT_EQ(root->SelfMicros(), 150);
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_EQ(root->children[0]->name, "test.inner");
  EXPECT_EQ(root->children[0]->DurationMicros(), 250);

  std::string rendered = tracer->RenderLastTrace();
  EXPECT_NE(rendered.find("test.outer"), std::string::npos);
  EXPECT_NE(rendered.find("test.inner"), std::string::npos);
  std::string json = tracer->LastTraceJson();
  EXPECT_NE(json.find("\"name\":\"test.inner\""), std::string::npos);
}

TEST(TracerTest, SpansMirrorIntoRegistry) {
  util::SimulatedClock clock;
  Tracer* tracer = Tracer::Default();
  tracer->set_clock(&clock);
  tracer->set_capture(true);
  MetricRegistry::Default()->ResetAll();

  for (int i = 0; i < 3; ++i) {
    obs::ScopedSpan span(tracer, "test.mirrored");
    clock.AdvanceMicros(10);
  }
  tracer->set_clock(nullptr);
  tracer->set_capture(false);

  auto snapshot = MetricRegistry::Default()->Snapshot();
  EXPECT_EQ(snapshot.Value("span.test.mirrored.count"), 3);
  EXPECT_EQ(snapshot.Value("span.test.mirrored.total_micros"), 30);
}

TEST(TracerTest, SiteSpansMirrorWithoutCapture) {
  // DT_SPAN's default path: capture off means no span tree is built, but the
  // per-site counters still accumulate off the tracer clock.
  util::SimulatedClock clock;
  Tracer* tracer = Tracer::Default();
  tracer->set_clock(&clock);
  tracer->Clear();
  MetricRegistry::Default()->ResetAll();
  ASSERT_FALSE(tracer->capturing());

  static const obs::SpanSite site("test.nocapture");
  for (int i = 0; i < 4; ++i) {
    obs::ScopedSpan span(tracer, site);
    clock.AdvanceMicros(25);
  }
  tracer->set_clock(nullptr);

  auto snapshot = MetricRegistry::Default()->Snapshot();
  EXPECT_EQ(snapshot.Value("span.test.nocapture.count"), 4);
  EXPECT_EQ(snapshot.Value("span.test.nocapture.total_micros"), 100);
  EXPECT_EQ(tracer->last_trace(), nullptr);
}

TEST(TracerTest, DisabledTracerIsInert) {
  Tracer* tracer = Tracer::Default();
  tracer->Clear();
  tracer->set_enabled(false);
  {
    obs::ScopedSpan span(tracer, "test.disabled");
  }
  tracer->set_enabled(true);
  EXPECT_EQ(tracer->last_trace(), nullptr);
}

// ---------------------------------------------------------------------------
// EXPLAIN / EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

using storage::IndexKind;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pschema = Schema::Create({{"acc", ValueType::kString, false},
                                   {"family", ValueType::kString, false},
                                   {"score", ValueType::kDouble, false}});
    proteins_ = std::make_unique<Table>("proteins", *pschema);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(proteins_
                      ->Insert({Value::String("P" + std::to_string(i)),
                                Value::String(i % 2 ? "famA" : "famB"),
                                Value::Double(i * 10.0)})
                      .ok());
    }
    auto aschema = Schema::Create({{"acc", ValueType::kString, false},
                                   {"aff", ValueType::kDouble, false}});
    activities_ = std::make_unique<Table>("activities", *aschema);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(activities_
                      ->Insert({Value::String("P" + std::to_string(i)),
                                Value::Double(i * 5.0)})
                      .ok());
    }
    ASSERT_TRUE(proteins_->Analyze().ok());
    ASSERT_TRUE(activities_->Analyze().ok());
    ASSERT_TRUE(catalog_.Register(proteins_.get()).ok());
    ASSERT_TRUE(catalog_.Register(activities_.get()).ok());
    planner_ = std::make_unique<query::Planner>(&catalog_);
  }

  std::unique_ptr<Table> proteins_, activities_;
  query::Catalog catalog_;
  std::unique_ptr<query::Planner> planner_;
};

TEST_F(ExplainAnalyzeTest, ParseStatementModes) {
  auto plain = query::ParseStatement("SELECT acc FROM proteins");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->explain, query::ExplainMode::kNone);

  auto plan = query::ParseStatement("EXPLAIN SELECT acc FROM proteins");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->explain, query::ExplainMode::kPlan);

  auto analyze =
      query::ParseStatement("explain analyze SELECT acc FROM proteins");
  ASSERT_TRUE(analyze.ok());
  EXPECT_EQ(analyze->explain, query::ExplainMode::kAnalyze);

  EXPECT_FALSE(query::ParseStatement("EXPLAIN ANALYZE").ok());
}

TEST_F(ExplainAnalyzeTest, ExplainPlanSkipsExecution) {
  auto outcome = planner_->Run("EXPLAIN SELECT acc FROM proteins",
                               query::PlannerOptions::Optimized());
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->physical_plan.empty());
  EXPECT_TRUE(outcome->analyzed_plan.empty());
  EXPECT_TRUE(outcome->result.rows.empty());  // not executed
}

TEST_F(ExplainAnalyzeTest, AnalyzeRowCountsMatchResult) {
  const char* sql =
      "EXPLAIN ANALYZE SELECT p.acc, a.aff FROM proteins p "
      "JOIN activities a ON p.acc = a.acc WHERE a.aff < 50.0";
  auto outcome = planner_->Run(sql, query::PlannerOptions::Optimized());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.rows.size(), 10u);
  ASSERT_FALSE(outcome->analyzed_plan.empty());
  // The root operator's rows_out must equal the materialized row count.
  char expected[64];
  std::snprintf(expected, sizeof(expected), "rows=%zu",
                outcome->result.rows.size());
  EXPECT_NE(outcome->analyzed_plan.find(expected), std::string::npos)
      << outcome->analyzed_plan;
  EXPECT_NE(outcome->analyzed_plan.find("time="), std::string::npos);
  EXPECT_NE(outcome->analyzed_plan.find("next="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, AnalyzeTreeStructureMatchesPlan) {
  query::ExecStats stats;
  auto physical = planner_->Plan("SELECT acc FROM proteins WHERE score > 95.0",
                                 query::PlannerOptions::Optimized(), &stats);
  ASSERT_TRUE(physical.ok());
  util::SimulatedClock clock;
  (*physical)->EnableAnalyze(&clock);
  auto result = query::ExecutePlan(physical->get());
  ASSERT_TRUE(result.ok());
  obs::ExplainNode root = (*physical)->AnalyzeTree();
  EXPECT_EQ(root.rows_out, static_cast<int64_t>(result->rows.size()));
  // Next() is called once per row plus the exhausted call.
  EXPECT_EQ(root.next_calls, root.rows_out + 1);
  std::string rendered = obs::RenderExplainTree(root);
  EXPECT_NE(rendered.find("rows="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, AnalyzeBypassesResultCache) {
  query::ResultCache cache(1 << 20);
  query::Planner planner(&catalog_, &cache);
  query::PlannerOptions options = query::PlannerOptions::Optimized();
  options.use_result_cache = true;
  const char* sql = "EXPLAIN ANALYZE SELECT acc FROM proteins";
  auto first = planner.Run(sql, options);
  ASSERT_TRUE(first.ok());
  auto second = planner.Run(sql, options);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_result_cache);
  EXPECT_FALSE(second->analyzed_plan.empty());
}

}  // namespace
}  // namespace drugtree
