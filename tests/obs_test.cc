// Observability layer tests: metric registry semantics, span nesting with
// simulated-clock attribution, and EXPLAIN / EXPLAIN ANALYZE through the
// full parse -> plan -> execute pipeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/resource_tracker.h"
#include "obs/slo_tracker.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "obs/trace_store.h"
#include "query/planner.h"
#include "util/clock.h"

namespace drugtree {
namespace {

using obs::MetricRegistry;
using obs::Tracer;

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, CounterRegisterSnapshotReset) {
  MetricRegistry registry;
  obs::Counter* c = registry.GetCounter("test.counter");
  ASSERT_NE(c, nullptr);
  // Same (name, labels) -> same pointer (the hot-path caching contract).
  EXPECT_EQ(c, registry.GetCounter("test.counter"));

  c->Add(5);
  c->Increment();
  EXPECT_EQ(c->Value(), 6);
  EXPECT_EQ(registry.Snapshot().Value("test.counter"), 6);

  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(registry.Snapshot().Value("test.counter"), 0);
}

TEST(MetricRegistryTest, LabelsDiscriminateInstances) {
  MetricRegistry registry;
  obs::Counter* a = registry.GetCounter("net.requests", {{"link", "3g"}});
  obs::Counter* b = registry.GetCounter("net.requests", {{"link", "wifi"}});
  EXPECT_NE(a, b);
  a->Add(2);
  b->Add(7);
  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.Value("net.requests{link=3g}"), 2);
  EXPECT_EQ(snapshot.Value("net.requests{link=wifi}"), 7);
}

TEST(MetricRegistryTest, GaugeAndHistogram) {
  MetricRegistry registry;
  obs::Gauge* g = registry.GetGauge("test.gauge");
  g->Set(42);
  g->Add(-2);
  EXPECT_EQ(g->Value(), 40);

  obs::HistogramMetric* h = registry.GetHistogram("test.latency");
  h->Observe(1.0);
  h->Observe(3.0);
  auto snapshot = registry.Snapshot();
  const obs::MetricSnapshot* hist = snapshot.Find("test.latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(hist->hist.count(), 2);
  EXPECT_DOUBLE_EQ(hist->hist.Mean(), 2.0);
}

TEST(MetricRegistryTest, SnapshotIsSortedAndRenders) {
  MetricRegistry registry;
  registry.GetCounter("b.metric")->Add(1);
  registry.GetCounter("a.metric")->Add(2);
  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 2u);
  EXPECT_EQ(snapshot.metrics[0].name, "a.metric");
  EXPECT_EQ(snapshot.metrics[1].name, "b.metric");
  EXPECT_NE(snapshot.ToText().find("a.metric"), std::string::npos);
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"name\":\"a.metric\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":2"), std::string::npos);
}

TEST(MetricRegistryTest, CounterIsThreadSafe) {
  MetricRegistry registry;
  obs::Counter* c = registry.GetCounter("test.parallel");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kAddsPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), kThreads * kAddsPerThread);
}

// Audit result (gauge Set vs concurrent snapshot): Gauge is one relaxed
// std::atomic<int64_t>, so a registry Snapshot() racing Set()/Add() reads a
// whole former value — no torn read is possible, and no update is lost
// because Set is a plain store and Add a fetch_add. This hammer pins that:
// under TSan any regression to a non-atomic value_ (or an unlocked map walk
// in Snapshot) reports a data race, and the post-join assertions catch lost
// updates.
TEST(MetricRegistryTest, GaugeSetRacesSnapshotWithoutTearing) {
  MetricRegistry registry;
  obs::Gauge* g = registry.GetGauge("test.gauge_race");
  obs::Gauge* adder = registry.GetGauge("test.gauge_adder");
  constexpr int kWriters = 4;
  constexpr int kIters = 4000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Values distinguishable per writer: a torn read would surface a
        // value no single writer ever stored.
        g->Set(static_cast<int64_t>(t + 1) * 1'000'000'007);
        adder->Add(1);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      obs::RegistrySnapshot snap = registry.Snapshot();
      int64_t v = snap.Value("test.gauge_race");
      // Every observed value is exactly one writer's store (or the initial
      // zero), never a mix of two writers' bit patterns.
      bool whole = v == 0;
      for (int t = 0; t < kWriters; ++t) {
        whole = whole || v == static_cast<int64_t>(t + 1) * 1'000'000'007;
      }
      EXPECT_TRUE(whole) << "torn gauge read: " << v;
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(kWriters * kIters, adder->Value());  // no lost Add
  g->Set(42);
  EXPECT_EQ(42, g->Value());  // last write wins after quiescence
}

// ---------------------------------------------------------------------------
// Span tracing
// ---------------------------------------------------------------------------

TEST(TracerTest, NestedSpansWithSimulatedClockAttribution) {
  util::SimulatedClock clock;
  Tracer* tracer = Tracer::Default();
  tracer->set_clock(&clock);
  tracer->set_capture(true);
  tracer->Clear();

  {
    obs::ScopedSpan outer(tracer, "test.outer");
    clock.AdvanceMicros(100);
    {
      obs::ScopedSpan inner(tracer, "test.inner");
      clock.AdvanceMicros(250);
    }
    clock.AdvanceMicros(50);
  }
  tracer->set_clock(nullptr);
  tracer->set_capture(false);

  const obs::Span* root = tracer->last_trace();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "test.outer");
  EXPECT_EQ(root->DurationMicros(), 400);
  EXPECT_EQ(root->SelfMicros(), 150);
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_EQ(root->children[0]->name, "test.inner");
  EXPECT_EQ(root->children[0]->DurationMicros(), 250);

  std::string rendered = tracer->RenderLastTrace();
  EXPECT_NE(rendered.find("test.outer"), std::string::npos);
  EXPECT_NE(rendered.find("test.inner"), std::string::npos);
  std::string json = tracer->LastTraceJson();
  EXPECT_NE(json.find("\"name\":\"test.inner\""), std::string::npos);
}

TEST(TracerTest, SpansMirrorIntoRegistry) {
  util::SimulatedClock clock;
  Tracer* tracer = Tracer::Default();
  tracer->set_clock(&clock);
  tracer->set_capture(true);
  MetricRegistry::Default()->ResetAll();

  for (int i = 0; i < 3; ++i) {
    obs::ScopedSpan span(tracer, "test.mirrored");
    clock.AdvanceMicros(10);
  }
  tracer->set_clock(nullptr);
  tracer->set_capture(false);

  auto snapshot = MetricRegistry::Default()->Snapshot();
  EXPECT_EQ(snapshot.Value("span.test.mirrored.count"), 3);
  EXPECT_EQ(snapshot.Value("span.test.mirrored.total_micros"), 30);
}

TEST(TracerTest, SiteSpansMirrorWithoutCapture) {
  // DT_SPAN's default path: capture off means no span tree is built, but the
  // per-site counters still accumulate off the tracer clock.
  util::SimulatedClock clock;
  Tracer* tracer = Tracer::Default();
  tracer->set_clock(&clock);
  tracer->Clear();
  MetricRegistry::Default()->ResetAll();
  ASSERT_FALSE(tracer->capturing());

  static const obs::SpanSite site("test.nocapture");
  for (int i = 0; i < 4; ++i) {
    obs::ScopedSpan span(tracer, site);
    clock.AdvanceMicros(25);
  }
  tracer->set_clock(nullptr);

  auto snapshot = MetricRegistry::Default()->Snapshot();
  EXPECT_EQ(snapshot.Value("span.test.nocapture.count"), 4);
  EXPECT_EQ(snapshot.Value("span.test.nocapture.total_micros"), 100);
  EXPECT_EQ(tracer->last_trace(), nullptr);
}

TEST(TracerTest, DisabledTracerIsInert) {
  Tracer* tracer = Tracer::Default();
  tracer->Clear();
  tracer->set_enabled(false);
  {
    obs::ScopedSpan span(tracer, "test.disabled");
  }
  tracer->set_enabled(true);
  EXPECT_EQ(tracer->last_trace(), nullptr);
}

// ---------------------------------------------------------------------------
// EXPLAIN / EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

using storage::IndexKind;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pschema = Schema::Create({{"acc", ValueType::kString, false},
                                   {"family", ValueType::kString, false},
                                   {"score", ValueType::kDouble, false}});
    proteins_ = std::make_unique<Table>("proteins", *pschema);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(proteins_
                      ->Insert({Value::String("P" + std::to_string(i)),
                                Value::String(i % 2 ? "famA" : "famB"),
                                Value::Double(i * 10.0)})
                      .ok());
    }
    auto aschema = Schema::Create({{"acc", ValueType::kString, false},
                                   {"aff", ValueType::kDouble, false}});
    activities_ = std::make_unique<Table>("activities", *aschema);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(activities_
                      ->Insert({Value::String("P" + std::to_string(i)),
                                Value::Double(i * 5.0)})
                      .ok());
    }
    ASSERT_TRUE(proteins_->Analyze().ok());
    ASSERT_TRUE(activities_->Analyze().ok());
    ASSERT_TRUE(catalog_.Register(proteins_.get()).ok());
    ASSERT_TRUE(catalog_.Register(activities_.get()).ok());
    planner_ = std::make_unique<query::Planner>(&catalog_);
  }

  std::unique_ptr<Table> proteins_, activities_;
  query::Catalog catalog_;
  std::unique_ptr<query::Planner> planner_;
};

TEST_F(ExplainAnalyzeTest, ParseStatementModes) {
  auto plain = query::ParseStatement("SELECT acc FROM proteins");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->explain, query::ExplainMode::kNone);

  auto plan = query::ParseStatement("EXPLAIN SELECT acc FROM proteins");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->explain, query::ExplainMode::kPlan);

  auto analyze =
      query::ParseStatement("explain analyze SELECT acc FROM proteins");
  ASSERT_TRUE(analyze.ok());
  EXPECT_EQ(analyze->explain, query::ExplainMode::kAnalyze);

  EXPECT_FALSE(query::ParseStatement("EXPLAIN ANALYZE").ok());
}

TEST_F(ExplainAnalyzeTest, ExplainPlanSkipsExecution) {
  auto outcome = planner_->Run("EXPLAIN SELECT acc FROM proteins",
                               query::PlannerOptions::Optimized());
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->physical_plan.empty());
  EXPECT_TRUE(outcome->analyzed_plan.empty());
  EXPECT_TRUE(outcome->result.rows.empty());  // not executed
}

TEST_F(ExplainAnalyzeTest, AnalyzeRowCountsMatchResult) {
  const char* sql =
      "EXPLAIN ANALYZE SELECT p.acc, a.aff FROM proteins p "
      "JOIN activities a ON p.acc = a.acc WHERE a.aff < 50.0";
  auto outcome = planner_->Run(sql, query::PlannerOptions::Optimized());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result.rows.size(), 10u);
  ASSERT_FALSE(outcome->analyzed_plan.empty());
  // The root operator's rows_out must equal the materialized row count.
  char expected[64];
  std::snprintf(expected, sizeof(expected), "rows=%zu",
                outcome->result.rows.size());
  EXPECT_NE(outcome->analyzed_plan.find(expected), std::string::npos)
      << outcome->analyzed_plan;
  EXPECT_NE(outcome->analyzed_plan.find("time="), std::string::npos);
  EXPECT_NE(outcome->analyzed_plan.find("next="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, AnalyzeTreeStructureMatchesPlan) {
  query::ExecStats stats;
  auto physical = planner_->Plan("SELECT acc FROM proteins WHERE score > 95.0",
                                 query::PlannerOptions::Optimized(), &stats);
  ASSERT_TRUE(physical.ok());
  util::SimulatedClock clock;
  (*physical)->EnableAnalyze(&clock);
  auto result = query::ExecutePlan(physical->get());
  ASSERT_TRUE(result.ok());
  obs::ExplainNode root = (*physical)->AnalyzeTree();
  EXPECT_EQ(root.rows_out, static_cast<int64_t>(result->rows.size()));
  // Next() is called once per row plus the exhausted call.
  EXPECT_EQ(root.next_calls, root.rows_out + 1);
  std::string rendered = obs::RenderExplainTree(root);
  EXPECT_NE(rendered.find("rows="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, AnalyzeBypassesResultCache) {
  query::ResultCache cache(1 << 20);
  query::Planner planner(&catalog_, &cache);
  query::PlannerOptions options = query::PlannerOptions::Optimized();
  options.use_result_cache = true;
  const char* sql = "EXPLAIN ANALYZE SELECT acc FROM proteins";
  auto first = planner.Run(sql, options);
  ASSERT_TRUE(first.ok());
  auto second = planner.Run(sql, options);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_result_cache);
  EXPECT_FALSE(second->analyzed_plan.empty());
}

TEST(MetricRegistryTest, HistogramValueAtPercentile) {
  MetricRegistry registry;
  obs::HistogramMetric* h = registry.GetHistogram("test.latency");
  for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));
  EXPECT_GT(h->ValueAtPercentile(99), h->ValueAtPercentile(50));
  double p50 = h->ValueAtPercentile(50);
  EXPECT_GE(p50, 40.0);
  EXPECT_LE(p50, 60.0);
  // Matches the snapshot-derived percentile exactly (same bucket math).
  EXPECT_DOUBLE_EQ(p50, h->Snapshot().Percentile(50));
}

// ---------------------------------------------------------------------------
// Per-query trace context + trace store
// ---------------------------------------------------------------------------

TEST(TraceContextTest, PhaseTimelineIsExactOnVirtualClock) {
  util::SimulatedClock clock;
  obs::TraceContext trace(7, &clock);
  trace.set_query_class("interactive");
  trace.set_lane("slot-0");
  trace.AddPhaseInterval(obs::TracePhase::kAdmit, 0, 100);
  clock.AdvanceMicros(100);
  trace.BeginPhase(obs::TracePhase::kPlan);
  clock.AdvanceMicros(250);
  trace.EndPhase(obs::TracePhase::kPlan);
  trace.BeginPhase(obs::TracePhase::kExecute);
  clock.AdvanceMicros(1'000);
  trace.AddBlockedMicros(obs::TracePhase::kFetchBlocked, 400);
  trace.EndPhase(obs::TracePhase::kExecute);
  EXPECT_EQ(trace.PhaseMicros(obs::TracePhase::kPlan), 250);

  obs::TraceRecord record = trace.Finish("ok", true);
  EXPECT_EQ(record.trace_id, 7u);
  EXPECT_TRUE(record.ok);
  EXPECT_EQ(record.TotalMicros(), 1'350);
  EXPECT_EQ(record.PhaseMicros(obs::TracePhase::kAdmit), 100);
  EXPECT_EQ(record.PhaseMicros(obs::TracePhase::kPlan), 250);
  EXPECT_EQ(record.PhaseMicros(obs::TracePhase::kExecute), 1'000);
  EXPECT_EQ(record.PhaseMicros(obs::TracePhase::kFetchBlocked), 400);
  // Intervals come back in timeline order regardless of close order (the
  // execute interval closed after the nested fetch_blocked one).
  ASSERT_EQ(record.intervals.size(), 4u);
  EXPECT_EQ(record.intervals[0].phase, obs::TracePhase::kAdmit);
  EXPECT_EQ(record.intervals[2].phase, obs::TracePhase::kExecute);
  for (size_t i = 1; i < record.intervals.size(); ++i) {
    EXPECT_GE(record.intervals[i].start_micros,
              record.intervals[i - 1].start_micros);
  }
  std::string timeline = record.TimelineString();
  EXPECT_NE(timeline.find("plan"), std::string::npos);
  EXPECT_NE(timeline.find("fetch_blocked"), std::string::npos);
}

TEST(TraceContextTest, FinishClosesOpenPhasesAndUnmatchedEndIsIgnored) {
  util::SimulatedClock clock;
  obs::TraceContext trace(1, &clock);
  trace.EndPhase(obs::TracePhase::kPlan);  // no matching open: ignored
  trace.BeginPhase(obs::TracePhase::kExecute);
  clock.AdvanceMicros(500);
  obs::TraceRecord record = trace.Finish("cancelled", false);
  EXPECT_EQ(record.PhaseMicros(obs::TracePhase::kPlan), 0);
  EXPECT_EQ(record.PhaseMicros(obs::TracePhase::kExecute), 500);
  EXPECT_FALSE(record.ok);
  EXPECT_EQ(record.status, "cancelled");
}

TEST(TraceContextTest, ScopedInstallNestsAndPhaseScopeIsInertUntraced) {
  EXPECT_EQ(obs::TraceContext::Current(), nullptr);
  { obs::TracePhaseScope untraced(obs::TracePhase::kExecute); }  // no-op
  util::SimulatedClock clock;
  obs::TraceContext outer(1, &clock);
  obs::TraceContext inner(2, &clock);
  {
    obs::ScopedTraceContext install_outer(&outer);
    EXPECT_EQ(obs::TraceContext::Current(), &outer);
    {
      obs::ScopedTraceContext install_inner(&inner);
      EXPECT_EQ(obs::TraceContext::Current(), &inner);
      obs::TracePhaseScope phase(obs::TracePhase::kPlan);
      clock.AdvanceMicros(40);
    }
    EXPECT_EQ(obs::TraceContext::Current(), &outer);
  }
  EXPECT_EQ(obs::TraceContext::Current(), nullptr);
  EXPECT_EQ(inner.PhaseMicros(obs::TracePhase::kPlan), 40);
  EXPECT_EQ(outer.PhaseMicros(obs::TracePhase::kPlan), 0);
}

TEST(TraceContextTest, FetchEventsAndCountersSurviveIntoRecord) {
  util::SimulatedClock clock;
  obs::TraceContext trace(3, &clock);
  trace.AddFetchEvent(/*channel=*/1, /*start=*/10, /*end=*/250,
                      /*bytes=*/4096);
  trace.BumpCounter("result_cache_hit");
  trace.BumpCounter("result_cache_hit");
  obs::TraceRecord record = trace.Finish("ok", true);
  ASSERT_EQ(record.fetches.size(), 1u);
  EXPECT_EQ(record.fetches[0].channel, 1);
  EXPECT_EQ(record.fetches[0].bytes, 4096u);
  EXPECT_EQ(record.counters.at("result_cache_hit"), 2);
}

obs::TraceRecord MakeTraceRecord(uint64_t id, const std::string& cls,
                                 int64_t begin_micros, int64_t total_micros) {
  util::SimulatedClock clock;
  clock.AdvanceMicros(begin_micros);
  obs::TraceContext trace(id, &clock);
  trace.set_query_class(cls);
  trace.BeginPhase(obs::TracePhase::kExecute);
  clock.AdvanceMicros(total_micros);
  trace.EndPhase(obs::TracePhase::kExecute);
  return trace.Finish("ok", true);
}

TEST(TraceStoreTest, RingOverwritesBeyondCapacityAndCountsDrops) {
  obs::TraceStore store(/*capacity=*/16);
  for (uint64_t id = 0; id < 40; ++id) {
    store.Record(MakeTraceRecord(id, "interactive",
                                 /*begin_micros=*/static_cast<int64_t>(id),
                                 /*total_micros=*/10));
  }
  EXPECT_EQ(store.total_recorded(), 40);
  EXPECT_EQ(store.dropped(), 24);
  EXPECT_EQ(store.Snapshot().size(), 16u);
  store.Clear();
  EXPECT_EQ(store.total_recorded(), 0);
  EXPECT_TRUE(store.Snapshot().empty());
}

TEST(TraceStoreTest, SlowLogCapturesOffendersInTimelineOrder) {
  obs::TraceStore store(/*capacity=*/64, /*slow_threshold_micros=*/1'000);
  store.Record(MakeTraceRecord(1, "interactive", 500, 2'000));  // slow
  store.Record(MakeTraceRecord(2, "interactive", 0, 5'000));    // slow, first
  store.Record(MakeTraceRecord(3, "interactive", 100, 10));     // fast
  EXPECT_EQ(store.slow_count(), 2);
  std::vector<obs::TraceRecord> slow = store.SlowQueries();
  ASSERT_EQ(slow.size(), 2u);
  // Sorted by begin time, not filing order.
  EXPECT_EQ(slow[0].trace_id, 2u);
  EXPECT_EQ(slow[1].trace_id, 1u);
  EXPECT_TRUE(slow[0].slow);
  EXPECT_EQ(store.Snapshot().size(), 3u);  // the fast one is still retained
}

TEST(TraceStoreTest, ConcurrentRecordingIsSafeAndLossAccounted) {
  obs::TraceStore store(/*capacity=*/128);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t id = static_cast<uint64_t>(t) * 1'000 +
                      static_cast<uint64_t>(i);
        store.Record(MakeTraceRecord(id, "interactive", i, 10));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.total_recorded(), kThreads * kPerThread);
  EXPECT_EQ(store.Snapshot().size(), 128u);
  EXPECT_EQ(store.dropped(), kThreads * kPerThread - 128);
}

TEST(ChromeTraceExportTest, EmitsMetadataAndCompleteEvents) {
  util::SimulatedClock clock;
  obs::TraceContext trace(9, &clock);
  trace.set_query_class("interactive");
  trace.set_lane("slot-1");
  trace.set_sql("SELECT 1");
  trace.BeginPhase(obs::TracePhase::kExecute);
  clock.AdvanceMicros(100);
  trace.EndPhase(obs::TracePhase::kExecute);
  trace.AddFetchEvent(/*channel=*/0, /*start=*/20, /*end=*/80, /*bytes=*/512);
  std::vector<obs::TraceRecord> records;
  records.push_back(trace.Finish("ok", true));

  std::string json = obs::ExportChromeTrace(records);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // lane metadata
  EXPECT_NE(json.find("\"name\":\"slot-1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"net-ch0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete events
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":100"), std::string::npos);
  // Cheap well-formedness check: balanced braces, closed at the end.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.back(), '}');
}

TEST(TailAttributionTest, SharesSumToOneWithExecuteNetOfFetch) {
  // One record: 60% queue wait, 40% execute of which half was fetch-blocked.
  util::SimulatedClock clock;
  obs::TraceContext trace(1, &clock);
  trace.set_query_class("interactive");
  trace.AddPhaseInterval(obs::TracePhase::kQueueWait, 0, 600);
  trace.AddPhaseInterval(obs::TracePhase::kExecute, 600, 1'000);
  trace.AddPhaseInterval(obs::TracePhase::kFetchBlocked, 700, 900);
  clock.AdvanceMicros(1'000);
  std::vector<obs::TraceRecord> records;
  records.push_back(trace.Finish("ok", true));

  std::vector<obs::TailAttribution> attr =
      obs::ComputeTailAttribution(records);
  ASSERT_EQ(attr.size(), 1u);
  EXPECT_EQ(attr[0].query_class, "interactive");
  EXPECT_EQ(attr[0].count, 1);
  EXPECT_EQ(attr[0].tail_count, 1);
  EXPECT_EQ(attr[0].p99_micros, 1'000);
  EXPECT_DOUBLE_EQ(
      attr[0].share[static_cast<size_t>(obs::TracePhase::kQueueWait)], 0.6);
  // Execute is reported net of the fetch-blocked time nested inside it.
  EXPECT_DOUBLE_EQ(
      attr[0].share[static_cast<size_t>(obs::TracePhase::kExecute)], 0.2);
  EXPECT_DOUBLE_EQ(
      attr[0].share[static_cast<size_t>(obs::TracePhase::kFetchBlocked)], 0.2);
  double sum = attr[0].other_share;
  for (double s : attr[0].share) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NE(attr[0].ToString().find("queue_wait"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Memory tracker hierarchy
// ---------------------------------------------------------------------------

TEST(MemoryTrackerTest, ChargePropagatesUpAndReleaseUnwinds) {
  obs::MemoryTracker root("server");
  obs::MemoryTracker* cls = root.GetOrCreateChild("interactive");
  obs::MemoryTracker* session = cls->GetOrCreateChild("session-1");

  EXPECT_TRUE(session->TryCharge(1000).ok());
  EXPECT_EQ(session->used(), 1000);
  EXPECT_EQ(cls->used(), 1000);
  EXPECT_EQ(root.used(), 1000);

  session->Release(400);
  EXPECT_EQ(session->used(), 600);
  EXPECT_EQ(root.used(), 600);
  session->Release(600);
  EXPECT_EQ(root.used(), 0);
  // Peak watermarks survive the release.
  EXPECT_EQ(session->peak(), 1000);
  EXPECT_EQ(root.peak(), 1000);
}

TEST(MemoryTrackerTest, HardLimitFailsChargeAndRollsBackWholeChain) {
  obs::MemoryTracker root("server");
  obs::MemoryTracker* child =
      root.GetOrCreateChild("limited", /*soft_limit_bytes=*/0,
                            /*hard_limit_bytes=*/1000);
  EXPECT_TRUE(child->TryCharge(800).ok());
  util::Status s = child->TryCharge(300);
  EXPECT_TRUE(s.IsResourceExhausted());
  // The failed charge must leave every level exactly where it was.
  EXPECT_EQ(child->used(), 800);
  EXPECT_EQ(root.used(), 800);
  // Peak reflects only successful charges.
  EXPECT_EQ(child->peak(), 800);
}

TEST(MemoryTrackerTest, HardLimitOnAncestorRollsBackDescendantCharge) {
  obs::MemoryTracker root("server", nullptr, /*soft_limit_bytes=*/0,
                          /*hard_limit_bytes=*/1000);
  obs::MemoryTracker* child = root.GetOrCreateChild("query");
  EXPECT_TRUE(child->TryCharge(900).ok());
  EXPECT_TRUE(child->TryCharge(200).IsResourceExhausted());
  EXPECT_EQ(child->used(), 900);
  EXPECT_EQ(root.used(), 900);
}

TEST(MemoryTrackerTest, SoftLimitObservableButNeverBlocks) {
  obs::MemoryTracker t("server", nullptr, /*soft_limit_bytes=*/100);
  EXPECT_FALSE(t.OverSoftLimit());
  EXPECT_TRUE(t.TryCharge(100).ok());
  EXPECT_TRUE(t.OverSoftLimit());
  EXPECT_TRUE(t.TryCharge(100).ok());  // soft limit sheds, it doesn't fail
  t.Release(200);
  EXPECT_FALSE(t.OverSoftLimit());
}

TEST(MemoryTrackerTest, ScopedChargeAndDestructorReleaseBalanceParent) {
  obs::MemoryTracker root("server");
  {
    obs::ScopedMemoryCharge charge(&root, 5000);
    EXPECT_EQ(root.used(), 5000);
  }
  EXPECT_EQ(root.used(), 0);
  {
    // A child destroyed with outstanding usage returns it to the parent.
    obs::MemoryTracker local("query", &root);
    EXPECT_TRUE(local.TryCharge(700).ok());
    EXPECT_EQ(root.used(), 700);
  }
  EXPECT_EQ(root.used(), 0);
  EXPECT_EQ(root.peak(), 5000);
}

TEST(MemoryTrackerTest, GetOrCreateChildDedupesAndToJsonNestsChildren) {
  obs::MemoryTracker root("server");
  obs::MemoryTracker* a = root.GetOrCreateChild("interactive");
  EXPECT_EQ(a, root.GetOrCreateChild("interactive"));
  obs::MemoryTracker* b = root.GetOrCreateChild("analytic");
  ASSERT_TRUE(b->TryCharge(42).ok());
  std::string json = root.ToJson();
  EXPECT_NE(json.find("\"name\":\"server\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"interactive\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"analytic\""), std::string::npos);
  EXPECT_NE(json.find("\"used\":42"), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
}

// ---------------------------------------------------------------------------
// SLO tracker
// ---------------------------------------------------------------------------

TEST(SloTrackerTest, BurnRateAndComplianceMatchRecordedOutcomes) {
  util::SimulatedClock clock;
  clock.AdvanceMicros(1'000'000);
  obs::SloOptions opts;
  opts.target_latency_micros = 10'000;
  opts.objective = 0.9;  // error budget = 10%
  opts.window_micros = 60'000'000;
  obs::SloTracker slo("test-class", opts, &clock);

  // 8 good, 1 slow-but-ok (bad), 1 failed (bad) -> 20% bad, burn = 2.0.
  for (int i = 0; i < 8; ++i) slo.Record(5'000, /*ok=*/true);
  slo.Record(50'000, /*ok=*/true);
  slo.Record(5'000, /*ok=*/false);

  obs::SloTracker::Snapshot snap = slo.GetSnapshot();
  EXPECT_EQ(snap.window_total, 10);
  EXPECT_EQ(snap.window_good, 8);
  EXPECT_EQ(snap.window_bad, 2);
  EXPECT_DOUBLE_EQ(snap.compliance, 0.8);
  EXPECT_NEAR(snap.burn_rate, 2.0, 1e-9);
  EXPECT_EQ(snap.total, 10);

  std::string json = slo.ToJson();
  EXPECT_NE(json.find("\"name\":\"test-class\""), std::string::npos);
  EXPECT_NE(json.find("\"window_total\":10"), std::string::npos);
  EXPECT_NE(json.find("\"burn_rate\""), std::string::npos);
}

TEST(SloTrackerTest, WindowExpiresOldBucketsCumulativeDoesNot) {
  util::SimulatedClock clock;
  obs::SloOptions opts;
  opts.target_latency_micros = 10'000;
  opts.objective = 0.99;
  opts.window_micros = 10'000'000;  // 10s window,
  opts.num_buckets = 10;            // 1s buckets
  obs::SloTracker slo("test-window", opts, &clock);

  slo.Record(5'000, /*ok=*/false);  // bad, at t=0
  EXPECT_EQ(slo.GetSnapshot().window_bad, 1);

  // Advance past the whole window; the bad outcome ages out of the rolling
  // view but stays in the cumulative totals.
  clock.AdvanceMicros(20'000'000);
  obs::SloTracker::Snapshot snap = slo.GetSnapshot();
  EXPECT_EQ(snap.window_total, 0);
  EXPECT_EQ(snap.window_bad, 0);
  EXPECT_DOUBLE_EQ(snap.compliance, 1.0);  // idle window = compliant
  EXPECT_DOUBLE_EQ(snap.burn_rate, 0.0);
  EXPECT_EQ(snap.total, 1);
  EXPECT_EQ(snap.bad, 1);
}

// ---------------------------------------------------------------------------
// TraceStore ring wraparound (regression pin)
// ---------------------------------------------------------------------------

TEST(TraceStoreTest, WraparoundKeepsNewestPerShardSortedWithDropAccounting) {
  // capacity 16 over 8 shards = 2 records per shard. All trace ids are
  // multiples of 8, so every record lands in shard 0 and the third record
  // starts overwriting. The ring must retain the NEWEST records and
  // Snapshot() must come back begin-time-sorted after wraparound.
  obs::TraceStore store(/*capacity=*/16);
  const uint64_t ids[] = {8, 16, 24, 32, 40};
  int64_t begin = 100;
  for (uint64_t id : ids) {
    store.Record(MakeTraceRecord(id, "interactive", begin, /*total=*/10));
    begin += 100;
  }
  EXPECT_EQ(store.total_recorded(), 5);
  EXPECT_EQ(store.dropped(), 3);  // 5 filed into a 2-slot shard
  std::vector<obs::TraceRecord> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // Oldest-first eviction: survivors are the last two records, in begin
  // order (id 32 began at 400, id 40 at 500).
  EXPECT_EQ(snap[0].trace_id, 32u);
  EXPECT_EQ(snap[1].trace_id, 40u);
  EXPECT_LT(snap[0].begin_micros, snap[1].begin_micros);
}

TEST(TraceStoreTest, CeilingCapacitySplitNeverUndersizesStore) {
  // capacity 12 over 8 shards must hold at least 12 records (2 per shard),
  // not the 8 a truncating split would keep.
  obs::TraceStore store(/*capacity=*/12);
  for (uint64_t id = 0; id < 12; ++id) {
    store.Record(MakeTraceRecord(id, "interactive",
                                 static_cast<int64_t>(id), /*total=*/10));
  }
  EXPECT_EQ(store.dropped(), 0);
  EXPECT_EQ(store.Snapshot().size(), 12u);
}

// ---------------------------------------------------------------------------
// HistogramMetric percentile edge cases
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, HistogramPercentileEdgeCases) {
  MetricRegistry registry;
  obs::HistogramMetric* empty = registry.GetHistogram("test.empty");
  EXPECT_DOUBLE_EQ(empty->ValueAtPercentile(0), 0.0);
  EXPECT_DOUBLE_EQ(empty->ValueAtPercentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty->ValueAtPercentile(100), 0.0);

  // A single observation: every percentile is that observation, exactly
  // (p0 -> min, p100 -> max, no bucket-interpolation artifacts).
  obs::HistogramMetric* one = registry.GetHistogram("test.single");
  one->Observe(42.0);
  EXPECT_DOUBLE_EQ(one->ValueAtPercentile(0), 42.0);
  EXPECT_DOUBLE_EQ(one->ValueAtPercentile(50), 42.0);
  EXPECT_DOUBLE_EQ(one->ValueAtPercentile(100), 42.0);

  // All mass in one bucket: p0/p100 pin to the true min/max even though
  // the bucket spans a wider range.
  obs::HistogramMetric* same = registry.GetHistogram("test.samebucket");
  same->Observe(100.0);
  same->Observe(100.5);
  same->Observe(101.0);
  EXPECT_DOUBLE_EQ(same->ValueAtPercentile(0), 100.0);
  EXPECT_DOUBLE_EQ(same->ValueAtPercentile(100), 101.0);
  double p50 = same->ValueAtPercentile(50);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 126.0);  // within the 1.25x bucket above 100

  // Out-of-range p clamps to the data extremes.
  EXPECT_DOUBLE_EQ(same->ValueAtPercentile(-5), 100.0);
  EXPECT_DOUBLE_EQ(same->ValueAtPercentile(250), 101.0);
}

}  // namespace
}  // namespace drugtree
