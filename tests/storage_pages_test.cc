// DiskManager, BufferPool, and HeapFile tests (on-disk path).

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "util/rng.h"

namespace drugtree {
namespace storage {
namespace {

class DiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/drugtree_pages_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db";
    std::remove(path_.c_str());
    auto dm = DiskManager::Open(path_);
    ASSERT_TRUE(dm.ok());
    disk_ = std::move(*dm);
  }
  void TearDown() override {
    disk_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<DiskManager> disk_;
};

TEST_F(DiskTest, AllocateReadWrite) {
  auto id = disk_->AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  Page page;
  page.WriteAt<uint64_t>(16, 0xDEADBEEFCAFEF00DULL);
  ASSERT_TRUE(disk_->WritePage(*id, page).ok());
  Page loaded;
  ASSERT_TRUE(disk_->ReadPage(*id, &loaded).ok());
  EXPECT_EQ(loaded.ReadAt<uint64_t>(16), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(loaded.id(), *id);
}

TEST_F(DiskTest, ReadPastEndFails) {
  Page page;
  EXPECT_TRUE(disk_->ReadPage(5, &page).IsOutOfRange());
}

TEST_F(DiskTest, CountersTrackIo) {
  auto id = disk_->AllocatePage();
  ASSERT_TRUE(id.ok());
  uint64_t w0 = disk_->writes();
  Page page;
  ASSERT_TRUE(disk_->WritePage(*id, page).ok());
  EXPECT_EQ(disk_->writes(), w0 + 1);
  ASSERT_TRUE(disk_->ReadPage(*id, &page).ok());
  EXPECT_EQ(disk_->reads(), 1u);
}

TEST_F(DiskTest, BufferPoolHitsAndMisses) {
  BufferPool pool(disk_.get(), 4);
  auto p = pool.Allocate();
  ASSERT_TRUE(p.ok());
  PageId id = (*p)->id();
  {
    PageGuard moved = std::move(*p);  // guard still pins
  }                                   // unpinned here
  auto fetch1 = pool.Fetch(id);
  ASSERT_TRUE(fetch1.ok());
  EXPECT_EQ(pool.hits(), 1u);  // still resident
  {
    auto fetch2 = pool.Fetch(id);
    ASSERT_TRUE(fetch2.ok());
    EXPECT_EQ(pool.hits(), 2u);
  }
}

TEST_F(DiskTest, BufferPoolEvictsLruAndWritesBack) {
  BufferPool pool(disk_.get(), 2);
  PageId ids[3];
  for (auto& id : ids) {
    auto p = pool.Allocate();
    ASSERT_TRUE(p.ok());
    id = (*p)->id();
    (*p)->WriteAt<uint32_t>(0, id + 100);
  }
  // Pool held 2 frames; allocating 3 pages forced an eviction with
  // write-back. All three pages must read back correctly.
  for (auto id : ids) {
    auto p = pool.Fetch(id);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ((*p)->ReadAt<uint32_t>(0), id + 100);
  }
}

TEST_F(DiskTest, BufferPoolAllPinnedFails) {
  BufferPool pool(disk_.get(), 2);
  auto a = pool.Allocate();
  auto b = pool.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.Allocate();
  EXPECT_TRUE(c.status().IsResourceExhausted());
}

TEST_F(DiskTest, FlushAllPersists) {
  BufferPool pool(disk_.get(), 4);
  PageId id;
  {
    auto p = pool.Allocate();
    ASSERT_TRUE(p.ok());
    id = (*p)->id();
    (*p)->WriteAt<uint32_t>(8, 777);
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  Page direct;
  ASSERT_TRUE(disk_->ReadPage(id, &direct).ok());
  EXPECT_EQ(direct.ReadAt<uint32_t>(8), 777u);
}

TEST_F(DiskTest, HeapFileInsertGetDelete) {
  BufferPool pool(disk_.get(), 8);
  auto hf = HeapFile::Create(&pool);
  ASSERT_TRUE(hf.ok());
  auto r1 = hf->Insert("hello");
  auto r2 = hf->Insert("world");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*hf->Get(*r1), "hello");
  EXPECT_EQ(*hf->Get(*r2), "world");
  ASSERT_TRUE(hf->Delete(*r1).ok());
  EXPECT_TRUE(hf->Get(*r1).status().IsNotFound());
  EXPECT_EQ(*hf->Count(), 1);
}

TEST_F(DiskTest, HeapFileRejectsHugeRecord) {
  BufferPool pool(disk_.get(), 8);
  auto hf = HeapFile::Create(&pool);
  ASSERT_TRUE(hf.ok());
  EXPECT_TRUE(hf->Insert(std::string(5000, 'x')).status().IsInvalidArgument());
}

TEST_F(DiskTest, HeapFileSpansPages) {
  BufferPool pool(disk_.get(), 8);
  auto hf = HeapFile::Create(&pool);
  ASSERT_TRUE(hf.ok());
  std::vector<RecordId> ids;
  std::string record(500, 'r');
  for (int i = 0; i < 50; ++i) {  // 50 * 500B >> one 4 KiB page
    record[0] = char('a' + i % 26);
    auto id = hf->Insert(record);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  std::set<PageId> pages;
  for (const auto& id : ids) pages.insert(id.page);
  EXPECT_GT(pages.size(), 1u);
  for (int i = 0; i < 50; ++i) {
    auto rec = hf->Get(ids[static_cast<size_t>(i)]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ((*rec)[0], char('a' + i % 26));
  }
  EXPECT_EQ(*hf->Count(), 50);
}

TEST_F(DiskTest, HeapFileScanVisitsLiveRecords) {
  BufferPool pool(disk_.get(), 8);
  auto hf = HeapFile::Create(&pool);
  ASSERT_TRUE(hf.ok());
  auto a = hf->Insert("a");
  auto b = hf->Insert("b");
  auto c = hf->Insert("c");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(hf->Delete(*b).ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(hf->Scan([&](const RecordId&, const std::string& rec) {
                  seen.push_back(rec);
                  return util::Status::OK();
                }).ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "c"}));
}

TEST_F(DiskTest, HeapFileReopenSeesData) {
  BufferPool pool(disk_.get(), 8);
  PageId dir;
  {
    auto hf = HeapFile::Create(&pool);
    ASSERT_TRUE(hf.ok());
    dir = hf->directory_page();
    ASSERT_TRUE(hf->Insert("persisted").ok());
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  // Fresh buffer pool over the same file.
  BufferPool pool2(disk_.get(), 8);
  auto hf2 = HeapFile::Open(&pool2, dir);
  ASSERT_TRUE(hf2.ok());
  EXPECT_EQ(*hf2->Count(), 1);
  std::vector<std::string> seen;
  ASSERT_TRUE(hf2->Scan([&](const RecordId&, const std::string& rec) {
                   seen.push_back(rec);
                   return util::Status::OK();
                 }).ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"persisted"}));
}

}  // namespace
}  // namespace storage
}  // namespace drugtree
