// Sharded serving tier tests: interval partitions cover the pre axis and
// balance leaves, every sharded topology returns results bit-identical to
// the single-server path across the full query corpus (including
// boundary-straddling subtree queries) under batch and parallel execution,
// the routing decision table holds, replicas fail over mid-query, per-shard
// deadlines cancel deterministically, and the scatter-gather timeline is
// virtual-clock deterministic across identically-built topologies.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/drugtree.h"
#include "core/workload.h"
#include "obs/trace_context.h"
#include "obs/trace_store.h"
#include "phylo/tree.h"
#include "shard/partitioner.h"
#include "shard/router.h"
#include "util/clock.h"

namespace drugtree {
namespace shard {
namespace {

core::BuildOptions SmallBuild() {
  core::BuildOptions options;
  options.seed = 77;
  options.num_families = 3;
  options.taxa_per_family = 10;
  options.sequence_length = 90;
  options.num_ligands = 120;
  return options;
}

class ShardTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    clock_ = new util::SimulatedClock();
    auto built = core::DrugTree::Build(SmallBuild(), clock_);
    ASSERT_TRUE(built.ok()) << built.status();
    dt_ = built->release();
  }
  static void TearDownTestSuite() {
    delete dt_;
    dt_ = nullptr;
    delete clock_;
    clock_ = nullptr;
  }

  static RouterOptions Topology(int shards, int replicas) {
    RouterOptions options;
    options.num_shards = shards;
    options.replicas_per_shard = replicas;
    options.replica.worker_threads = 2;
    options.replica.scheduler.total_slots = 2;
    options.coordinator.worker_threads = 2;
    options.coordinator.scheduler.total_slots = 2;
    return options;
  }

  static server::QueryRequest Request(std::string sql,
                                      query::PlannerOptions planner =
                                          query::PlannerOptions()) {
    server::QueryRequest r;
    r.session_id = 1;
    r.sql = std::move(sql);
    r.query_class = server::QueryClass::kInteractive;
    r.planner = planner;
    return r;
  }

  /// Every corpus query shape focused on every internal node (subtree
  /// shapes) / every leaf (ancestor paths) — the focus sweep necessarily
  /// includes nodes whose intervals straddle every partition boundary.
  static std::vector<std::string> Corpus() {
    std::vector<std::string> sqls;
    core::WorkloadParams params;
    const phylo::Tree& tree = dt_->tree();
    for (phylo::NodeId id = 0; id < static_cast<phylo::NodeId>(tree.NumNodes());
         ++id) {
      if (tree.node(id).IsLeaf()) {
        sqls.push_back(core::MakeQuerySql(core::QueryKind::kAncestorPath, id,
                                          tree, params));
      } else {
        for (core::QueryKind kind : {core::QueryKind::kSubtreeProteins,
                                     core::QueryKind::kSubtreeOverlay,
                                     core::QueryKind::kScreeningJoin}) {
          sqls.push_back(core::MakeQuerySql(kind, id, tree, params));
        }
      }
    }
    sqls.push_back(core::MakeQuerySql(core::QueryKind::kFamilyAggregate,
                                      tree.root(), tree, params));
    return sqls;
  }

  static void ExpectCorpusIdentical(ShardRouter* router,
                                    const query::PlannerOptions& planner,
                                    const std::string& what) {
    for (const std::string& sql : Corpus()) {
      auto direct = dt_->Query(sql, planner);
      ASSERT_TRUE(direct.ok()) << what << ": " << sql << ": "
                               << direct.status();
      auto routed = router->Submit(Request(sql, planner));
      ASSERT_TRUE(routed.ok()) << what << ": " << sql << ": "
                               << routed.status();
      EXPECT_EQ(direct->result.columns, routed->result.columns)
          << what << ": " << sql;
      ASSERT_EQ(direct->result.rows.size(), routed->result.rows.size())
          << what << ": " << sql;
      for (size_t i = 0; i < direct->result.rows.size(); ++i) {
        ASSERT_EQ(direct->result.rows[i], routed->result.rows[i])
            << what << ": " << sql << " row " << i;
      }
    }
  }

  static util::SimulatedClock* clock_;
  static core::DrugTree* dt_;
};

util::SimulatedClock* ShardTest::clock_ = nullptr;
core::DrugTree* ShardTest::dt_ = nullptr;

TEST_F(ShardTest, SplitCoversPreAxisContiguouslyAndBalancesLeaves) {
  const phylo::Tree& tree = dt_->tree();
  const phylo::TreeIndex& index = dt_->tree_index();
  const auto num_nodes = static_cast<int32_t>(index.NumNodes());
  int64_t total_leaves = static_cast<int64_t>(tree.NumLeaves());
  for (int n : {1, 2, 4, 8}) {
    auto split = IntervalPartitioner::Split(tree, index, n);
    ASSERT_TRUE(split.ok()) << split.status();
    ASSERT_EQ(static_cast<int>(split->size()), n);
    int32_t expect_lo = 0;
    int64_t leaves = 0;
    for (int s = 0; s < n; ++s) {
      const ShardRange& r = (*split)[static_cast<size_t>(s)];
      EXPECT_EQ(r.shard, s);
      EXPECT_EQ(r.pre_lo, expect_lo);
      EXPECT_LE(r.pre_lo, r.pre_hi);
      expect_lo = r.pre_hi + 1;
      leaves += r.leaves;
      // Leaf-count balance: every shard within 2x of the even share.
      EXPECT_GE(r.leaves, 1) << "shard " << s << "/" << n;
      EXPECT_LE(r.leaves, 2 * (total_leaves + n - 1) / n + 1)
          << "shard " << s << "/" << n;
    }
    EXPECT_EQ(expect_lo, num_nodes);
    EXPECT_EQ(leaves, total_leaves);
  }
  EXPECT_FALSE(IntervalPartitioner::Split(tree, index, 0).ok());
  EXPECT_FALSE(
      IntervalPartitioner::Split(tree, index, num_nodes + 1).ok());
}

TEST_F(ShardTest, CorpusBitIdenticalAcrossTopologies) {
  for (int shards : {2, 4, 8}) {
    for (int replicas : {1, 2}) {
      auto router = dt_->MakeShardRouter(Topology(shards, replicas));
      ASSERT_TRUE(router.ok()) << router.status();
      ExpectCorpusIdentical(
          router->get(), query::PlannerOptions(),
          "N=" + std::to_string(shards) + " R=" + std::to_string(replicas));
      auto counters = (*router)->route_counters();
      EXPECT_GT(counters.routed + counters.scatter + counters.broadcast, 0);
      EXPECT_GT(counters.fallback, 0);  // the family aggregate
      EXPECT_EQ(counters.failed, 0);
      (*router)->Drain();
    }
  }
}

TEST_F(ShardTest, CorpusBitIdenticalAcrossExecutionModes) {
  auto router = dt_->MakeShardRouter(Topology(4, 2));
  ASSERT_TRUE(router.ok()) << router.status();
  query::PlannerOptions naive = query::PlannerOptions::Naive();
  naive.batch_size = 1;
  query::PlannerOptions row_at_a_time;
  row_at_a_time.batch_size = 1;
  query::PlannerOptions parallel;
  parallel.parallelism = 4;
  ExpectCorpusIdentical(router->get(), naive, "naive");
  ExpectCorpusIdentical(router->get(), row_at_a_time, "batch=1");
  ExpectCorpusIdentical(router->get(), parallel, "parallel=4");
  (*router)->Drain();
}

TEST_F(ShardTest, RoutingDecisionTable) {
  auto router = dt_->MakeShardRouter(Topology(4, 1));
  ASSERT_TRUE(router.ok()) << router.status();
  core::WorkloadParams params;
  const phylo::Tree& tree = dt_->tree();

  // Root subtree touches every shard; the corpus shapes carry ORDER BY, so
  // the merge is exact -> broadcast, not coordinator fallback.
  auto d = (*router)->Route(core::MakeQuerySql(
      core::QueryKind::kSubtreeProteins, tree.root(), tree, params));
  EXPECT_EQ(d.kind, RouteKind::kBroadcast) << d.ToString();
  EXPECT_EQ(static_cast<int>(d.shards.size()), 4);

  // A leaf's interval is one pre number -> exactly one owning shard.
  phylo::NodeId leaf = tree.Leaves().front();
  d = (*router)->Route(core::MakeQuerySql(core::QueryKind::kSubtreeProteins,
                                          leaf, tree, params));
  EXPECT_EQ(d.kind, RouteKind::kRouted) << d.ToString();
  EXPECT_EQ(d.shards.size(), 1u);

  // Global aggregation cannot be merged from partials -> coordinator.
  d = (*router)->Route(core::MakeQuerySql(core::QueryKind::kFamilyAggregate,
                                          tree.root(), tree, params));
  EXPECT_EQ(d.kind, RouteKind::kFallback) << d.ToString();

  // Multi-shard output without ORDER BY is not mergeable deterministically.
  d = (*router)->Route("SELECT p.accession FROM proteins p");
  EXPECT_EQ(d.kind, RouteKind::kFallback) << d.ToString();

  // Only the replicated dimension -> nothing is partitioned; coordinator.
  d = (*router)->Route("SELECT l.name FROM ligands l ORDER BY l.name");
  EXPECT_EQ(d.kind, RouteKind::kFallback) << d.ToString();

  // An unresolvable node falls back so the coordinator reproduces the
  // single-server plan-time error verbatim.
  d = (*router)->Route(
      "SELECT p.accession FROM proteins p "
      "WHERE SUBTREE(p.node_id, 'no-such-node') ORDER BY p.accession");
  EXPECT_EQ(d.kind, RouteKind::kFallback) << d.ToString();
  auto err = (*router)->Submit(Request(
      "SELECT p.accession FROM proteins p "
      "WHERE SUBTREE(p.node_id, 'no-such-node') ORDER BY p.accession"));
  auto direct_err = dt_->Query(
      "SELECT p.accession FROM proteins p "
      "WHERE SUBTREE(p.node_id, 'no-such-node') ORDER BY p.accession");
  ASSERT_FALSE(err.ok());
  ASSERT_FALSE(direct_err.ok());
  EXPECT_EQ(err.status().code(), direct_err.status().code());

  // EXPLAIN surfaces the routing decision as the leading plan line.
  auto explained = (*router)->Submit(Request(
      "EXPLAIN " + core::MakeQuerySql(core::QueryKind::kSubtreeProteins,
                                      tree.root(), tree, params)));
  ASSERT_TRUE(explained.ok()) << explained.status();
  EXPECT_EQ(explained->physical_plan.rfind("route: shards=4 broadcast", 0), 0u)
      << explained->physical_plan;
  (*router)->Drain();
}

TEST_F(ShardTest, ReplicaFailoverMidQuery) {
  auto made = dt_->MakeShardRouter(Topology(2, 2));
  ASSERT_TRUE(made.ok()) << made.status();
  ShardRouter* router = made->get();
  const std::string sql = core::MakeQuerySql(
      core::QueryKind::kSubtreeProteins, dt_->tree().root(), dt_->tree(),
      core::WorkloadParams());
  auto direct = dt_->Query(sql);
  ASSERT_TRUE(direct.ok()) << direct.status();

  // Stage: replica 0 of each shard (the deterministic least-loaded pick)
  // admits but never dispatches, so the scatter blocks mid-query.
  router->replica_server(0, 0)->Pause();
  router->replica_server(1, 0)->Pause();

  util::Result<query::QueryOutcome> routed =
      util::Status::Internal("pending");
  std::thread submitter(
      [&] { routed = router->Submit(Request(sql)); });
  auto queued_on = [&](int shard) {
    return router->replica_server(shard, 0)
               ->counters(server::QueryClass::kInteractive)
               .admitted > 0;
  };
  while (!queued_on(0) || !queued_on(1)) {
    std::this_thread::yield();
  }

  // Fail both primaries: their in-flight sub-requests are cancelled and the
  // router retries each on the healthy sibling.
  router->MarkReplicaDown(0, 0);
  router->MarkReplicaDown(1, 0);
  EXPECT_TRUE(router->replica_down(0, 0));
  router->replica_server(0, 0)->Resume();
  router->replica_server(1, 0)->Resume();
  submitter.join();

  ASSERT_TRUE(routed.ok()) << routed.status();
  ASSERT_EQ(direct->result.rows.size(), routed->result.rows.size());
  for (size_t i = 0; i < direct->result.rows.size(); ++i) {
    EXPECT_EQ(direct->result.rows[i], routed->result.rows[i]) << "row " << i;
  }
  EXPECT_GE(router->shard_counters(0).failovers, 1);
  EXPECT_GE(router->shard_counters(1).failovers, 1);

  // Recovery: marked back up, the replica serves again.
  router->MarkReplicaUp(0, 0);
  router->MarkReplicaUp(1, 0);
  auto again = router->Submit(Request(sql));
  ASSERT_TRUE(again.ok()) << again.status();
  router->Drain();
}

TEST_F(ShardTest, PerShardDeadlineCancelsBeforeDispatch) {
  RouterOptions options = Topology(2, 1);
  options.hop.latency_micros = 50'000;
  options.hop.jitter_fraction = 0.0;
  auto router = dt_->MakeShardRouter(options);
  ASSERT_TRUE(router.ok()) << router.status();
  server::QueryRequest request = Request(core::MakeQuerySql(
      core::QueryKind::kSubtreeProteins, dt_->tree().root(), dt_->tree(),
      core::WorkloadParams()));
  // The hop-adjusted sub-deadline is already in the past at dispatch, so
  // every shard cancels deterministically before running anything.
  request.deadline_micros = clock_->NowMicros() + 1'000;
  auto out = (*router)->Submit(request);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsCancelled()) << out.status();
  EXPECT_GE((*router)->shard_counters(0).deadline_missed, 1);
  auto counters = (*router)->route_counters();
  EXPECT_EQ(counters.failed, 1);
  (*router)->Drain();
}

TEST_F(ShardTest, ScatterGatherTimelineIsDeterministic) {
  auto run = [](std::vector<obs::TraceRecord>* records, int64_t* end_micros) {
    util::SimulatedClock clock;
    auto built = core::DrugTree::Build(SmallBuild(), &clock);
    ASSERT_TRUE(built.ok()) << built.status();
    auto router = (*built)->MakeShardRouter(Topology(4, 2));
    ASSERT_TRUE(router.ok()) << router.status();
    core::WorkloadParams params;
    const phylo::Tree& tree = (*built)->tree();
    std::vector<phylo::NodeId> internals;
    tree.PreOrder([&](phylo::NodeId id) {
      if (!tree.node(id).IsLeaf()) internals.push_back(id);
    });
    for (size_t i = 0; i < internals.size() && i < 8; ++i) {
      auto out = (*router)->Submit(server::QueryRequest{
          1,
          core::MakeQuerySql(core::QueryKind::kSubtreeProteins, internals[i],
                             tree, params),
          server::QueryClass::kInteractive, 0, 0, query::PlannerOptions()});
      ASSERT_TRUE(out.ok()) << out.status();
    }
    (*router)->Drain();
    *records = (*router)->trace_store()->Snapshot();
    *end_micros = clock.NowMicros();
  };

  std::vector<obs::TraceRecord> a, b;
  int64_t end_a = 0, end_b = 0;
  run(&a, &end_a);
  run(&b, &end_b);
  EXPECT_EQ(end_a, end_b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trace_id, b[i].trace_id);
    EXPECT_EQ(a[i].begin_micros, b[i].begin_micros);
    EXPECT_EQ(a[i].end_micros, b[i].end_micros);
    EXPECT_EQ(a[i].phase_micros, b[i].phase_micros);
    ASSERT_EQ(a[i].fetches.size(), b[i].fetches.size());
    for (size_t f = 0; f < a[i].fetches.size(); ++f) {
      EXPECT_EQ(a[i].fetches[f].start_micros, b[i].fetches[f].start_micros);
      EXPECT_EQ(a[i].fetches[f].end_micros, b[i].fetches[f].end_micros);
    }
    EXPECT_GT(a[i].PhaseMicros(obs::TracePhase::kGather), 0)
        << "record " << i;
  }
}

TEST_F(ShardTest, StatuszAndObservabilitySurfaces) {
  auto router = dt_->MakeShardRouter(Topology(2, 2));
  ASSERT_TRUE(router.ok()) << router.status();
  auto out = (*router)->Submit(Request(core::MakeQuerySql(
      core::QueryKind::kSubtreeProteins, dt_->tree().root(), dt_->tree(),
      core::WorkloadParams())));
  ASSERT_TRUE(out.ok()) << out.status();
  (*router)->Drain();

  std::string statusz = (*router)->Statusz();
  for (const char* key :
       {"\"router\"", "\"topology\"", "\"decisions\"", "\"coordinator\"",
        "\"id\":\"s0r0\"", "\"id\":\"s1r1\"",
        "\"shard\":{\"id\":\"s0r0\",\"role\":\"replica\"}",
        "\"pre_lo\":0"}) {
    EXPECT_NE(statusz.find(key), std::string::npos) << key;
  }
  // Single-node servers keep the shard-free Statusz shape.
  auto standalone = dt_->MakeServer();
  EXPECT_NE(standalone->Statusz().find("\"shard\":{\"id\":\"\",\"role\":"
                                       "\"standalone\"}"),
            std::string::npos);

  std::string chrome = (*router)->ExportChromeTrace();
  EXPECT_NE(chrome.find("s0r0/"), std::string::npos);
  EXPECT_NE(chrome.find("router"), std::string::npos);

  std::string tail = (*router)->TailAttributionReport();
  EXPECT_NE(tail.find("slowest shard"), std::string::npos) << tail;
}

TEST(HopCostEwmaTest, FirstObservationSeedsDirectly) {
  std::atomic<int64_t> ewma{0};
  // A cold shard adopts the first round-trip outright instead of averaging
  // up from zero over several requests.
  EXPECT_EQ(UpdateHopCostEwma(ewma, 400), 400);
  EXPECT_EQ(ewma.load(), 400);
  // Subsequent observations fold in at alpha = 1/4.
  EXPECT_EQ(UpdateHopCostEwma(ewma, 800), 500);  // (3*400 + 800) / 4
  EXPECT_EQ(ewma.load(), 500);
}

TEST(HopCostEwmaTest, ConcurrentUpdatesNeverLoseObservations) {
  std::atomic<int64_t> ewma{0};
  constexpr int kThreads = 8;
  constexpr int kUpdates = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ewma] {
      for (int i = 0; i < kUpdates; ++i) {
        UpdateHopCostEwma(ewma, 500);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Every fold of a constant series converges to (and stays at) the
  // constant; with the CAS loop no interleaving can leave anything else.
  EXPECT_EQ(ewma.load(), 500);
}

}  // namespace
}  // namespace shard
}  // namespace drugtree
