#include "query/expr.h"

#include <gtest/gtest.h>

#include "phylo/newick.h"

namespace drugtree {
namespace query {
namespace {

using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

Schema TwoColSchema() {
  auto s = Schema::Create(
      {{"t.a", ValueType::kInt64, true}, {"t.b", ValueType::kString, true}});
  EXPECT_TRUE(s.ok());
  return *s;
}

Value Eval(ExprPtr e, const Row& row, const Schema& schema,
           EvalContext ctx = {}) {
  EXPECT_TRUE(BindExpr(e.get(), schema).ok());
  auto v = EvalExpr(*e, row, ctx);
  EXPECT_TRUE(v.ok()) << v.status();
  return v.ok() ? *v : Value::Null();
}

TEST(ResolveColumnTest, ExactAndSuffixMatching) {
  Schema s = TwoColSchema();
  EXPECT_EQ(*ResolveColumn(s, "t.a"), 0u);
  EXPECT_EQ(*ResolveColumn(s, "a"), 0u);
  EXPECT_EQ(*ResolveColumn(s, "b"), 1u);
  EXPECT_TRUE(ResolveColumn(s, "c").status().IsNotFound());
}

TEST(ResolveColumnTest, AmbiguousBareName) {
  auto s = Schema::Create(
      {{"x.a", ValueType::kInt64, true}, {"y.a", ValueType::kInt64, true}});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(ResolveColumn(*s, "a").status().IsInvalidArgument());
  EXPECT_EQ(*ResolveColumn(*s, "x.a"), 0u);
}

TEST(EvalTest, ColumnAndLiteral) {
  Schema s = TwoColSchema();
  Row row = {Value::Int64(5), Value::String("hi")};
  EXPECT_EQ(Eval(Expr::Column("a"), row, s), Value::Int64(5));
  EXPECT_EQ(Eval(Expr::Literal(Value::Double(2.5)), row, s),
            Value::Double(2.5));
}

TEST(EvalTest, Comparisons) {
  Schema s = TwoColSchema();
  Row row = {Value::Int64(5), Value::String("hi")};
  auto cmp = [&](BinaryOp op, Value lit) {
    return Eval(Expr::Binary(op, Expr::Column("a"), Expr::Literal(lit)), row, s);
  };
  EXPECT_EQ(cmp(BinaryOp::kEq, Value::Int64(5)), Value::Bool(true));
  EXPECT_EQ(cmp(BinaryOp::kNe, Value::Int64(5)), Value::Bool(false));
  EXPECT_EQ(cmp(BinaryOp::kLt, Value::Int64(6)), Value::Bool(true));
  EXPECT_EQ(cmp(BinaryOp::kGe, Value::Double(5.0)), Value::Bool(true));
  EXPECT_EQ(cmp(BinaryOp::kGt, Value::Double(5.5)), Value::Bool(false));
}

TEST(EvalTest, NullComparisonsYieldNull) {
  Schema s = TwoColSchema();
  Row row = {Value::Null(), Value::String("hi")};
  auto v = Eval(Expr::Binary(BinaryOp::kEq, Expr::Column("a"),
                             Expr::Literal(Value::Int64(5))),
                row, s);
  EXPECT_TRUE(v.is_null());
}

TEST(EvalTest, KleeneLogic) {
  Schema s = TwoColSchema();
  Row row = {Value::Null(), Value::String("x")};
  auto null_cmp = Expr::Binary(BinaryOp::kEq, Expr::Column("a"),
                               Expr::Literal(Value::Int64(1)));
  // NULL AND FALSE = FALSE.
  EXPECT_EQ(Eval(Expr::Binary(BinaryOp::kAnd, null_cmp->Clone(),
                              Expr::Literal(Value::Bool(false))),
                 row, s),
            Value::Bool(false));
  // NULL AND TRUE = NULL.
  EXPECT_TRUE(Eval(Expr::Binary(BinaryOp::kAnd, null_cmp->Clone(),
                                Expr::Literal(Value::Bool(true))),
                   row, s)
                  .is_null());
  // NULL OR TRUE = TRUE.
  EXPECT_EQ(Eval(Expr::Binary(BinaryOp::kOr, null_cmp->Clone(),
                              Expr::Literal(Value::Bool(true))),
                 row, s),
            Value::Bool(true));
  // NOT NULL = NULL.
  EXPECT_TRUE(Eval(Expr::Unary(UnaryOp::kNot, null_cmp->Clone()), row, s)
                  .is_null());
}

TEST(EvalTest, Arithmetic) {
  Schema s = TwoColSchema();
  Row row = {Value::Int64(7), Value::String("x")};
  auto a = Expr::Column("a");
  EXPECT_EQ(Eval(Expr::Binary(BinaryOp::kAdd, a->Clone(),
                              Expr::Literal(Value::Int64(3))),
                 row, s),
            Value::Int64(10));
  EXPECT_EQ(Eval(Expr::Binary(BinaryOp::kMul, a->Clone(),
                              Expr::Literal(Value::Int64(2))),
                 row, s),
            Value::Int64(14));
  EXPECT_EQ(Eval(Expr::Binary(BinaryOp::kDiv, a->Clone(),
                              Expr::Literal(Value::Int64(2))),
                 row, s),
            Value::Double(3.5));
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kNeg, a->Clone()), row, s),
            Value::Int64(-7));
}

TEST(EvalTest, DivisionByZeroIsError) {
  Schema s = TwoColSchema();
  Row row = {Value::Int64(7), Value::String("x")};
  auto e = Expr::Binary(BinaryOp::kDiv, Expr::Column("a"),
                        Expr::Literal(Value::Int64(0)));
  ASSERT_TRUE(BindExpr(e.get(), s).ok());
  EXPECT_TRUE(EvalExpr(*e, row, {}).status().IsInvalidArgument());
}

TEST(EvalTest, IsNullFunction) {
  Schema s = TwoColSchema();
  Row with_null = {Value::Null(), Value::String("x")};
  Row no_null = {Value::Int64(1), Value::String("x")};
  auto e = Expr::Function("IS_NULL", {Expr::Column("a")});
  EXPECT_EQ(Eval(e->Clone(), with_null, s), Value::Bool(true));
  EXPECT_EQ(Eval(e->Clone(), no_null, s), Value::Bool(false));
}

TEST(EvalTest, AbsFunction) {
  Schema s = TwoColSchema();
  Row row = {Value::Int64(-4), Value::String("x")};
  EXPECT_EQ(Eval(Expr::Function("ABS", {Expr::Column("a")}), row, s),
            Value::Int64(4));
}

TEST(EvalTest, UnknownFunctionUnimplemented) {
  Schema s = TwoColSchema();
  Row row = {Value::Int64(1), Value::String("x")};
  auto e = Expr::Function("FROBNICATE", {Expr::Column("a")});
  ASSERT_TRUE(BindExpr(e.get(), s).ok());
  EXPECT_TRUE(EvalExpr(*e, row, {}).status().IsUnimplemented());
}

TEST(EvalTest, PredicateNullCountsAsFalse) {
  Schema s = TwoColSchema();
  Row row = {Value::Null(), Value::String("x")};
  auto e = Expr::Binary(BinaryOp::kEq, Expr::Column("a"),
                        Expr::Literal(Value::Int64(1)));
  ASSERT_TRUE(BindExpr(e.get(), s).ok());
  auto keep = EvalPredicate(*e, row, {});
  ASSERT_TRUE(keep.ok());
  EXPECT_FALSE(*keep);
}

class TreeFunctionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = phylo::ParseNewick("((a:1,b:2)x:1,c:3)r;");
    ASSERT_TRUE(t.ok());
    tree_ = std::move(*t);
    auto idx = phylo::TreeIndex::Build(tree_);
    ASSERT_TRUE(idx.ok());
    index_ = std::make_unique<phylo::TreeIndex>(std::move(*idx));
    ctx_ = EvalContext{&tree_, index_.get()};
    schema_ = *Schema::Create({{"t.node", ValueType::kInt64, true}});
  }

  phylo::Tree tree_;
  std::unique_ptr<phylo::TreeIndex> index_;
  EvalContext ctx_;
  Schema schema_;
};

TEST_F(TreeFunctionTest, SubtreeByName) {
  phylo::NodeId a = tree_.FindByName("a");
  Row row = {Value::Int64(a)};
  auto e = Expr::Function(
      "SUBTREE", {Expr::Column("node"), Expr::Literal(Value::String("x"))});
  ASSERT_TRUE(BindExpr(e.get(), schema_).ok());
  auto v = EvalExpr(*e, row, ctx_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Bool(true));
  Row c_row = {Value::Int64(tree_.FindByName("c"))};
  EXPECT_EQ(*EvalExpr(*e, c_row, ctx_), Value::Bool(false));
}

TEST_F(TreeFunctionTest, AncestorOf) {
  phylo::NodeId x = tree_.FindByName("x");
  Row row = {Value::Int64(x)};
  auto e = Expr::Function("ANCESTOR_OF", {Expr::Column("node"),
                                          Expr::Literal(Value::String("a"))});
  ASSERT_TRUE(BindExpr(e.get(), schema_).ok());
  EXPECT_EQ(*EvalExpr(*e, row, ctx_), Value::Bool(true));
  Row c_row = {Value::Int64(tree_.FindByName("c"))};
  EXPECT_EQ(*EvalExpr(*e, c_row, ctx_), Value::Bool(false));
}

TEST_F(TreeFunctionTest, TreeDepthAndDist) {
  Row row = {Value::Int64(tree_.FindByName("a"))};
  auto depth = Expr::Function("TREE_DEPTH", {Expr::Column("node")});
  ASSERT_TRUE(BindExpr(depth.get(), schema_).ok());
  EXPECT_EQ(*EvalExpr(*depth, row, ctx_), Value::Int64(2));
  auto dist = Expr::Function(
      "TREE_DIST", {Expr::Column("node"), Expr::Literal(Value::String("b"))});
  ASSERT_TRUE(BindExpr(dist.get(), schema_).ok());
  EXPECT_EQ(*EvalExpr(*dist, row, ctx_), Value::Double(3.0));
}

TEST_F(TreeFunctionTest, UnknownNodeNameIsNotFound) {
  Row row = {Value::Int64(0)};
  auto e = Expr::Function(
      "SUBTREE", {Expr::Column("node"), Expr::Literal(Value::String("zzz"))});
  ASSERT_TRUE(BindExpr(e.get(), schema_).ok());
  EXPECT_TRUE(EvalExpr(*e, row, ctx_).status().IsNotFound());
}

TEST_F(TreeFunctionTest, NullNodePropagates) {
  Row row = {Value::Null()};
  auto e = Expr::Function(
      "SUBTREE", {Expr::Column("node"), Expr::Literal(Value::String("x"))});
  ASSERT_TRUE(BindExpr(e.get(), schema_).ok());
  auto v = EvalExpr(*e, row, ctx_);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST_F(TreeFunctionTest, MissingContextIsError) {
  Row row = {Value::Int64(0)};
  auto e = Expr::Function(
      "SUBTREE", {Expr::Column("node"), Expr::Literal(Value::String("x"))});
  ASSERT_TRUE(BindExpr(e.get(), schema_).ok());
  EXPECT_TRUE(EvalExpr(*e, row, EvalContext{}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace query
}  // namespace drugtree
