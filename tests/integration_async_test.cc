// Tests for the overlapped (multi-channel) federated fetch path: virtual-time
// request scheduling on SimulatedNetwork, the bounded FetchWindow, the
// mediator's windowed IntegrateAll, and asynchronous prefetch widening.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "integration/activity_source.h"
#include "integration/ligand_source.h"
#include "integration/mediator.h"
#include "integration/network.h"
#include "integration/prefetcher.h"
#include "integration/protein_source.h"
#include "integration/semantic_cache.h"
#include "storage/table.h"
#include "util/clock.h"
#include "util/rng.h"

namespace drugtree {
namespace integration {
namespace {

TEST(NetworkConcurrencyTest, OverlappedLatenciesShareChannels) {
  util::SimulatedClock clock;
  NetworkParams params;
  params.latency_micros = 1000;
  params.bandwidth_bytes_per_sec = 0;  // latency only
  params.jitter_fraction = 0;
  params.max_concurrency = 4;
  SimulatedNetwork net(&clock, params);
  // Four zero-payload requests all land at t=1000: latencies overlap.
  for (int i = 0; i < 4; ++i) {
    auto c = net.SubmitRequest(0);
    EXPECT_EQ(c.ready_micros, 1000) << i;
  }
  EXPECT_EQ(clock.NowMicros(), 0);  // submission never advances the clock
  // A fifth request queues behind the earliest channel.
  auto fifth = net.SubmitRequest(0);
  EXPECT_EQ(fifth.ready_micros, 2000);
  net.Quiesce();
  EXPECT_EQ(clock.NowMicros(), 2000);
}

TEST(NetworkConcurrencyTest, TransfersShareBandwidth) {
  util::SimulatedClock clock;
  NetworkParams params;
  params.latency_micros = 0;
  params.bandwidth_bytes_per_sec = 1'000'000;  // 1 B/us
  params.jitter_fraction = 0;
  params.max_concurrency = 2;
  SimulatedNetwork net(&clock, params);
  // Alone on the link: full bandwidth.
  auto a = net.SubmitRequest(1000);
  EXPECT_EQ(a.ready_micros, 1000);
  // Second transfer starts while the first is still running: half bandwidth.
  auto b = net.SubmitRequest(1000);
  EXPECT_EQ(b.ready_micros, 2000);
  net.Quiesce();
  EXPECT_EQ(clock.NowMicros(), 2000);
}

TEST(NetworkConcurrencyTest, SingleChannelSerializesSubmissions) {
  util::SimulatedClock clock;
  NetworkParams params;
  params.latency_micros = 1000;
  params.bandwidth_bytes_per_sec = 0;
  params.jitter_fraction = 0;
  params.max_concurrency = 1;
  SimulatedNetwork net(&clock, params);
  EXPECT_EQ(net.SubmitRequest(0).ready_micros, 1000);
  EXPECT_EQ(net.SubmitRequest(0).ready_micros, 2000);
  EXPECT_EQ(net.SubmitRequest(0).ready_micros, 3000);
}

TEST(NetworkConcurrencyTest, BlockingRequestUnchangedAtConcurrencyOne) {
  // The blocking Request path must match the historical serial cost model
  // exactly (this mirrors NetworkTest.ChargesLatencyAndTransfer).
  util::SimulatedClock clock;
  NetworkParams params;
  params.latency_micros = 1000;
  params.bandwidth_bytes_per_sec = 1'000'000;
  params.jitter_fraction = 0;
  SimulatedNetwork net(&clock, params);
  EXPECT_EQ(net.Request(5000), 6000);
  EXPECT_EQ(clock.NowMicros(), 6000);
  EXPECT_EQ(net.Request(5000), 6000);
  EXPECT_EQ(clock.NowMicros(), 12000);
}

TEST(NetworkConcurrencyTest, FailedAttemptsChargeTimeoutOnChannel) {
  util::SimulatedClock clock;
  NetworkParams params;
  params.latency_micros = 1000;
  params.bandwidth_bytes_per_sec = 0;
  params.jitter_fraction = 0;
  params.failure_probability = 0.5;
  params.timeout_micros = 10'000;
  params.max_concurrency = 2;
  SimulatedNetwork net(&clock, params, /*seed=*/123);
  for (int i = 0; i < 50; ++i) net.SubmitRequest(0);
  EXPECT_GT(net.num_failures(), 0u);
  // Every completion is a success: charged = retries * timeout + cost.
  EXPECT_EQ(net.num_requests(), 50u + net.num_failures());
  net.Quiesce();
  EXPECT_GT(clock.NowMicros(), 0);
}

TEST(FetchWindowTest, RespectsBoundAndDrains) {
  util::SimulatedClock clock;
  NetworkParams params;
  params.latency_micros = 1000;
  params.bandwidth_bytes_per_sec = 0;
  params.jitter_fraction = 0;
  params.max_concurrency = 8;
  SimulatedNetwork net(&clock, params);
  FetchWindow window(&net, 3);
  for (int i = 0; i < 10; ++i) {
    window.Acquire();
    window.Track(net.SubmitRequest(0).ready_micros);
  }
  EXPECT_EQ(window.peak_in_flight(), 3);
  window.Drain();
  // 10 requests, 3 at a time, 1000us each: ceil(10/3) waves.
  EXPECT_EQ(clock.NowMicros(), 4000);
}

/// Builds an identical source stack (same seeds, same data) over its own
/// clock and network so serial and overlapped runs can be compared.
struct Stack {
  std::unique_ptr<util::SimulatedClock> clock;
  std::unique_ptr<SimulatedNetwork> network;
  std::unique_ptr<ProteinSource> proteins;
  std::unique_ptr<LigandSource> ligands;
  std::unique_ptr<ActivitySource> activities;
  std::unique_ptr<SemanticCache> cache;
  std::unique_ptr<Mediator> mediator;
};

Stack MakeStack(const NetworkParams& params) {
  Stack s;
  s.clock = std::make_unique<util::SimulatedClock>();
  s.network = std::make_unique<SimulatedNetwork>(s.clock.get(), params,
                                                 /*seed=*/99);
  util::Rng rng(42);
  ProteinSourceParams pp;
  pp.num_families = 2;
  pp.taxa_per_family = 6;
  pp.sequence_length = 60;
  auto ps = ProteinSource::Create(pp, s.network.get(), &rng);
  EXPECT_TRUE(ps.ok());
  s.proteins = std::make_unique<ProteinSource>(std::move(*ps));
  chem::LigandGenParams lp;
  auto ls = LigandSource::Create(40, lp, s.network.get(), &rng);
  EXPECT_TRUE(ls.ok());
  s.ligands = std::make_unique<LigandSource>(std::move(*ls));
  ActivityGenParams ap;
  std::vector<std::string> accs;
  for (const auto& r : s.proteins->FetchAll()) accs.push_back(r.accession);
  std::vector<std::string> ids;
  for (const auto& e : s.ligands->FetchAll()) ids.push_back(e.record.ligand_id);
  auto as = ActivitySource::Create(accs, ids, ap, s.network.get(), &rng);
  EXPECT_TRUE(as.ok());
  s.activities = std::make_unique<ActivitySource>(std::move(*as));
  s.cache = std::make_unique<SemanticCache>(1 << 20);
  s.mediator = std::make_unique<Mediator>(s.proteins.get(), s.ligands.get(),
                                          s.activities.get(), s.cache.get());
  return s;
}

std::vector<std::string> EncodedRows(const storage::Table& t) {
  std::vector<std::string> out;
  for (auto rid : t.LiveRows()) {
    std::string enc;
    storage::EncodeRow(t.row(rid), &enc);
    out.push_back(std::move(enc));
  }
  return out;
}

NetworkParams ComparableParams(int max_concurrency) {
  NetworkParams p;
  p.latency_micros = 50'000;
  p.bandwidth_bytes_per_sec = 1'000'000;
  p.jitter_fraction = 0;
  p.max_concurrency = max_concurrency;
  return p;
}

TEST(MediatorAsyncTest, OverlappedResultsIdenticalToSerial) {
  Stack serial = MakeStack(ComparableParams(1));
  Stack overlapped = MakeStack(ComparableParams(4));

  MediatorOptions serial_opts;
  serial_opts.batch_requests = false;
  serial_opts.use_cache = false;
  MediatorOptions overlapped_opts = serial_opts;
  overlapped_opts.max_concurrency = 4;

  int64_t serial_start = serial.clock->NowMicros();
  auto serial_ds = serial.mediator->IntegrateAll(serial_opts);
  ASSERT_TRUE(serial_ds.ok());
  int64_t serial_elapsed = serial.clock->NowMicros() - serial_start;

  int64_t over_start = overlapped.clock->NowMicros();
  auto over_ds = overlapped.mediator->IntegrateAll(overlapped_opts);
  ASSERT_TRUE(over_ds.ok());
  int64_t over_elapsed = overlapped.clock->NowMicros() - over_start;

  // Same integrated contents, row for row.
  EXPECT_EQ(EncodedRows(*serial_ds->proteins), EncodedRows(*over_ds->proteins));
  EXPECT_EQ(EncodedRows(*serial_ds->ligands), EncodedRows(*over_ds->ligands));
  EXPECT_EQ(EncodedRows(*serial_ds->activities),
            EncodedRows(*over_ds->activities));
  // Same number of source requests (no duplicated or dropped fetches).
  EXPECT_EQ(serial.network->num_requests(), overlapped.network->num_requests());
  // The window actually filled and overlap paid off substantially.
  EXPECT_EQ(overlapped.mediator->async_stats().peak_in_flight, 4);
  EXPECT_GT(overlapped.mediator->async_stats().async_requests, 0u);
  EXPECT_GE(static_cast<double>(serial_elapsed),
            2.0 * static_cast<double>(over_elapsed));
}

TEST(MediatorAsyncTest, WindowNeverExceedsConfiguredConcurrency) {
  Stack s = MakeStack(ComparableParams(8));
  MediatorOptions opts;
  opts.batch_requests = false;
  opts.use_cache = false;
  opts.max_concurrency = 3;
  ASSERT_TRUE(s.mediator->IntegrateAll(opts).ok());
  EXPECT_LE(s.mediator->async_stats().peak_in_flight, 3);
  EXPECT_EQ(s.mediator->async_stats().peak_in_flight, 3);
}

TEST(MediatorAsyncTest, OverlappedPathHonorsCache) {
  Stack s = MakeStack(ComparableParams(4));
  MediatorOptions opts;
  opts.batch_requests = false;
  opts.max_concurrency = 4;
  ASSERT_TRUE(s.mediator->IntegrateAll(opts).ok());
  uint64_t after_first = s.network->num_requests();
  // Proteins and activities were cached by the first pass; a second
  // integration only refetches the uncached pieces (catalogs + ligands).
  ASSERT_TRUE(s.mediator->IntegrateAll(opts).ok());
  uint64_t second_pass = s.network->num_requests() - after_first;
  // 2 catalog listings + one request per ligand; no protein/activity fetches.
  EXPECT_EQ(second_pass, 2u + 40u);
}

TEST(MediatorAsyncTest, FailureInjectionConvergesUnderConcurrency) {
  NetworkParams p = ComparableParams(4);
  p.failure_probability = 0.2;
  p.timeout_micros = 200'000;
  Stack s = MakeStack(p);
  MediatorOptions opts;
  opts.batch_requests = false;
  opts.use_cache = false;
  opts.max_concurrency = 4;
  auto ds = s.mediator->IntegrateAll(opts);
  ASSERT_TRUE(ds.ok());
  // Retries happened, yet every record arrived exactly once.
  EXPECT_GT(s.network->num_failures(), 0u);
  EXPECT_EQ(ds->proteins->NumRows(), 12);
  EXPECT_EQ(ds->ligands->NumRows(), 40);
  Stack clean = MakeStack(ComparableParams(1));
  MediatorOptions serial_opts;
  serial_opts.batch_requests = false;
  serial_opts.use_cache = false;
  auto clean_ds = clean.mediator->IntegrateAll(serial_opts);
  ASSERT_TRUE(clean_ds.ok());
  EXPECT_EQ(EncodedRows(*ds->proteins), EncodedRows(*clean_ds->proteins));
  EXPECT_EQ(EncodedRows(*ds->activities), EncodedRows(*clean_ds->activities));
}

TEST(PrefetcherAsyncTest, AsyncWideningInstallsSameCacheEntries) {
  Stack sync_stack = MakeStack(ComparableParams(4));
  Stack async_stack = MakeStack(ComparableParams(4));

  PrefetcherOptions sync_opts;
  sync_opts.prefetch_activities = true;
  PrefetcherOptions async_opts = sync_opts;
  async_opts.async_prefetch = true;

  TreeAwarePrefetcher sync_pf(sync_stack.mediator.get(),
                              sync_stack.cache.get(), sync_opts);
  TreeAwarePrefetcher async_pf(async_stack.mediator.get(),
                               async_stack.cache.get(), async_opts);

  std::string acc = sync_stack.proteins->ListAccessions()[0];
  async_stack.proteins->ListAccessions();  // keep request streams aligned

  int64_t sync_start = sync_stack.clock->NowMicros();
  ASSERT_TRUE(sync_pf.GetProtein(acc).ok());
  int64_t sync_elapsed = sync_stack.clock->NowMicros() - sync_start;

  int64_t async_start = async_stack.clock->NowMicros();
  ASSERT_TRUE(async_pf.GetProtein(acc).ok());
  int64_t async_elapsed = async_stack.clock->NowMicros() - async_start;

  // The demand fetch returns before the widening completes.
  EXPECT_LT(async_elapsed, sync_elapsed);
  // Same speculative installs either way.
  EXPECT_EQ(async_pf.stats().prefetched_records,
            sync_pf.stats().prefetched_records);
  for (const auto& rec : sync_stack.proteins->FetchAll()) {
    EXPECT_EQ(
        async_stack.cache->Contains(SemanticCache::ProteinKey(rec.accession)),
        sync_stack.cache->Contains(SemanticCache::ProteinKey(rec.accession)))
        << rec.accession;
  }
  // Quiesce pays the deferred time; afterwards nothing is outstanding.
  async_pf.Quiesce();
  int64_t settled = async_stack.clock->NowMicros();
  async_pf.Quiesce();
  EXPECT_EQ(async_stack.clock->NowMicros(), settled);
}

}  // namespace
}  // namespace integration
}  // namespace drugtree
