// Vectorized execution tests: ColumnVector/RowBatch invariants, batch
// expression evaluation, and the golden-equivalence property — the batch
// engine must produce bit-identical results to the row engine for the whole
// query corpus at every (batch_size, parallelism) combination, including
// under cancellation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "obs/resource_tracker.h"
#include "phylo/newick.h"
#include "query/executor.h"
#include "query/physical.h"
#include "query/planner.h"
#include "storage/row_batch.h"

namespace drugtree {
namespace query {
namespace {

using storage::ColumnVector;
using storage::IndexKind;
using storage::Row;
using storage::RowBatch;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

// ------------------------------------------------------------ ColumnVector

TEST(ColumnVectorTest, TypeFixingAndNullBackfill) {
  ColumnVector col;
  EXPECT_EQ(col.type(), ValueType::kNull);
  col.AppendNull();
  col.AppendNull();
  col.AppendInt64(7);  // first non-null append fixes the type
  EXPECT_EQ(col.type(), ValueType::kInt64);
  EXPECT_FALSE(col.mixed());
  ASSERT_EQ(col.size(), 3u);
  EXPECT_TRUE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_EQ(col.Int64At(2), 7);
  EXPECT_FALSE(col.NoNulls());
  EXPECT_TRUE(col.GetValue(0).is_null());
  EXPECT_EQ(col.GetValue(2), Value::Int64(7));
}

TEST(ColumnVectorTest, MixedDemotionPreservesValues) {
  ColumnVector col;
  col.AppendInt64(1);
  col.AppendNull();
  col.AppendString("x");  // type mismatch -> mixed representation
  EXPECT_TRUE(col.mixed());
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.GetValue(0), Value::Int64(1));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_TRUE(col.GetValue(1).is_null());
  EXPECT_EQ(col.GetValue(2), Value::String("x"));
}

TEST(ColumnVectorTest, ValueRoundTripIsExact) {
  // The Int64-vs-Double distinction must survive a batch round trip.
  ColumnVector col;
  col.Append(Value::Int64(1));
  col.Append(Value::Double(1.0));
  EXPECT_TRUE(col.mixed());
  EXPECT_EQ(col.GetValue(0).type(), ValueType::kInt64);
  EXPECT_EQ(col.GetValue(1).type(), ValueType::kDouble);
}

TEST(RowBatchTest, SelectionControlsLogicalRows) {
  RowBatch batch;
  batch.Reset(2);
  for (int i = 0; i < 5; ++i) {
    batch.AppendRow({Value::Int64(i), Value::String("r" + std::to_string(i))});
  }
  EXPECT_EQ(batch.size(), 5u);
  batch.SetSelection({1, 3, 4});
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.physical_size(), 5u);
  EXPECT_EQ(batch.PhysicalIndex(0), 1u);
  Row r = batch.RowAt(1);
  EXPECT_EQ(r[0], Value::Int64(3));
  std::vector<Row> rows;
  batch.EmitRowsTo(&rows);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2][1], Value::String("r4"));
}

// ---------------------------------------------------- batch expression eval

class BatchExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = Schema::Create({{"n.k", ValueType::kInt64, true},
                                  {"n.v", ValueType::kDouble, false},
                                  {"n.s", ValueType::kString, false}});
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(*schema);
    batch_.Reset(3);
    for (int i = 0; i < 20; ++i) {
      rows_.push_back({i % 5 == 3 ? Value::Null() : Value::Int64(i % 7),
                       Value::Double(i * 0.5 - 3.0),
                       Value::String("s" + std::to_string(i % 4))});
      batch_.AppendRow(rows_.back());
    }
  }

  ExprPtr Bind(ExprPtr e) {
    EXPECT_TRUE(BindExpr(e.get(), schema_).ok());
    return e;
  }

  // Asserts EvalExprBatch agrees cell-for-cell with per-row EvalExpr.
  void ExpectBatchMatchesRows(const ExprPtr& e) {
    ColumnVector out;
    ASSERT_TRUE(EvalExprBatch(*e, batch_, ctx_, &out).ok());
    ASSERT_EQ(out.size(), batch_.size());
    for (size_t i = 0; i < batch_.size(); ++i) {
      auto v = EvalExpr(*e, batch_.RowAt(i), ctx_);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(out.GetValue(i), *v) << e->ToString() << " row " << i;
      EXPECT_EQ(out.GetValue(i).type(), v->type()) << e->ToString();
    }
  }

  Schema schema_;
  std::vector<Row> rows_;
  RowBatch batch_;
  EvalContext ctx_;
};

TEST_F(BatchExprTest, TypedFastPathsMatchRowEval) {
  using B = BinaryOp;
  // Int/Int, Int/Double, Double/const comparisons; arithmetic; strings.
  ExpectBatchMatchesRows(Bind(Expr::Binary(
      B::kLt, Expr::Column("n.k"), Expr::Literal(Value::Int64(4)))));
  ExpectBatchMatchesRows(Bind(Expr::Binary(
      B::kGe, Expr::Column("n.v"), Expr::Column("n.k"))));
  ExpectBatchMatchesRows(Bind(Expr::Binary(
      B::kAdd, Expr::Column("n.k"), Expr::Literal(Value::Int64(10)))));
  ExpectBatchMatchesRows(Bind(Expr::Binary(
      B::kMul, Expr::Column("n.v"), Expr::Column("n.k"))));
  ExpectBatchMatchesRows(Bind(Expr::Binary(
      B::kDiv, Expr::Column("n.k"), Expr::Literal(Value::Double(4.0)))));
  ExpectBatchMatchesRows(Bind(Expr::Binary(
      B::kEq, Expr::Column("n.s"), Expr::Literal(Value::String("s2")))));
  ExpectBatchMatchesRows(Bind(Expr::Binary(
      B::kNe, Expr::Column("n.s"), Expr::Column("n.s"))));
}

TEST_F(BatchExprTest, KleeneLogicMatchesRowEval) {
  using B = BinaryOp;
  // n.k < 4 has NULL rows, so AND/OR exercise three-valued logic.
  ExprPtr lt = Expr::Binary(B::kLt, Expr::Column("n.k"),
                            Expr::Literal(Value::Int64(4)));
  ExprPtr gt = Expr::Binary(B::kGt, Expr::Column("n.v"),
                            Expr::Literal(Value::Double(0.0)));
  ExpectBatchMatchesRows(Bind(Expr::Binary(B::kAnd, lt->Clone(), gt->Clone())));
  ExpectBatchMatchesRows(Bind(Expr::Binary(B::kOr, lt->Clone(), gt->Clone())));
  ExpectBatchMatchesRows(Bind(Expr::Unary(UnaryOp::kNot, lt->Clone())));
}

TEST_F(BatchExprTest, PredicateSelectionMatchesRowEval) {
  ExprPtr pred = Bind(Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kGe, Expr::Column("n.k"),
                   Expr::Literal(Value::Int64(2))),
      Expr::Binary(BinaryOp::kLt, Expr::Column("n.v"),
                   Expr::Literal(Value::Double(5.0)))));
  std::vector<uint32_t> sel;
  ASSERT_TRUE(EvalPredicateBatch(*pred, batch_, ctx_, &sel).ok());
  std::vector<uint32_t> expected;
  for (size_t i = 0; i < batch_.size(); ++i) {
    auto keep = EvalPredicate(*pred, batch_.RowAt(i), ctx_);
    ASSERT_TRUE(keep.ok());
    if (*keep) expected.push_back(static_cast<uint32_t>(i));
  }
  EXPECT_EQ(sel, expected);
}

TEST_F(BatchExprTest, PredicateRefinesExistingSelection) {
  batch_.SetSelection({0, 2, 4, 6, 8, 10});
  ExprPtr pred = Bind(Expr::Binary(BinaryOp::kGt, Expr::Column("n.v"),
                                   Expr::Literal(Value::Double(-1.0))));
  std::vector<uint32_t> sel;
  ASSERT_TRUE(EvalPredicateBatch(*pred, batch_, ctx_, &sel).ok());
  // Output must be physical indices drawn from the installed selection.
  for (uint32_t p : sel) EXPECT_EQ(p % 2, 0u);
  batch_.SetSelection(sel);
  for (size_t i = 0; i < batch_.size(); ++i) {
    auto keep = EvalPredicate(*pred, batch_.RowAt(i), ctx_);
    ASSERT_TRUE(keep.ok() && *keep);
  }
}

TEST_F(BatchExprTest, DivisionByZeroErrorsMatch) {
  ExprPtr bad = Bind(Expr::Binary(BinaryOp::kDiv,
                                  Expr::Literal(Value::Double(1.0)),
                                  Expr::Binary(BinaryOp::kMul,
                                               Expr::Column("n.v"),
                                               Expr::Literal(Value::Double(0.0)))));
  ColumnVector out;
  util::Status batch_status = EvalExprBatch(*bad, batch_, ctx_, &out);
  ASSERT_FALSE(batch_status.ok());
  auto row_status = EvalExpr(*bad, batch_.RowAt(0), ctx_);
  ASSERT_FALSE(row_status.ok());
  EXPECT_EQ(batch_status.ToString(), row_status.status().ToString());
}

// ------------------------------------------------------- golden equivalence

class BatchEquivTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = phylo::ParseNewick("((a,b)x,(c,d)y)r;");
    ASSERT_TRUE(t.ok());
    tree_ = std::move(*t);
    auto idx = phylo::TreeIndex::Build(tree_);
    ASSERT_TRUE(idx.ok());
    index_ = std::make_unique<phylo::TreeIndex>(std::move(*idx));

    auto pschema = Schema::Create({{"acc", ValueType::kString, false},
                                   {"family", ValueType::kString, false},
                                   {"node_id", ValueType::kInt64, true},
                                   {"pre", ValueType::kInt64, true}});
    proteins_ = std::make_unique<Table>("proteins", *pschema);
    for (auto leaf : tree_.Leaves()) {
      const std::string& name = tree_.node(leaf).name;
      ASSERT_TRUE(proteins_
                      ->Insert({Value::String(name),
                                Value::String(name < "c" ? "famA" : "famB"),
                                Value::Int64(leaf),
                                Value::Int64(index_->Pre(leaf))})
                      .ok());
    }
    ASSERT_TRUE(proteins_->CreateIndex("pre", IndexKind::kBTree).ok());
    ASSERT_TRUE(proteins_->CreateIndex("acc", IndexKind::kHash).ok());

    auto aschema = Schema::Create({{"acc", ValueType::kString, false},
                                   {"lig", ValueType::kString, false},
                                   {"aff", ValueType::kDouble, false}});
    activities_ = std::make_unique<Table>("activities", *aschema);
    struct Act { const char* acc; const char* lig; double aff; };
    for (const Act& act : std::initializer_list<Act>{
             {"a", "L1", 10}, {"a", "L2", 500}, {"b", "L1", 20},
             {"c", "L3", 5}, {"c", "L1", 900}, {"d", "L2", 50}}) {
      ASSERT_TRUE(activities_
                      ->Insert({Value::String(act.acc), Value::String(act.lig),
                                Value::Double(act.aff)})
                      .ok());
    }

    // A larger mixed-type table with NULLs, duplicates, and tombstones so
    // odd batch sizes hit partial batches, null bitmaps, and deleted-row
    // skipping in the middle of a scan.
    auto nschema = Schema::Create({{"k", ValueType::kInt64, true},
                                   {"v", ValueType::kDouble, false},
                                   {"s", ValueType::kString, false},
                                   {"g", ValueType::kString, true}});
    nums_ = std::make_unique<Table>("nums", *nschema);
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(
          nums_
              ->Insert({i % 7 == 3 ? Value::Null() : Value::Int64(i % 17),
                        Value::Double(i * 0.5 - 10.0),
                        Value::String("s" + std::to_string(i % 5)),
                        i % 4 == 0 ? Value::Null()
                                   : Value::String(i % 2 ? "odd" : "even")})
              .ok());
    }
    for (storage::RowId id : {5, 6, 30, 59}) {
      ASSERT_TRUE(nums_->Delete(id).ok());
    }

    ASSERT_TRUE(proteins_->Analyze().ok());
    ASSERT_TRUE(activities_->Analyze().ok());
    ASSERT_TRUE(nums_->Analyze().ok());
    ASSERT_TRUE(catalog_.Register(proteins_.get()).ok());
    ASSERT_TRUE(catalog_.Register(activities_.get()).ok());
    ASSERT_TRUE(catalog_.Register(nums_.get()).ok());
    catalog_.SetTree(&tree_, index_.get());
    ASSERT_TRUE(catalog_.BindTree("proteins", {"node_id", "pre", ""}).ok());
    planner_ = std::make_unique<Planner>(&catalog_);
  }

  static void ExpectIdentical(const QueryResult& ref, const QueryResult& got,
                              const std::string& tag) {
    ASSERT_EQ(ref.columns, got.columns) << tag;
    ASSERT_EQ(ref.rows.size(), got.rows.size()) << tag;
    for (size_t r = 0; r < ref.rows.size(); ++r) {
      ASSERT_EQ(ref.rows[r].size(), got.rows[r].size()) << tag << " row " << r;
      for (size_t c = 0; c < ref.rows[r].size(); ++c) {
        // Bit-identical: same variant alternative AND same payload.
        EXPECT_EQ(ref.rows[r][c].type(), got.rows[r][c].type())
            << tag << " cell (" << r << "," << c << ")";
        EXPECT_TRUE(ref.rows[r][c] == got.rows[r][c])
            << tag << " cell (" << r << "," << c
            << "): " << ref.rows[r][c].ToString() << " vs "
            << got.rows[r][c].ToString();
      }
    }
  }

  phylo::Tree tree_;
  std::unique_ptr<phylo::TreeIndex> index_;
  std::unique_ptr<Table> proteins_, activities_, nums_;
  Catalog catalog_;
  std::unique_ptr<Planner> planner_;
};

const char* kCorpus[] = {
    // Scans, filters, projections.
    "SELECT p.acc FROM proteins p",
    "SELECT p.acc FROM proteins p WHERE p.family = 'famA'",
    "SELECT n.k, n.v, n.s, n.g FROM nums n",
    "SELECT n.k FROM nums n WHERE n.k > 5",
    "SELECT n.s, n.k + 1 AS k1, n.v * 2.0 AS v2 FROM nums n "
    "WHERE n.v >= -5.0",
    "SELECT n.v - n.k AS d FROM nums n",
    "SELECT n.k / 4.0 AS q FROM nums n WHERE n.v > 0.1",
    "SELECT n.s FROM nums n WHERE n.s >= 's2'",
    "SELECT n.k FROM nums n WHERE n.k IS NULL",
    "SELECT n.k FROM nums n WHERE n.k IS NOT NULL AND n.g = 'even'",
    "SELECT n.k FROM nums n WHERE n.g = 'even' OR n.k < 3",
    "SELECT n.k FROM nums n WHERE NOT n.g = 'odd'",
    "SELECT n.k, n.v FROM nums n WHERE n.k BETWEEN 3 AND 9 "
    "ORDER BY n.k, n.v",
    // Index access paths.
    "SELECT p.acc FROM proteins p WHERE p.pre >= 1 AND p.pre <= 5",
    "SELECT p.acc FROM proteins p WHERE p.acc = 'c'",
    // Limits (including mid-batch truncation) and DISTINCT.
    "SELECT n.k FROM nums n LIMIT 7",
    "SELECT a.aff FROM activities a ORDER BY a.aff DESC LIMIT 2",
    "SELECT a.aff FROM activities a LIMIT 0",
    "SELECT DISTINCT n.s FROM nums n ORDER BY n.s",
    "SELECT DISTINCT n.g FROM nums n",
    // Joins: hash (with NULL keys), residuals, nested-loop, cross, 3-way.
    "SELECT p.acc, a.aff FROM proteins p JOIN activities a "
    "ON p.acc = a.acc WHERE a.aff < 100.0",
    "SELECT n1.k, n2.v FROM nums n1 JOIN nums n2 ON n1.k = n2.k "
    "WHERE n1.v < n2.v",
    "SELECT n1.s FROM nums n1, nums n2 WHERE n1.k = n2.k "
    "AND n1.v + n2.v > 0.0",
    "SELECT p.acc, l.aff FROM proteins p, activities l WHERE l.aff > 400.0",
    "SELECT p.acc, a.lig, a2.aff FROM proteins p "
    "JOIN activities a ON p.acc = a.acc "
    "JOIN activities a2 ON a.lig = a2.lig WHERE a2.aff >= 10.0",
    // Aggregation.
    "SELECT p.family, COUNT(*) AS n, MIN(a.aff) AS best, MAX(a.aff) AS worst "
    "FROM proteins p JOIN activities a ON p.acc = a.acc GROUP BY p.family "
    "ORDER BY p.family",
    "SELECT COUNT(*) AS n, AVG(a.aff) AS m FROM activities a",
    "SELECT COUNT(*) AS n FROM activities a WHERE a.aff < 0",
    "SELECT n.g, COUNT(*) AS c, SUM(n.k) AS sk, AVG(n.v) AS av FROM nums n "
    "GROUP BY n.g ORDER BY c, sk",
    // Tree predicates and scalars (per-row fallback inside the batch path).
    "SELECT p.acc FROM proteins p WHERE SUBTREE(p.node_id, 'x') "
    "ORDER BY p.acc",
    "SELECT p.acc, TREE_DEPTH(p.node_id) AS d FROM proteins p ORDER BY p.acc",
    "SELECT p.acc FROM proteins p WHERE SUBTREE(p.node_id, 'x') "
    "AND p.family = 'famA'",
};

TEST_F(BatchEquivTest, CorpusBitIdenticalAcrossBatchSizesAndParallelism) {
  const size_t batch_sizes[] = {1, 3, 1024};
  const int parallelisms[] = {1, 4};
  for (const char* sql : kCorpus) {
    for (bool optimized : {false, true}) {
      PlannerOptions ref_opts =
          optimized ? PlannerOptions::Optimized() : PlannerOptions::Naive();
      ref_opts.batch_size = 1;  // reference: legacy serial row engine
      ref_opts.parallelism = 1;
      auto ref = planner_->Run(sql, ref_opts);
      ASSERT_TRUE(ref.ok()) << sql << ": " << ref.status();
      for (size_t bs : batch_sizes) {
        for (int par : parallelisms) {
          PlannerOptions opts = ref_opts;
          opts.batch_size = bs;
          opts.parallelism = par;
          auto got = planner_->Run(sql, opts);
          ASSERT_TRUE(got.ok()) << sql << ": " << got.status();
          ExpectIdentical(ref->result, got->result,
                          std::string(sql) + " [batch=" + std::to_string(bs) +
                              " par=" + std::to_string(par) +
                              (optimized ? " opt]" : " naive]"));
        }
      }
    }
  }
}

TEST_F(BatchEquivTest, CorpusBitIdenticalEncodedVsPlain) {
  // The encoded scan path must be invisible to results: run the whole
  // corpus with encoded segments built and compare bit-identically against
  // the plain reference (batch=1 serial never uses encoded execution, so
  // it IS the plain engine even after the build).
  ASSERT_TRUE(proteins_->BuildEncodedSegments(16).ok());
  ASSERT_TRUE(activities_->BuildEncodedSegments(4).ok());
  ASSERT_TRUE(nums_->BuildEncodedSegments(16).ok());

  const size_t batch_sizes[] = {1, 1024};
  const int parallelisms[] = {1, 4};
  for (const char* sql : kCorpus) {
    for (bool optimized : {false, true}) {
      PlannerOptions ref_opts =
          optimized ? PlannerOptions::Optimized() : PlannerOptions::Naive();
      ref_opts.batch_size = 1;
      ref_opts.parallelism = 1;
      auto ref = planner_->Run(sql, ref_opts);
      ASSERT_TRUE(ref.ok()) << sql << ": " << ref.status();
      for (size_t bs : batch_sizes) {
        for (int par : parallelisms) {
          PlannerOptions opts = ref_opts;
          opts.batch_size = bs;
          opts.parallelism = par;
          auto got = planner_->Run(sql, opts);
          ASSERT_TRUE(got.ok()) << sql << ": " << got.status();
          ExpectIdentical(ref->result, got->result,
                          std::string(sql) + " [encoded batch=" +
                              std::to_string(bs) + " par=" +
                              std::to_string(par) +
                              (optimized ? " opt]" : " naive]"));
        }
      }
    }
  }
}

TEST_F(BatchEquivTest, ExplainAnalyzeReportsEncodedScan) {
  ASSERT_TRUE(nums_->BuildEncodedSegments().ok());
  PlannerOptions opts;
  opts.batch_size = 1024;
  auto outcome = planner_->Run(
      "EXPLAIN ANALYZE SELECT n.k FROM nums n WHERE n.s = 's2'", opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  // The scan label carries the per-column encodings and the stats line the
  // encoded bytes actually read.
  EXPECT_NE(outcome->analyzed_plan.find("[encoded:"), std::string::npos)
      << outcome->analyzed_plan;
  EXPECT_NE(outcome->analyzed_plan.find("bytes="), std::string::npos)
      << outcome->analyzed_plan;
}

TEST_F(BatchEquivTest, EncodedScanSurvivesMemoryBudgetPlainScanBlows) {
  // Direct encoded execution is a memory win, not just a speed win: a
  // selective scan over a string-heavy table only materializes surviving
  // rows, while the plain batch path decodes full batches before
  // filtering. Pin it with a per-query hard limit sized between the two
  // peaks: the plain scan aborts with kResourceExhausted, the encoded scan
  // finishes.
  auto schema = Schema::Create({{"tag", ValueType::kString, false},
                                {"payload", ValueType::kString, false}});
  Table wide("wide", *schema);
  const std::string filler(120, 'x');
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(wide.Insert({Value::String(i % 400 == 0 ? "hit" : "miss"),
                             Value::String(filler +
                                           std::to_string(i))})
                    .ok());
  }
  ASSERT_TRUE(wide.Analyze().ok());
  ASSERT_TRUE(catalog_.Register(&wide).ok());
  const char* sql = "SELECT w.payload FROM wide w WHERE w.tag = 'hit'";

  PlannerOptions opts;
  opts.batch_size = 1024;
  auto run_with_budget = [&](int64_t budget) {
    obs::MemoryTracker tracker("query", nullptr, 0, budget);
    QueryContext ctx;
    ctx.memory = &tracker;
    return planner_->Run(sql, opts, &ctx);
  };

  const int64_t kBudget = 48 * 1024;  // well under one decoded 1024-row batch
  ASSERT_TRUE(wide.BuildEncodedSegments().ok());
  auto encoded = run_with_budget(kBudget);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  EXPECT_EQ(encoded->result.rows.size(), 10u);

  wide.DropEncodedSegments();
  auto plain = run_with_budget(kBudget);
  ASSERT_FALSE(plain.ok());
  EXPECT_TRUE(plain.status().IsResourceExhausted()) << plain.status();

  // Same query, no budget: both paths agree on the rows.
  auto unlimited = planner_->Run(sql, opts);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status();
  ExpectIdentical(unlimited->result, encoded->result, sql);
}

TEST_F(BatchEquivTest, RuntimeErrorsAgreeAcrossBatchSizes) {
  // Row 20 of nums has v == 0.0, so this divides by zero in every engine.
  const char* sql = "SELECT 1.0 / n.v AS q FROM nums n";
  std::string ref_error;
  for (size_t bs : {size_t{1}, size_t{3}, size_t{1024}}) {
    PlannerOptions opts;
    opts.batch_size = bs;
    auto outcome = planner_->Run(sql, opts);
    ASSERT_FALSE(outcome.ok()) << "batch=" << bs;
    if (ref_error.empty()) {
      ref_error = outcome.status().ToString();
    } else {
      EXPECT_EQ(outcome.status().ToString(), ref_error) << "batch=" << bs;
    }
  }
}

TEST_F(BatchEquivTest, AnalyzeReportsBatchesUnderVectorizedExecution) {
  PlannerOptions opts;
  opts.batch_size = 8;
  auto outcome = planner_->Run(
      "EXPLAIN ANALYZE SELECT n.k FROM nums n WHERE n.k > 5", opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_NE(outcome->analyzed_plan.find("batches="), std::string::npos)
      << outcome->analyzed_plan;
}

// ------------------------------------------------------------- cancellation

TEST_F(BatchEquivTest, MidBatchCancellationStopsScan) {
  // Deterministic mid-stream cancel: pull two batches, flip the flag, and
  // the very next NextBatch checkpoint must abort.
  ExecStats stats;
  SeqScanOp scan(nums_.get(), "n", nullptr, {}, &stats);
  std::atomic<bool> cancel{false};
  QueryContext ctx;
  ctx.cancel = &cancel;
  scan.SetQueryContext(&ctx);
  scan.SetBatchSize(16);
  ASSERT_TRUE(scan.Open().ok());
  RowBatch batch;
  ASSERT_TRUE(scan.NextBatch(&batch).ok());
  ASSERT_TRUE(scan.NextBatch(&batch).ok());
  cancel.store(true);
  auto more = scan.NextBatch(&batch);
  ASSERT_FALSE(more.ok());
  EXPECT_TRUE(more.status().IsCancelled()) << more.status();
}

TEST_F(BatchEquivTest, CancellationMidQueryUnderBatchExecution) {
  // Mirrors server_test's mid-scan cancel without the serving layer: a
  // cubic nested-loop join far too large to finish before the flag flips.
  auto bschema = Schema::Create({{"k", ValueType::kInt64, false}});
  Table big("big", *bschema);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(big.Insert({Value::Int64(i)}).ok());
  }
  ASSERT_TRUE(big.Analyze().ok());
  ASSERT_TRUE(catalog_.Register(&big).ok());

  std::atomic<bool> cancel{false};
  QueryContext ctx;
  ctx.cancel = &cancel;
  PlannerOptions opts;
  opts.batch_size = 1024;
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.store(true);
  });
  auto outcome = planner_->Run(
      "SELECT COUNT(*) AS n FROM big b1, big b2, big b3 "
      "WHERE b1.k < b2.k AND b2.k < b3.k",
      opts, &ctx);
  canceller.join();
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsCancelled()) << outcome.status();
}

}  // namespace
}  // namespace query
}  // namespace drugtree
