#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "util/arena.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace drugtree {
namespace util {
namespace {

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\nx"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("aBc1"), "ABC1");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(EndsWith("abcdef", "def"));
  EXPECT_FALSE(EndsWith("ef", "def"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("BLOSUM62", "blosum62"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(10), "10 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(StringUtilTest, Fnv1aStableAndDistinct) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
}

TEST(SummaryStatsTest, Moments) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.Stddev(), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Stddev(), 0.0);
}

TEST(HistogramTest, BasicPercentiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_NEAR(h.Percentile(50), 500, 150);
  EXPECT_NEAR(h.Percentile(99), 990, 250);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.Mean(), 500.5, 1e-9);
}

TEST(HistogramTest, PercentileBoundsClamped) {
  Histogram h;
  h.Add(5);
  h.Add(10);
  EXPECT_GE(h.Percentile(0), 5.0);
  EXPECT_LE(h.Percentile(100), 10.0);
}

TEST(HistogramTest, EmptyPercentileIsZeroAtEveryP) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0.0);
}

TEST(HistogramTest, SingleObservationIsEveryPercentile) {
  Histogram h;
  h.Add(42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 42.0);
}

TEST(HistogramTest, PercentileEdgesAreExactMinMax) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  // p0/p100 must be the observed extremes, not bucket-interpolated values.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
  // Out-of-range p clamps to the same answers.
  EXPECT_DOUBLE_EQ(h.Percentile(-10), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(150), 100.0);
}

TEST(HistogramTest, SingleBucketMassStaysWithinObservedRange) {
  // 100, 100.5, 101 share one geometric bucket (1.25^20 ~ 86.7 to
  // 1.25^21 ~ 108.4); interpolation must clamp into [min, max].
  Histogram h;
  h.Add(100.0);
  h.Add(100.5);
  h.Add(101.0);
  for (double p : {0.0, 25.0, 50.0, 75.0, 100.0}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, 100.0) << "p=" << p;
    EXPECT_LE(v, 101.0) << "p=" << p;
  }
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Add(1);
  for (int i = 0; i < 100; ++i) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 1000.0);
}

TEST(HistogramTest, MergeFromEmptyKeepsStats) {
  Histogram a, empty;
  a.Add(2);
  a.Add(8);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
  EXPECT_DOUBLE_EQ(a.Mean(), 5.0);
}

TEST(HistogramTest, MergeIntoEmptyAdoptsStats) {
  Histogram empty, b;
  b.Add(3);
  b.Add(9);
  empty.Merge(b);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.min(), 3.0);
  EXPECT_DOUBLE_EQ(empty.max(), 9.0);
  EXPECT_DOUBLE_EQ(empty.Mean(), 6.0);
}

TEST(HistogramTest, MergeBothEmptyStaysEmpty) {
  Histogram a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  EXPECT_DOUBLE_EQ(a.Mean(), 0.0);
}

TEST(HistogramTest, ToJsonShape) {
  Histogram h;
  h.Add(1);
  h.Add(3);
  std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\":"), std::string::npos) << json;
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(3);
  h.Clear();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Add(-5);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(ClockTest, SimulatedClockAdvances) {
  SimulatedClock c(100);
  EXPECT_EQ(c.NowMicros(), 100);
  c.AdvanceMicros(50);
  EXPECT_EQ(c.NowMicros(), 150);
  c.SetMicros(1000);
  EXPECT_EQ(c.NowMicros(), 1000);
}

TEST(ClockTest, TimerMeasuresSimulatedTime) {
  SimulatedClock c;
  Timer t(&c);
  c.AdvanceMicros(250);
  EXPECT_EQ(t.ElapsedMicros(), 250);
  t.Reset();
  EXPECT_EQ(t.ElapsedMicros(), 0);
}

TEST(ClockTest, RealClockMonotonic) {
  RealClock* c = RealClock::Instance();
  int64_t a = c->NowMicros();
  int64_t b = c->NowMicros();
  EXPECT_GE(b, a);
}

TEST(ArenaTest, AllocationsDisjointAndAligned) {
  Arena arena(1024);
  void* a = arena.Allocate(100);
  void* b = arena.Allocate(100);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(std::max_align_t), 0u);
  char* bytes = static_cast<char*>(a);
  for (int i = 0; i < 100; ++i) bytes[i] = char(i);  // must not crash
  EXPECT_GE(arena.bytes_allocated(), 200u);
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena(256);
  void* big = arena.Allocate(10000);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

TEST(ArenaTest, CopyBytes) {
  Arena arena;
  const char* src = "hello";
  char* copy = arena.CopyBytes(src, 5);
  EXPECT_EQ(std::string(copy, 5), "hello");
  EXPECT_NE(static_cast<const void*>(copy), static_cast<const void*>(src));
}

TEST(ArenaTest, ResetReclaims) {
  Arena arena(1024);
  arena.Allocate(100);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  void* p = arena.Allocate(10);
  EXPECT_NE(p, nullptr);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, WaitWithNoWork) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

}  // namespace
}  // namespace util
}  // namespace drugtree
