#include "bio/distance.h"

#include <gtest/gtest.h>

#include <set>

#include "bio/synthetic.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace drugtree {
namespace bio {
namespace {

TEST(DistanceMatrixTest, CreateRejectsDuplicateNames) {
  EXPECT_TRUE(
      DistanceMatrix::Create({"a", "b", "a"}).status().IsInvalidArgument());
}

TEST(DistanceMatrixTest, SetIsSymmetric) {
  auto m = DistanceMatrix::Create({"a", "b", "c"});
  ASSERT_TRUE(m.ok());
  m->Set(0, 2, 1.5);
  EXPECT_DOUBLE_EQ(m->at(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(m->at(2, 0), 1.5);
  EXPECT_DOUBLE_EQ(m->at(0, 0), 0.0);
  EXPECT_TRUE(m->IsValid());
}

TEST(DistanceMatrixTest, IndexOf) {
  auto m = DistanceMatrix::Create({"x", "y"});
  EXPECT_EQ(m->IndexOf("y"), 1);
  EXPECT_EQ(m->IndexOf("z"), -1);
}

TEST(AlignmentDistanceTest, IdenticalIsZero) {
  auto a = Sequence::Create("a", "MKVLWAALLVMKVLWAALLV");
  auto d = AlignmentDistance(*a, *a);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-9);
}

TEST(AlignmentDistanceTest, UnrelatedIsLarge) {
  util::Rng rng(3);
  auto seqs = RandomSequences(2, 100, &rng);
  auto d = AlignmentDistance(seqs[0], seqs[1]);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(*d, 0.5);
}

TEST(AlignmentDistanceTest, ClampedAtMax) {
  DistanceParams p;
  p.max_distance = 2.0;
  util::Rng rng(4);
  auto seqs = RandomSequences(2, 80, &rng);
  auto d = AlignmentDistance(seqs[0], seqs[1], p);
  ASSERT_TRUE(d.ok());
  EXPECT_LE(*d, 2.0);
}

TEST(KmerDistanceTest, IdenticalIsZeroUnrelatedPositive) {
  util::Rng rng(5);
  auto seqs = RandomSequences(2, 120, &rng);
  auto same = KmerDistance(seqs[0], seqs[0], 3);
  ASSERT_TRUE(same.ok());
  EXPECT_NEAR(*same, 0.0, 1e-9);
  auto diff = KmerDistance(seqs[0], seqs[1], 3);
  ASSERT_TRUE(diff.ok());
  EXPECT_GT(*diff, 0.1);
  EXPECT_LE(*diff, 1.0);
}

TEST(KmerDistanceTest, RejectsBadK) {
  util::Rng rng(6);
  auto seqs = RandomSequences(2, 50, &rng);
  EXPECT_TRUE(KmerDistance(seqs[0], seqs[1], 0).status().IsInvalidArgument());
  EXPECT_TRUE(KmerDistance(seqs[0], seqs[1], 5).status().IsInvalidArgument());
}

TEST(KmerDistanceTest, ShortSequenceNoKmersMaxDistance) {
  auto a = Sequence::Create("a", "MK");
  auto b = Sequence::Create("b", "MKVLWMKVLW");
  auto d = KmerDistance(*a, *b, 3);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 1.0);  // empty profile vs non-empty
}

// The central signal property: within-clade distances are smaller than
// cross-family distances for evolved sequences.
TEST(DistanceSignalTest, EvolvedFamilyHasTreeSignal) {
  util::Rng rng(42);
  EvolutionParams ep;
  ep.num_taxa = 8;
  ep.sequence_length = 150;
  auto fam1 = EvolveFamily(ep, &rng);
  auto fam2 = EvolveFamily(ep, &rng);
  ASSERT_TRUE(fam1.ok());
  ASSERT_TRUE(fam2.ok());
  // Mean within-family kmer distance < mean cross-family distance.
  double within = 0, cross = 0;
  int wn = 0, cn = 0;
  for (size_t i = 0; i < fam1->sequences.size(); ++i) {
    for (size_t j = i + 1; j < fam1->sequences.size(); ++j) {
      within += *KmerDistance(fam1->sequences[i], fam1->sequences[j]);
      ++wn;
    }
    for (const auto& other : fam2->sequences) {
      cross += *KmerDistance(fam1->sequences[i], other);
      ++cn;
    }
  }
  EXPECT_LT(within / wn, cross / cn);
}

TEST(DistanceMatrixBuildTest, KmerMatrixValid) {
  util::Rng rng(7);
  EvolutionParams ep;
  ep.num_taxa = 10;
  ep.sequence_length = 100;
  auto fam = EvolveFamily(ep, &rng);
  ASSERT_TRUE(fam.ok());
  auto m = KmerDistanceMatrix(fam->sequences, 3);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size(), 10u);
  EXPECT_TRUE(m->IsValid());
}

TEST(DistanceMatrixBuildTest, AlignmentMatrixValid) {
  util::Rng rng(8);
  EvolutionParams ep;
  ep.num_taxa = 6;
  ep.sequence_length = 60;
  auto fam = EvolveFamily(ep, &rng);
  ASSERT_TRUE(fam.ok());
  auto m = AlignmentDistanceMatrix(fam->sequences);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->IsValid());
}

TEST(DistanceMatrixBuildTest, ParallelMatchesSerial) {
  util::Rng rng(9);
  EvolutionParams ep;
  ep.num_taxa = 8;
  ep.sequence_length = 80;
  auto fam = EvolveFamily(ep, &rng);
  ASSERT_TRUE(fam.ok());
  util::ThreadPool pool(4);
  auto serial = KmerDistanceMatrix(fam->sequences, 3, nullptr);
  auto parallel = KmerDistanceMatrix(fam->sequences, 3, &pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  for (size_t i = 0; i < serial->size(); ++i) {
    for (size_t j = 0; j < serial->size(); ++j) {
      EXPECT_DOUBLE_EQ(serial->at(i, j), parallel->at(i, j));
    }
  }
}

TEST(SyntheticTest, EvolveFamilyDeterministic) {
  EvolutionParams ep;
  ep.num_taxa = 6;
  util::Rng r1(11), r2(11);
  auto f1 = EvolveFamily(ep, &r1);
  auto f2 = EvolveFamily(ep, &r2);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f1->true_tree_newick, f2->true_tree_newick);
  ASSERT_EQ(f1->sequences.size(), f2->sequences.size());
  for (size_t i = 0; i < f1->sequences.size(); ++i) {
    EXPECT_EQ(f1->sequences[i], f2->sequences[i]);
  }
}

TEST(SyntheticTest, EvolveFamilyValidatesParams) {
  util::Rng rng(12);
  EvolutionParams ep;
  ep.num_taxa = 1;
  EXPECT_TRUE(EvolveFamily(ep, &rng).status().IsInvalidArgument());
  ep = EvolutionParams();
  ep.sequence_length = 5;
  EXPECT_TRUE(EvolveFamily(ep, &rng).status().IsInvalidArgument());
  ep = EvolutionParams();
  EXPECT_TRUE(EvolveFamily(ep, nullptr).status().IsInvalidArgument());
}

TEST(SyntheticTest, TaxonCountAndUniqueIds) {
  util::Rng rng(13);
  EvolutionParams ep;
  ep.num_taxa = 17;
  auto fam = EvolveFamily(ep, &rng);
  ASSERT_TRUE(fam.ok());
  EXPECT_EQ(fam->sequences.size(), 17u);
  std::set<std::string> ids;
  for (const auto& s : fam->sequences) ids.insert(s.id());
  EXPECT_EQ(ids.size(), 17u);
}

}  // namespace
}  // namespace bio
}  // namespace drugtree
