#include "chem/fingerprint.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "chem/similarity.h"
#include "chem/smiles.h"
#include "chem/synthetic_ligands.h"
#include "util/rng.h"

namespace drugtree {
namespace chem {
namespace {

Fingerprint FpOf(const std::string& smiles, int bits = 1024) {
  auto m = ParseSmiles(smiles);
  EXPECT_TRUE(m.ok()) << smiles;
  FingerprintParams p;
  p.num_bits = bits;
  auto fp = ComputeFingerprint(*m, p);
  EXPECT_TRUE(fp.ok());
  return *fp;
}

TEST(FingerprintTest, BitOps) {
  Fingerprint fp(128);
  EXPECT_EQ(fp.num_bits(), 128);
  EXPECT_EQ(fp.PopCount(), 0);
  fp.SetBit(0);
  fp.SetBit(63);
  fp.SetBit(64);
  fp.SetBit(127);
  EXPECT_EQ(fp.PopCount(), 4);
  EXPECT_TRUE(fp.TestBit(63));
  EXPECT_FALSE(fp.TestBit(62));
}

TEST(FingerprintTest, WidthRoundsUpTo64) {
  Fingerprint fp(100);
  EXPECT_EQ(fp.num_bits(), 128);
}

TEST(FingerprintTest, AndOrCounts) {
  Fingerprint a(128), b(128);
  a.SetBit(1);
  a.SetBit(2);
  b.SetBit(2);
  b.SetBit(3);
  EXPECT_EQ(a.AndCount(b), 1);
  EXPECT_EQ(a.OrCount(b), 3);
}

TEST(FingerprintTest, Deterministic) {
  auto a = FpOf("CC(=O)Oc1ccccc1C(=O)O");
  auto b = FpOf("CC(=O)Oc1ccccc1C(=O)O");
  EXPECT_EQ(a, b);
}

TEST(FingerprintTest, NonTrivialDensity) {
  auto fp = FpOf("CC(=O)Oc1ccccc1C(=O)O");
  EXPECT_GT(fp.PopCount(), 10);
  EXPECT_LT(fp.PopCount(), fp.num_bits() / 2);
}

TEST(FingerprintTest, ParamValidation) {
  auto m = ParseSmiles("CCO");
  FingerprintParams p;
  p.num_bits = 32;
  EXPECT_TRUE(ComputeFingerprint(*m, p).status().IsInvalidArgument());
  p = FingerprintParams();
  p.max_path_bonds = 9;
  EXPECT_TRUE(ComputeFingerprint(*m, p).status().IsInvalidArgument());
  p = FingerprintParams();
  p.bits_per_path = 0;
  EXPECT_TRUE(ComputeFingerprint(*m, p).status().IsInvalidArgument());
}

TEST(TanimotoTest, SelfSimilarityIsOne) {
  auto fp = FpOf("c1ccccc1CCN");
  EXPECT_DOUBLE_EQ(Tanimoto(fp, fp), 1.0);
  EXPECT_DOUBLE_EQ(Dice(fp, fp), 1.0);
}

TEST(TanimotoTest, EmptyFingerprintsSimilarityOne) {
  Fingerprint a(128), b(128);
  EXPECT_DOUBLE_EQ(Tanimoto(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Dice(a, b), 1.0);
}

TEST(TanimotoTest, SymmetricAndBounded) {
  auto a = FpOf("CC(=O)Oc1ccccc1C(=O)O");
  auto b = FpOf("c1ccncc1CCO");
  double t = Tanimoto(a, b);
  EXPECT_DOUBLE_EQ(t, Tanimoto(b, a));
  EXPECT_GE(t, 0.0);
  EXPECT_LE(t, 1.0);
}

TEST(TanimotoTest, SimilarMoleculesScoreHigherThanDissimilar) {
  auto benzene = FpOf("c1ccccc1");
  auto toluene = FpOf("Cc1ccccc1");
  auto alkane = FpOf("CCCCCCCC");
  EXPECT_GT(Tanimoto(benzene, toluene), Tanimoto(benzene, alkane));
}

class SimilarityIndexProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityIndexProperty, ThresholdSearchMatchesLinearScan) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 13 + 5);
  LigandGenParams gen;
  auto ligands = GenerateLigands(120, gen, &rng);
  ASSERT_TRUE(ligands.ok());
  SimilarityIndex index(1024);
  std::vector<Fingerprint> fps;
  for (size_t i = 0; i < ligands->size(); ++i) {
    auto fp = FpOf((*ligands)[i].smiles);
    fps.push_back(fp);
    ASSERT_TRUE(index.Add(static_cast<int64_t>(i), fp).ok());
  }
  EXPECT_EQ(index.size(), 120u);
  for (double threshold : {0.3, 0.6, 0.9}) {
    for (int q = 0; q < 5; ++q) {
      const Fingerprint& query = fps[rng.Uniform(fps.size())];
      auto fast = index.SearchThreshold(query, threshold);
      ASSERT_TRUE(fast.ok());
      auto slow = index.LinearSearchThreshold(query, threshold);
      ASSERT_EQ(fast->size(), slow.size()) << "threshold " << threshold;
      for (size_t i = 0; i < slow.size(); ++i) {
        EXPECT_EQ((*fast)[i].id, slow[i].id);
        EXPECT_DOUBLE_EQ((*fast)[i].similarity, slow[i].similarity);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityIndexProperty,
                         ::testing::Range(0, 4));

TEST(SimilarityIndexTest, TopKMatchesThresholdOrdering) {
  util::Rng rng(77);
  LigandGenParams gen;
  auto ligands = GenerateLigands(80, gen, &rng);
  ASSERT_TRUE(ligands.ok());
  SimilarityIndex index(1024);
  std::vector<Fingerprint> fps;
  for (size_t i = 0; i < ligands->size(); ++i) {
    fps.push_back(FpOf((*ligands)[i].smiles));
    ASSERT_TRUE(index.Add(static_cast<int64_t>(i), fps.back()).ok());
  }
  const Fingerprint& query = fps[3];
  auto topk = index.SearchTopK(query, 10);
  ASSERT_TRUE(topk.ok());
  ASSERT_EQ(topk->size(), 10u);
  // Descending similarity; and must equal the top of a full linear ranking.
  auto all = index.LinearSearchThreshold(query, 1e-9);
  for (size_t i = 0; i < topk->size(); ++i) {
    EXPECT_DOUBLE_EQ((*topk)[i].similarity, all[i].similarity);
    EXPECT_EQ((*topk)[i].id, all[i].id);
  }
}

TEST(SimilarityIndexTest, TopKHandlesKLargerThanIndex) {
  SimilarityIndex index(128);
  Fingerprint fp(128);
  fp.SetBit(5);
  ASSERT_TRUE(index.Add(1, fp).ok());
  auto hits = index.SearchTopK(fp, 10);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].id, 1);
}

TEST(SimilarityIndexTest, Validation) {
  SimilarityIndex index(128);
  Fingerprint wrong(256);
  EXPECT_TRUE(index.Add(1, wrong).IsInvalidArgument());
  Fingerprint ok_fp(128);
  ASSERT_TRUE(index.Add(1, ok_fp).ok());
  EXPECT_TRUE(index.SearchThreshold(wrong, 0.5).status().IsInvalidArgument());
  EXPECT_TRUE(index.SearchThreshold(ok_fp, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(index.SearchThreshold(ok_fp, 1.5).status().IsInvalidArgument());
  EXPECT_TRUE(index.SearchTopK(ok_fp, 0).status().IsInvalidArgument());
}

TEST(SimilarityIndexTest, ExactDuplicateFoundAtThresholdOne) {
  util::Rng rng(88);
  LigandGenParams gen;
  auto ligands = GenerateLigands(40, gen, &rng);
  SimilarityIndex index(1024);
  std::vector<Fingerprint> fps;
  for (size_t i = 0; i < ligands->size(); ++i) {
    fps.push_back(FpOf((*ligands)[i].smiles));
    ASSERT_TRUE(index.Add(static_cast<int64_t>(i), fps.back()).ok());
  }
  auto hits = index.SearchThreshold(fps[7], 1.0);
  ASSERT_TRUE(hits.ok());
  ASSERT_GE(hits->size(), 1u);
  bool found = false;
  for (const auto& h : *hits) found |= h.id == 7;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace chem
}  // namespace drugtree
