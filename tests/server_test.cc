// Serving-layer tests: admission control sheds at capacity, the weighted
// fair scheduler interleaves classes deterministically, expired deadlines
// cancel execution with kCancelled, and an unloaded server returns results
// identical to the direct planner path. Everything runs on a virtual clock
// so queue waits and deadlines are deterministic.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/drugtree.h"
#include "obs/resource_tracker.h"
#include "obs/slo_tracker.h"
#include "obs/trace_context.h"
#include "obs/trace_store.h"
#include "server/server.h"
#include "util/clock.h"

namespace drugtree {
namespace server {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    clock_ = new util::SimulatedClock();
    core::BuildOptions options;
    options.seed = 99;
    options.num_families = 3;
    options.taxa_per_family = 10;
    options.sequence_length = 90;
    options.num_ligands = 120;
    auto built = core::DrugTree::Build(options, clock_);
    ASSERT_TRUE(built.ok()) << built.status();
    dt_ = built->release();
  }
  static void TearDownTestSuite() {
    delete dt_;
    dt_ = nullptr;
    delete clock_;
    clock_ = nullptr;
  }

  static QueryRequest Interactive(uint64_t session, std::string sql) {
    QueryRequest r;
    r.session_id = session;
    r.sql = std::move(sql);
    r.query_class = QueryClass::kInteractive;
    return r;
  }

  static QueryRequest Analytic(uint64_t session, std::string sql) {
    QueryRequest r = Interactive(session, std::move(sql));
    r.query_class = QueryClass::kAnalytic;
    return r;
  }

  static std::string CheapSql() {
    return dt_->OverlayQuerySql(dt_->tree().root());
  }

  static util::SimulatedClock* clock_;
  static core::DrugTree* dt_;
};

util::SimulatedClock* ServerTest::clock_ = nullptr;
core::DrugTree* ServerTest::dt_ = nullptr;

TEST_F(ServerTest, UnloadedServerMatchesDirectExecutor) {
  auto server = dt_->MakeServer();
  const std::string queries[] = {
      CheapSql(),
      "SELECT accession, family FROM proteins ORDER BY accession",
      "SELECT COUNT(*), AVG(a.affinity_nm) FROM activities a",
      "SELECT p.accession, a.affinity_nm FROM proteins p, activities a "
      "WHERE p.accession = a.accession AND a.affinity_nm < 50.0 "
      "ORDER BY a.affinity_nm LIMIT 20",
  };
  for (const std::string& sql : queries) {
    auto direct = dt_->Query(sql);
    ASSERT_TRUE(direct.ok()) << sql << ": " << direct.status();
    auto served = server->Submit(Interactive(1, sql));
    ASSERT_TRUE(served.ok()) << sql << ": " << served.status();
    EXPECT_EQ(direct->result.columns, served->result.columns);
    ASSERT_EQ(direct->result.rows.size(), served->result.rows.size()) << sql;
    for (size_t i = 0; i < direct->result.rows.size(); ++i) {
      EXPECT_EQ(direct->result.rows[i], served->result.rows[i])
          << sql << " row " << i;
    }
  }
  auto c = server->counters(QueryClass::kInteractive);
  EXPECT_EQ(c.completed, 4);
  EXPECT_EQ(c.shed, 0);
  EXPECT_EQ(c.cancelled, 0);
}

TEST_F(ServerTest, AdmissionShedsAtCapacityWithResourceExhausted) {
  ServerOptions options;
  options.admission.interactive_queue_capacity = 4;
  options.admission.analytic_queue_capacity = 2;
  auto server = dt_->MakeServer(options);
  server->Pause();  // stage a backlog: nothing dispatches yet

  std::vector<ResponseHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(server->SubmitAsync(Interactive(1, CheapSql())));
  }
  // First 4 queued; 5th and 6th shed immediately.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(handles[i].Done()) << i;
  for (int i = 4; i < 6; ++i) {
    ASSERT_TRUE(handles[i].Done()) << i;
    auto r = handles[i].Wait();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status();
  }
  // The analytic queue is independent: still admits.
  auto analytic = server->SubmitAsync(Analytic(2, CheapSql()));
  EXPECT_FALSE(analytic.Done());

  auto shed = server->counters(QueryClass::kInteractive);
  EXPECT_EQ(shed.admitted, 4);
  EXPECT_EQ(shed.shed, 2);

  server->Resume();
  server->Drain();
  for (int i = 0; i < 4; ++i) {
    auto r = handles[i].Wait();
    EXPECT_TRUE(r.ok()) << r.status();
  }
  EXPECT_TRUE(analytic.Wait().ok());
  auto done = server->counters(QueryClass::kInteractive);
  EXPECT_EQ(done.completed, 4);
}

TEST_F(ServerTest, WeightedFairSchedulerInterleavesClasses) {
  ServerOptions options;
  options.worker_threads = 1;
  options.scheduler.total_slots = 1;
  options.scheduler.interactive_slots = 1;
  options.scheduler.analytic_slots = 1;
  options.scheduler.interactive_weight = 4;
  options.scheduler.analytic_weight = 1;
  auto server = dt_->MakeServer(options);
  server->EnableDispatchLog();
  server->Pause();
  for (int i = 0; i < 12; ++i) {
    server->SubmitAsync(Interactive(1, CheapSql()));
  }
  for (int i = 0; i < 3; ++i) {
    server->SubmitAsync(Analytic(2, CheapSql()));
  }
  server->Resume();
  server->Drain();

  // Stride scheduling at 4:1 with a single slot: analytic runs every fifth
  // dispatch — steady progress, no starvation, no bursts.
  std::vector<uint64_t> log = server->TakeDispatchLog();
  std::vector<uint64_t> expected = {1, 2, 1, 1, 1, 1, 2, 1,
                                    1, 1, 1, 2, 1, 1, 1};
  EXPECT_EQ(log, expected);
  EXPECT_EQ(server->counters(QueryClass::kInteractive).completed, 12);
  EXPECT_EQ(server->counters(QueryClass::kAnalytic).completed, 3);
}

TEST_F(ServerTest, DispatchOrderIsDeterministicUnderVirtualClock) {
  auto run_once = [&]() {
    ServerOptions options;
    options.worker_threads = 1;
    options.scheduler.total_slots = 1;
    auto server = dt_->MakeServer(options);
    server->EnableDispatchLog();
    server->Pause();
    for (int i = 0; i < 5; ++i) {
      QueryRequest r = Interactive(10 + static_cast<uint64_t>(i), CheapSql());
      r.priority = i % 2;  // priorities reorder within the class
      server->SubmitAsync(std::move(r));
      server->SubmitAsync(Analytic(100 + static_cast<uint64_t>(i), CheapSql()));
    }
    server->Resume();
    server->Drain();
    return server->TakeDispatchLog();
  };
  std::vector<uint64_t> first = run_once();
  std::vector<uint64_t> second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 10u);
}

TEST_F(ServerTest, ExpiredDeadlineIsCancelledWithoutExecuting) {
  auto server = dt_->MakeServer();
  server->Pause();
  QueryRequest r = Interactive(1, CheapSql());
  r.deadline_micros = clock_->NowMicros() + 1'000;
  ResponseHandle handle = server->SubmitAsync(std::move(r));
  clock_->AdvanceMicros(10'000);  // deadline passes while queued
  server->Resume();
  auto result = handle.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
  auto c = server->counters(QueryClass::kInteractive);
  EXPECT_EQ(c.cancelled, 1);
  EXPECT_EQ(c.deadline_missed, 1);
  EXPECT_EQ(c.completed, 0);
}

TEST_F(ServerTest, DeadlineExpiryCancelsMidScan) {
  auto server = dt_->MakeServer();
  // A cubic nested-loop self-join: ~180^3 predicate evaluations, far past
  // many kCancelCheckRows checkpoints. The deadline expires (virtual clock
  // advance below) long before the scan can finish.
  QueryRequest r = Analytic(
      7,
      "SELECT COUNT(*) FROM activities a1, activities a2, activities a3 "
      "WHERE a1.affinity_nm < a2.affinity_nm "
      "AND a2.affinity_nm < a3.affinity_nm");
  r.deadline_micros = clock_->NowMicros() + 1'000;
  ResponseHandle handle = server->SubmitAsync(std::move(r));
  clock_->AdvanceMicros(1'000'000);
  auto result = handle.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
  auto c = server->counters(QueryClass::kAnalytic);
  EXPECT_EQ(c.cancelled, 1);
  EXPECT_EQ(c.deadline_missed, 1);
}

TEST_F(ServerTest, ExplicitCancelStopsQueuedRequest) {
  auto server = dt_->MakeServer();
  server->Pause();
  ResponseHandle handle = server->SubmitAsync(Interactive(1, CheapSql()));
  handle.Cancel();
  server->Resume();
  auto result = handle.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status();
  // Cancelled before execution: no deadline involved, so not a miss.
  EXPECT_EQ(server->counters(QueryClass::kInteractive).deadline_missed, 0);
}

TEST_F(ServerTest, WaitConsumesResultOnce) {
  auto server = dt_->MakeServer();
  ResponseHandle handle = server->SubmitAsync(Interactive(1, CheapSql()));
  ResponseHandle copy = handle;
  EXPECT_TRUE(handle.Wait().ok());
  auto again = copy.Wait();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), util::StatusCode::kInternal);
}

TEST_F(ServerTest, ServedSessionDegradesGracefullyWhenShed) {
  // A served mobile session against a zero-capacity server: every overlay
  // query is shed, the session still completes, and the report counts the
  // misses.
  ServerOptions options;
  options.admission.interactive_queue_capacity = 0;
  auto server = dt_->MakeServer(options);
  mobile::SessionOptions sopts;
  auto session = dt_->MakeSession(mobile::DeviceProfile::TabletWifi(), sopts,
                                  query::PlannerOptions::Optimized(),
                                  server.get(), /*session_id=*/5);
  mobile::TraceParams tp;
  tp.num_actions = 20;
  tp.p_query = 0.6;  // make sure the trace contains overlay actions
  auto trace = dt_->MakeTrace(tp, 31);
  auto report = session.Run(trace);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->overlay_queries, 0u);
  EXPECT_EQ(report->overlay_shed, report->overlay_queries);
  EXPECT_EQ(report->overlay_deadline_missed, 0u);
}

// ---------------------------------------------------------------------------
// Per-query request tracing
// ---------------------------------------------------------------------------

TEST_F(ServerTest, TraceTimelineIsDeterministicOnVirtualClock) {
  ServerOptions options;
  options.worker_threads = 1;
  options.scheduler.total_slots = 1;
  auto server = dt_->MakeServer(options);
  server->Pause();
  int64_t submit = clock_->NowMicros();
  ResponseHandle handle = server->SubmitAsync(Interactive(1, CheapSql()));
  clock_->AdvanceMicros(25'000);  // queued for exactly 25ms of virtual time
  server->Resume();
  ASSERT_TRUE(handle.Wait().ok());
  server->Drain();

  std::vector<obs::TraceRecord> records = server->trace_store()->Snapshot();
  ASSERT_EQ(records.size(), 1u);
  const obs::TraceRecord& r = records[0];
  EXPECT_EQ(r.begin_micros, submit);
  EXPECT_EQ(r.session_id, 1u);
  EXPECT_EQ(r.query_class, "interactive");
  EXPECT_EQ(r.lane, "slot-0");
  EXPECT_EQ(r.status, "ok");
  EXPECT_TRUE(r.ok);
  // Admission is instantaneous in virtual time; the queue wait is exactly
  // the 25ms spent paused; planning and execution advance no virtual time.
  EXPECT_EQ(r.PhaseMicros(obs::TracePhase::kAdmit), 0);
  EXPECT_EQ(r.PhaseMicros(obs::TracePhase::kQueueWait), 25'000);
  EXPECT_EQ(r.PhaseMicros(obs::TracePhase::kExecute), 0);
  EXPECT_EQ(r.PhaseMicros(obs::TracePhase::kSerialize), 0);
  EXPECT_EQ(r.TotalMicros(), 25'000);
}

TEST_F(ServerTest, SlowQueryLogCapturesTimelineAndAnalyzedPlan) {
  ServerOptions options;
  options.slow_query_micros = 10'000;
  auto server = dt_->MakeServer(options);
  server->Pause();
  ResponseHandle handle = server->SubmitAsync(Interactive(1, CheapSql()));
  clock_->AdvanceMicros(50'000);  // cross the threshold while queued
  server->Resume();
  ASSERT_TRUE(handle.Wait().ok());
  server->Drain();

  EXPECT_EQ(server->trace_store()->slow_count(), 1);
  std::vector<obs::TraceRecord> slow = server->trace_store()->SlowQueries();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_TRUE(slow[0].slow);
  EXPECT_GE(slow[0].TotalMicros(), 10'000);
  EXPECT_EQ(slow[0].PhaseMicros(obs::TracePhase::kQueueWait), 50'000);
  // A configured slow threshold arms EXPLAIN ANALYZE collection, so the
  // offender carries the plan it actually executed.
  ASSERT_FALSE(slow[0].analyzed_plan.empty());
  EXPECT_NE(slow[0].analyzed_plan.find("rows="), std::string::npos);
  EXPECT_NE(slow[0].TimelineString().find("queue_wait"), std::string::npos);
}

TEST_F(ServerTest, SlowQueryEnvOverridesConfiguredThreshold) {
  setenv("DRUGTREE_SLOW_QUERY_MICROS", "123", 1);
  ServerOptions options;
  options.slow_query_micros = 10'000;
  auto server = dt_->MakeServer(options);
  unsetenv("DRUGTREE_SLOW_QUERY_MICROS");
  EXPECT_EQ(server->trace_store()->slow_threshold_micros(), 123);
}

TEST_F(ServerTest, ShedRequestIsTracedWithShedStatus) {
  ServerOptions options;
  options.admission.interactive_queue_capacity = 0;
  auto server = dt_->MakeServer(options);
  auto result = server->Submit(Interactive(1, CheapSql()));
  ASSERT_FALSE(result.ok());
  std::vector<obs::TraceRecord> records = server->trace_store()->Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].status, "shed");
  EXPECT_FALSE(records[0].ok);
}

TEST_F(ServerTest, TracingDisabledRecordsNothing) {
  ServerOptions options;
  options.enable_tracing = false;
  auto server = dt_->MakeServer(options);
  ASSERT_TRUE(server->Submit(Interactive(1, CheapSql())).ok());
  EXPECT_EQ(server->trace_store()->total_recorded(), 0);
}

TEST_F(ServerTest, ConcurrentRequestsEachGetTheirOwnTrace) {
  // Four slots executing in parallel: every request must finish with its
  // own trace identity — no clobbered ids, no cross-request phase bleed.
  // (Runs under TSan in tier-1 to check the capture paths for races.)
  ServerOptions options;
  options.worker_threads = 4;
  options.scheduler.total_slots = 4;
  options.scheduler.interactive_slots = 4;
  options.admission.interactive_queue_capacity = 64;
  auto server = dt_->MakeServer(options);
  std::vector<ResponseHandle> handles;
  for (int i = 0; i < 24; ++i) {
    handles.push_back(server->SubmitAsync(
        Interactive(static_cast<uint64_t>(i) + 1, CheapSql())));
  }
  for (auto& h : handles) EXPECT_TRUE(h.Wait().ok());
  server->Drain();

  std::vector<obs::TraceRecord> records = server->trace_store()->Snapshot();
  ASSERT_EQ(records.size(), 24u);
  std::set<uint64_t> ids;
  std::set<uint64_t> sessions;
  for (const auto& r : records) {
    ids.insert(r.trace_id);
    sessions.insert(r.session_id);
    EXPECT_EQ(r.status, "ok");
    EXPECT_EQ(r.query_class, "interactive");
  }
  EXPECT_EQ(ids.size(), 24u);
  EXPECT_EQ(sessions.size(), 24u);
}

TEST_F(ServerTest, TailAttributionReportCoversServedClasses) {
  auto server = dt_->MakeServer();
  server->Pause();
  std::vector<ResponseHandle> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(server->SubmitAsync(Interactive(1, CheapSql())));
  }
  handles.push_back(server->SubmitAsync(Analytic(2, CheapSql())));
  clock_->AdvanceMicros(5'000);
  server->Resume();
  for (auto& h : handles) EXPECT_TRUE(h.Wait().ok());
  server->Drain();

  std::string report = server->TailAttributionReport();
  EXPECT_NE(report.find("interactive"), std::string::npos);
  EXPECT_NE(report.find("analytic"), std::string::npos);
  EXPECT_NE(report.find("queue_wait"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Resource accounting: per-query limits, memory-pressure admission, SLOs
// ---------------------------------------------------------------------------

TEST_F(ServerTest, QueryOverHardLimitAbortsCleanlyAndServerSurvives) {
  ServerOptions options;
  options.query_memory_bytes = 4 * 1024;  // far below the sort's state
  auto server = dt_->MakeServer(options);

  // The full-table sort materializes every activity row into tracked
  // operator state, blowing the 4 KiB per-query budget.
  auto result = server->Submit(
      Analytic(1, "SELECT * FROM activities ORDER BY affinity_nm"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted()) << result.status();

  // The abort is per-query, not per-server: a small query still runs, and
  // the aborted query's charges were fully unwound. Only the standing
  // resident-table charge remains.
  auto small = server->Submit(Interactive(2, "SELECT COUNT(*) FROM proteins"));
  EXPECT_TRUE(small.ok()) << small.status();
  server->Drain();
  EXPECT_EQ(server->memory_tracker()->used(), server->resident_table_bytes());

  auto c = server->counters(QueryClass::kAnalytic);
  EXPECT_EQ(c.failed, 1);
  EXPECT_EQ(c.memory_aborted, 1);
  EXPECT_EQ(c.shed, 0);

  // The trace names the abort cause and carries the peak the query reached.
  std::vector<obs::TraceRecord> records = server->trace_store()->Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].status, "resource_exhausted");
  EXPECT_FALSE(records[0].ok);
  // The failed charge is rolled back, so the recorded peak only covers
  // bytes that actually resided — never more than the budget.
  EXPECT_LE(records[0].peak_memory_bytes,
            static_cast<int64_t>(options.query_memory_bytes));
  EXPECT_EQ(records[1].status, "ok");
}

TEST_F(ServerTest, MemoryPressureShedsAnalyticKeepsInteractive) {
  auto server = dt_->MakeServer();
  obs::MemoryTracker* root = server->memory_tracker();
  const int64_t soft = root->soft_limit_bytes();
  ASSERT_GT(soft, 0);
  {
    // Stage deterministic pressure: park the root just over its high
    // watermark without touching execution timing.
    obs::ScopedMemoryCharge pressure(root, soft + 1024);
    ASSERT_TRUE(root->OverSoftLimit());

    // Analytic work is shed at admission with a caller-visible status...
    auto analytic = server->Submit(Analytic(1, CheapSql()));
    ASSERT_FALSE(analytic.ok());
    EXPECT_TRUE(analytic.status().IsResourceExhausted()) << analytic.status();

    // ...while interactive traffic keeps the reserved floor.
    auto interactive = server->Submit(Interactive(2, CheapSql()));
    EXPECT_TRUE(interactive.ok()) << interactive.status();
  }
  server->Drain();

  auto ca = server->counters(QueryClass::kAnalytic);
  EXPECT_EQ(ca.memory_shed, 1);
  EXPECT_EQ(ca.shed, 1);
  EXPECT_EQ(ca.admitted, 0);
  auto ci = server->counters(QueryClass::kInteractive);
  EXPECT_EQ(ci.memory_shed, 0);
  EXPECT_EQ(ci.completed, 1);

  // A memory shed is a bad SLO outcome and is traced distinctly from a
  // queue-capacity shed.
  EXPECT_EQ(server->slo_tracker(QueryClass::kAnalytic)->GetSnapshot().bad, 1);
  bool saw_memory_shed = false;
  for (const auto& r : server->trace_store()->Snapshot()) {
    if (r.status == "shed_memory") saw_memory_shed = true;
  }
  EXPECT_TRUE(saw_memory_shed);

  // Pressure released: analytic admits again.
  EXPECT_FALSE(root->OverSoftLimit());
  EXPECT_TRUE(server->Submit(Analytic(3, CheapSql())).ok());
}

TEST_F(ServerTest, WatermarkShedPointMovesWithCompressedTables) {
  // The server charges resident table bytes against its root at
  // construction, and encoded tables charge their compressed footprint —
  // so compressing the catalog physically widens the headroom below the
  // 80% watermark. Pin that: a staged charge sized between the two
  // footprints' headrooms pushes the PLAIN server over the watermark while
  // the ENCODED server still admits analytic work.
  ASSERT_TRUE(dt_->BuildEncodedSegments().ok());
  auto encoded_server = dt_->MakeServer();
  const int64_t b_enc = encoded_server->resident_table_bytes();

  dt_->DropEncodedSegments();
  auto plain_server = dt_->MakeServer();
  const int64_t b_plain = plain_server->resident_table_bytes();
  ASSERT_TRUE(dt_->BuildEncodedSegments().ok());  // restore for later tests

  ASSERT_GT(b_plain, 0);
  ASSERT_LT(b_enc, b_plain / 2)
      << "encoded=" << b_enc << " plain=" << b_plain
      << ": corpus should compress at least 2x";

  const int64_t soft = plain_server->memory_tracker()->soft_limit_bytes();
  ASSERT_EQ(soft, encoded_server->memory_tracker()->soft_limit_bytes());
  // Midpoint between the two shed points.
  const int64_t staged = soft - (b_plain + b_enc) / 2;
  ASSERT_GT(staged, 0);
  {
    obs::ScopedMemoryCharge p1(plain_server->memory_tracker(), staged);
    obs::ScopedMemoryCharge p2(encoded_server->memory_tracker(), staged);
    EXPECT_TRUE(plain_server->memory_tracker()->OverSoftLimit());
    EXPECT_FALSE(encoded_server->memory_tracker()->OverSoftLimit());

    auto shed = plain_server->Submit(Analytic(1, CheapSql()));
    ASSERT_FALSE(shed.ok());
    EXPECT_TRUE(shed.status().IsResourceExhausted()) << shed.status();

    auto admitted = encoded_server->Submit(Analytic(1, CheapSql()));
    EXPECT_TRUE(admitted.ok()) << admitted.status();
  }
  plain_server->Drain();
  encoded_server->Drain();
  EXPECT_EQ(plain_server->counters(QueryClass::kAnalytic).memory_shed, 1);
  EXPECT_EQ(encoded_server->counters(QueryClass::kAnalytic).memory_shed, 0);
}

TEST_F(ServerTest, PeakMemoryAndSloNumbersAreDeterministicOnVirtualClock) {
  struct RunResult {
    std::vector<int64_t> peaks;  // by trace_id
    obs::SloTracker::Snapshot interactive;
    obs::SloTracker::Snapshot analytic;
  };
  auto run_once = [&]() {
    ServerOptions options;
    options.worker_threads = 1;
    options.scheduler.total_slots = 1;
    auto server = dt_->MakeServer(options);
    server->Pause();
    std::vector<ResponseHandle> handles;
    for (int i = 0; i < 3; ++i) {
      handles.push_back(server->SubmitAsync(
          Interactive(10 + static_cast<uint64_t>(i), CheapSql())));
    }
    handles.push_back(server->SubmitAsync(
        Analytic(20, "SELECT * FROM activities ORDER BY affinity_nm")));
    handles.push_back(server->SubmitAsync(Analytic(
        21,
        "SELECT p.accession, COUNT(*) FROM proteins p, activities a "
        "WHERE p.accession = a.accession GROUP BY p.accession")));
    clock_->AdvanceMicros(10'000);
    server->Resume();
    for (auto& h : handles) EXPECT_TRUE(h.Wait().ok());
    server->Drain();

    RunResult out;
    std::vector<obs::TraceRecord> records = server->trace_store()->Snapshot();
    std::sort(records.begin(), records.end(),
              [](const obs::TraceRecord& a, const obs::TraceRecord& b) {
                return a.trace_id < b.trace_id;
              });
    for (const auto& r : records) out.peaks.push_back(r.peak_memory_bytes);
    out.interactive =
        server->slo_tracker(QueryClass::kInteractive)->GetSnapshot();
    out.analytic = server->slo_tracker(QueryClass::kAnalytic)->GetSnapshot();
    return out;
  };

  RunResult first = run_once();
  RunResult second = run_once();

  // Tracked memory is charged from row sizes and operator state — virtual
  // quantities — so identical workloads must produce bit-identical peaks.
  ASSERT_EQ(first.peaks.size(), 5u);
  EXPECT_EQ(first.peaks, second.peaks);
  int64_t max_peak = *std::max_element(first.peaks.begin(), first.peaks.end());
  EXPECT_GT(max_peak, 0);

  // Same for the SLO arithmetic (EXPECT_EQ on doubles: exact equality).
  EXPECT_EQ(first.interactive.window_total, 3);
  EXPECT_EQ(first.analytic.window_total, 2);
  EXPECT_EQ(first.interactive.window_good, second.interactive.window_good);
  EXPECT_EQ(first.interactive.compliance, second.interactive.compliance);
  EXPECT_EQ(first.interactive.burn_rate, second.interactive.burn_rate);
  EXPECT_EQ(first.analytic.window_good, second.analytic.window_good);
  EXPECT_EQ(first.analytic.compliance, second.analytic.compliance);
  EXPECT_EQ(first.analytic.burn_rate, second.analytic.burn_rate);
}

TEST_F(ServerTest, StatuszExposesTrackersSlosAndOccupancy) {
  auto server = dt_->MakeServer();
  ASSERT_TRUE(server->Submit(Interactive(1, CheapSql())).ok());
  server->Drain();
  std::string json = server->Statusz();
  for (const char* key :
       {"\"memory\"", "\"slo\"", "\"admission\"", "\"scheduler\"",
        "\"classes\"", "\"trace_store\"", "\"name\":\"server\"",
        "\"interactive\"", "\"analytic\"", "\"burn_rate\"",
        "\"total_slots\"", "\"recorded\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

}  // namespace
}  // namespace server
}  // namespace drugtree
