// Adaptive-planning tests: literal normalization agrees across the result
// and plan caches, the parameterized plan cache hits / re-binds / re-plans
// soundly, version bumps (mutations, Analyze, encoded builds/drops)
// invalidate templates, the cost calibrator seeds, clamps, and stays put on
// a virtual clock, the adaptive controller walks analytic knobs with
// hysteresis, and the full corpus stays bit-identical with every adaptive
// feature armed — across batch sizes, parallelism, concurrent serving, and
// sharded topologies.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/drugtree.h"
#include "obs/cost_calibrator.h"
#include "obs/explain.h"
#include "query/normalize.h"
#include "query/parser.h"
#include "query/plan_cache.h"
#include "query/planner.h"
#include "query/result_cache.h"
#include "server/adaptive.h"
#include "server/server.h"
#include "shard/router.h"
#include "storage/value.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace drugtree {
namespace query {
namespace {

using storage::Value;

class AdaptiveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    clock_ = new util::SimulatedClock();
    core::BuildOptions options;
    options.seed = 99;
    options.num_families = 3;
    options.taxa_per_family = 10;
    options.sequence_length = 90;
    options.num_ligands = 120;
    auto built = core::DrugTree::Build(options, clock_);
    ASSERT_TRUE(built.ok()) << built.status();
    dt_ = built->release();
  }
  static void TearDownTestSuite() {
    delete dt_;
    dt_ = nullptr;
    delete clock_;
    clock_ = nullptr;
  }

  /// Read-only corpus (shared instance; mutation tests build their own).
  static std::vector<std::string> Corpus() {
    return {
        dt_->OverlayQuerySql(dt_->tree().root()),
        "SELECT accession, family FROM proteins ORDER BY accession",
        "SELECT COUNT(*), AVG(a.affinity_nm) FROM activities a",
        "SELECT p.accession, a.affinity_nm FROM proteins p, activities a "
        "WHERE p.accession = a.accession AND a.affinity_nm < 50.0 "
        "ORDER BY a.affinity_nm LIMIT 20",
        "SELECT p.family, COUNT(*) FROM proteins p, activities a "
        "WHERE p.accession = a.accession GROUP BY p.family "
        "ORDER BY p.family",
    };
  }

  static void ExpectSameRows(const QueryResult& expect,
                             const QueryResult& got,
                             const std::string& context) {
    EXPECT_EQ(expect.columns, got.columns) << context;
    ASSERT_EQ(expect.rows.size(), got.rows.size()) << context;
    for (size_t i = 0; i < expect.rows.size(); ++i) {
      EXPECT_EQ(expect.rows[i], got.rows[i]) << context << " row " << i;
    }
  }

  static util::SimulatedClock* clock_;
  static core::DrugTree* dt_;
};

util::SimulatedClock* AdaptiveTest::clock_ = nullptr;
core::DrugTree* AdaptiveTest::dt_ = nullptr;

// ---------------------------------------------------------------------------
// Normalization: one traversal feeds both cache keys.

TEST_F(AdaptiveTest, NormalizationAgreesAcrossEquivalentStatements) {
  auto s1 = ParseQuery(
      "SELECT accession FROM activities WHERE affinity_nm < 50.0");
  auto s2 = ParseQuery(
      "select   accession  from activities  where affinity_nm < 50.0");
  auto s3 = ParseQuery(
      "SELECT accession FROM activities WHERE affinity_nm < 75.0");
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  NormalizedStatement n1 = NormalizeStatement(&*s1);
  NormalizedStatement n2 = NormalizeStatement(&*s2);
  NormalizedStatement n3 = NormalizeStatement(&*s3);

  // Case/whitespace variants collapse to one canonical text and therefore
  // one result-cache key.
  EXPECT_EQ(n1.canonical, n2.canonical);
  EXPECT_EQ(ResultCache::MakeKey(n1.canonical, 7),
            ResultCache::MakeKey(n2.canonical, 7));
  // The canonical text is exactly the statement rendering the result cache
  // has always keyed on.
  EXPECT_EQ(n1.canonical, s1->ToString());

  // Literal variants: same structural fingerprint, different canonical,
  // parameters extracted in order.
  EXPECT_EQ(n1.fingerprint, n3.fingerprint);
  EXPECT_NE(n1.canonical, n3.canonical);
  EXPECT_NE(ResultCache::MakeKey(n1.canonical, 7),
            ResultCache::MakeKey(n3.canonical, 7));
  ASSERT_EQ(n1.params.size(), 1u);
  ASSERT_EQ(n3.params.size(), 1u);
  EXPECT_EQ(n1.params[0], Value::Double(50.0));
  EXPECT_EQ(n3.params[0], Value::Double(75.0));
  // Placeholders are visible in the fingerprint, and the literal is not.
  EXPECT_NE(n1.fingerprint.find("?0"), std::string::npos);
  EXPECT_EQ(n1.fingerprint.find("50"), std::string::npos);
}

TEST_F(AdaptiveTest, NormalizationOrdinalsFollowToStringOrder) {
  auto s = ParseQuery(
      "SELECT accession FROM activities "
      "WHERE affinity_nm > 10.0 AND affinity_nm < 90.0 LIMIT 5");
  ASSERT_TRUE(s.ok());
  NormalizedStatement n = NormalizeStatement(&*s);
  ASSERT_EQ(n.params.size(), 2u);
  EXPECT_EQ(n.params[0], Value::Double(10.0));
  EXPECT_EQ(n.params[1], Value::Double(90.0));
  // LIMIT is not an expression and stays verbatim in the fingerprint: a
  // different LIMIT is a different plan shape.
  EXPECT_NE(n.fingerprint.find("LIMIT 5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Plan cache: hit, re-bind, EXPLAIN surfacing, non-rebindable templates.

TEST_F(AdaptiveTest, PlanCacheHitsAndRebindsWithIdenticalResults) {
  PlanCache cache;
  Planner cached(dt_->catalog(), nullptr, &cache);
  Planner plain(dt_->catalog());
  PlannerOptions opts;
  const std::string q50 =
      "SELECT accession FROM activities WHERE affinity_nm < 50.0 "
      "ORDER BY accession";
  const std::string q75 =
      "SELECT accession FROM activities WHERE affinity_nm < 75.0 "
      "ORDER BY accession";

  auto first = cached.Run(q50, opts);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->from_plan_cache);
  EXPECT_EQ(cache.stats().installs, 1);
  EXPECT_EQ(cache.stats().misses, 1);

  // Same statement: verbatim template reuse.
  auto again = cached.Run(q50, opts);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->from_plan_cache);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().rebinds, 0);
  ExpectSameRows(first->result, again->result, "verbatim hit");

  // Different literal: the template re-binds, results match a fresh plan.
  auto rebound = cached.Run(q75, opts);
  ASSERT_TRUE(rebound.ok());
  EXPECT_TRUE(rebound->from_plan_cache);
  EXPECT_EQ(cache.stats().hits, 2);
  EXPECT_EQ(cache.stats().rebinds, 1);
  auto reference = plain.Run(q75, opts);
  ASSERT_TRUE(reference.ok());
  ExpectSameRows(reference->result, rebound->result, "rebound");
  EXPECT_GT(rebound->result.rows.size(), first->result.rows.size());

  // EXPLAIN surfaces the cache decision.
  auto explained = cached.Run("EXPLAIN " + q75, opts);
  ASSERT_TRUE(explained.ok());
  EXPECT_EQ(explained->physical_plan.rfind("plan: cached\n", 0), 0u)
      << explained->physical_plan;
  auto fresh_explained = plain.Run("EXPLAIN " + q75, opts);
  ASSERT_TRUE(fresh_explained.ok());
  EXPECT_EQ(fresh_explained->physical_plan.rfind("plan: cached", 0),
            std::string::npos);
}

TEST_F(AdaptiveTest, ConsumedLiteralsMakeTemplatesNonRebindable) {
  // The tree-predicate rewrite resolves SUBTREE's node literal into
  // interval constants at plan time, so the overlay template must NOT be
  // re-bound to a different node — the cache re-plans instead.
  PlanCache cache;
  Planner cached(dt_->catalog(), nullptr, &cache);
  Planner plain(dt_->catalog());
  PlannerOptions opts;
  phylo::NodeId root = dt_->tree().root();
  phylo::NodeId inner = dt_->tree().node(root).children.front();
  const std::string q_root = dt_->OverlayQuerySql(root);
  const std::string q_inner = dt_->OverlayQuerySql(inner);
  ASSERT_NE(q_root, q_inner);

  auto first = cached.Run(q_root, opts);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->from_plan_cache);

  // Same shape, different node: a structural hit the cache must refuse.
  auto other = cached.Run(q_inner, opts);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->from_plan_cache);
  EXPECT_EQ(cache.stats().rebinds, 0);
  auto reference = plain.Run(q_inner, opts);
  ASSERT_TRUE(reference.ok());
  ExpectSameRows(reference->result, other->result, "non-rebindable re-plan");

  // Identical parameters still reuse the (now reinstalled) template.
  auto again = cached.Run(q_inner, opts);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->from_plan_cache);
  ExpectSameRows(reference->result, again->result, "identical-param hit");
}

TEST_F(AdaptiveTest, PlanCacheInvalidationEdges) {
  util::SimulatedClock clock;
  core::BuildOptions bo;
  bo.seed = 7;
  bo.num_families = 2;
  bo.taxa_per_family = 6;
  bo.sequence_length = 60;
  bo.num_ligands = 40;
  auto built = core::DrugTree::Build(bo, &clock);
  ASSERT_TRUE(built.ok()) << built.status();
  auto dt = std::move(*built);

  PlanCache cache;
  Planner planner(dt->catalog(), nullptr, &cache);
  PlannerOptions opts;
  const std::string q =
      "SELECT COUNT(*) FROM activities WHERE affinity_nm < 100000.0";
  auto run = [&]() {
    auto r = planner.Run(q, opts);
    EXPECT_TRUE(r.ok()) << r.status();
    return *std::move(r);
  };

  QueryOutcome base = run();
  EXPECT_FALSE(base.from_plan_cache);
  ASSERT_EQ(base.result.rows.size(), 1u);
  int64_t count0 = base.result.rows[0][0].AsInt64();
  EXPECT_TRUE(run().from_plan_cache);
  EXPECT_EQ(cache.stats().invalidations, 0);

  // Analyze() refreshes the statistics the cached plan was priced with.
  auto activities = dt->catalog()->Lookup("activities");
  ASSERT_TRUE(activities.ok());
  ASSERT_TRUE((*activities)->Analyze().ok());
  EXPECT_FALSE(run().from_plan_cache);
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_TRUE(run().from_plan_cache);

  // Building encoded segments changes the priced access paths.
  ASSERT_TRUE(dt->BuildEncodedSegments().ok());
  EXPECT_FALSE(run().from_plan_cache);
  EXPECT_EQ(cache.stats().invalidations, 2);
  EXPECT_TRUE(run().from_plan_cache);

  // Dropping them changes the paths back.
  dt->DropEncodedSegments();
  EXPECT_FALSE(run().from_plan_cache);
  EXPECT_EQ(cache.stats().invalidations, 3);
  EXPECT_TRUE(run().from_plan_cache);

  // An overlay mutation (row insert + epoch bump) must both evict the
  // template and surface the new row — stale template, never stale data.
  auto seed_row =
      dt->Query("SELECT accession, ligand_id FROM activities LIMIT 1");
  ASSERT_TRUE(seed_row.ok());
  ASSERT_EQ(seed_row->result.rows.size(), 1u);
  ASSERT_TRUE(dt->AddActivity(seed_row->result.rows[0][0].AsString(),
                              seed_row->result.rows[0][1].AsString(), 12.5)
                  .ok());
  QueryOutcome after = run();
  EXPECT_FALSE(after.from_plan_cache);
  EXPECT_EQ(cache.stats().invalidations, 4);
  EXPECT_EQ(after.result.rows[0][0].AsInt64(), count0 + 1);
}

// ---------------------------------------------------------------------------
// Cost calibrator: seeding, clamping, versioning, virtual-clock no-op.

obs::ExplainNode MakeNode(std::string label, int64_t rows, int64_t micros) {
  obs::ExplainNode n;
  n.label = std::move(label);
  n.rows_out = rows;
  n.elapsed_micros = micros;
  return n;
}

TEST(CostCalibratorTest, VirtualClockObservationsAreNoOps) {
  obs::CostCalibrator cal;
  // elapsed_micros == 0 is exactly what a SimulatedClock produces.
  cal.Observe(MakeNode("SeqScan proteins", 100, 0));
  cal.Observe(MakeNode("HashJoin [x = y]", 0, 500));  // zero rows: unusable
  EXPECT_EQ(cal.observations(), 0);
  EXPECT_EQ(cal.effective_updates(), 0);
  obs::CalibratedCosts defaults;
  obs::CalibratedCosts got = cal.snapshot();
  EXPECT_EQ(got.version, 0u);
  EXPECT_EQ(got.hash_probe_row, defaults.hash_probe_row);
  EXPECT_EQ(got.nested_loop_row, defaults.nested_loop_row);
}

TEST(CostCalibratorTest, SeqScanSeedsTheUnitAndCoefficientsClamp) {
  obs::CostCalibrator cal;
  // 1000 rows in 2000us: the sequential-scan unit is 2us/row. Alone it
  // changes nothing (every coefficient is relative to it).
  cal.Observe(MakeNode("SeqScan proteins AS p", 1000, 2000));
  EXPECT_EQ(cal.observations(), 1);
  EXPECT_EQ(cal.snapshot().version, 0u);

  // Hash join at 20us/row = 10 units/row, clamped to 4x the 1.0 default.
  obs::ExplainNode join =
      MakeNode("HashJoin [p.accession = a.accession]", 100, 6000);
  join.children.push_back(MakeNode("SeqScan proteins AS p", 1000, 2000));
  join.children.push_back(MakeNode("SeqScan activities AS a", 1000, 2000));
  cal.Observe(join);
  obs::CalibratedCosts got = cal.snapshot();
  EXPECT_DOUBLE_EQ(got.hash_probe_row, 4.0);
  EXPECT_EQ(got.version, 1u);
  EXPECT_EQ(cal.effective_updates(), 1);

  // Absurdly fast nested loop (0.001us/row) clamps at default / 4.
  obs::ExplainNode nl = MakeNode("NestedLoopJoin", 1000, 2001);
  nl.children.push_back(MakeNode("SeqScan proteins AS p", 1000, 2000));
  cal.Observe(nl);
  got = cal.snapshot();
  EXPECT_DOUBLE_EQ(got.nested_loop_row, 0.6 / 4.0);
  EXPECT_EQ(got.version, 2u);

  // Defaults a calibrator never touches stay put.
  obs::CalibratedCosts defaults;
  EXPECT_EQ(got.seq_scan_row, defaults.seq_scan_row);
  EXPECT_EQ(got.cross_product_penalty, defaults.cross_product_penalty);
  EXPECT_EQ(got.subtree_selectivity, defaults.subtree_selectivity);
}

TEST(CostCalibratorTest, EncodedScansCalibrateTheDiscount) {
  obs::CostCalibrator cal;
  cal.Observe(MakeNode("SeqScan proteins AS p", 1000, 2000));
  // Encoded scan at half the plain per-row cost -> discount 0.5.
  cal.Observe(
      MakeNode("SeqScan proteins AS p [encoded: dict(family)]", 1000, 1000));
  EXPECT_DOUBLE_EQ(cal.snapshot().encoded_scan_discount, 0.5);
}

// ---------------------------------------------------------------------------
// Adaptive controller: hysteresis walk of the analytic knobs.

TEST(AdaptiveControllerTest, HysteresisWalksAnalyticKnobs) {
  server::AdaptiveOptions o;
  o.enabled = true;
  o.window = 4;
  o.target_micros = 2000;
  o.hysteresis = 2;
  server::AdaptiveController c(o);

  // Analytic starts wide; interactive knobs are fixed.
  EXPECT_EQ(c.knobs(server::QueryClass::kAnalytic).parallelism, 4);
  EXPECT_EQ(c.knobs(server::QueryClass::kAnalytic).batch_size, 4096u);
  EXPECT_EQ(c.knobs(server::QueryClass::kInteractive).parallelism, 1);

  auto feed = [&](int n, int64_t micros) {
    for (int i = 0; i < n; ++i) {
      c.Record(server::QueryClass::kInteractive, micros);
    }
  };

  // Analytic completions are not a control signal.
  for (int i = 0; i < 32; ++i) {
    c.Record(server::QueryClass::kAnalytic, 1'000'000);
  }
  EXPECT_EQ(c.decisions(), 0);

  // Two pressured windows step analytic down twice.
  feed(4, 5000);
  EXPECT_EQ(c.knobs(server::QueryClass::kAnalytic).parallelism, 3);
  EXPECT_EQ(c.knobs(server::QueryClass::kAnalytic).batch_size, 2048u);
  feed(4, 5000);
  EXPECT_EQ(c.knobs(server::QueryClass::kAnalytic).parallelism, 2);
  EXPECT_EQ(c.steps_down(), 2);

  // One comfortable window is noise: hysteresis holds.
  feed(4, 100);
  EXPECT_EQ(c.knobs(server::QueryClass::kAnalytic).parallelism, 2);
  // An in-band window resets the streak.
  feed(4, 1500);
  feed(4, 100);
  EXPECT_EQ(c.knobs(server::QueryClass::kAnalytic).parallelism, 2);
  // The second consecutive comfortable window steps back up.
  feed(4, 100);
  EXPECT_EQ(c.knobs(server::QueryClass::kAnalytic).parallelism, 3);
  EXPECT_EQ(c.steps_up(), 1);

  // Interactive knobs never moved.
  EXPECT_EQ(c.knobs(server::QueryClass::kInteractive).parallelism, 1);
  EXPECT_EQ(c.knobs(server::QueryClass::kInteractive).batch_size, 1024u);
}

TEST(AdaptiveControllerTest, DisabledControllerIgnoresRecords) {
  server::AdaptiveController c{server::AdaptiveOptions()};
  for (int i = 0; i < 256; ++i) {
    c.Record(server::QueryClass::kInteractive, 1'000'000);
  }
  EXPECT_EQ(c.decisions(), 0);
  EXPECT_EQ(c.knobs(server::QueryClass::kAnalytic).parallelism, 4);
}

// ---------------------------------------------------------------------------
// Invariance: cache + calibration on vs off, across execution knobs.

TEST_F(AdaptiveTest, CorpusBitIdenticalWithCacheAndCalibrationArmed) {
  PlanCache cache;
  obs::CostCalibrator calibrator;
  Planner armed(dt_->catalog(), nullptr, &cache, &calibrator);
  Planner plain(dt_->catalog());
  for (const std::string& sql : Corpus()) {
    PlannerOptions ref_opts;
    auto reference = plain.Run(sql, ref_opts);
    ASSERT_TRUE(reference.ok()) << sql << ": " << reference.status();
    // Feed the calibrator real observations first (the analyze clock is the
    // tracer's, i.e. real time), so later plans run with moved coefficients.
    auto analyzed = armed.Run("EXPLAIN ANALYZE " + sql, ref_opts);
    ASSERT_TRUE(analyzed.ok()) << sql << ": " << analyzed.status();
    ExpectSameRows(reference->result, analyzed->result, "analyze " + sql);
    for (size_t batch : {size_t{1}, size_t{1024}}) {
      for (int par : {1, 4}) {
        PlannerOptions opts;
        opts.batch_size = batch;
        opts.parallelism = par;
        for (int round = 0; round < 2; ++round) {  // miss, then hit
          auto got = armed.Run(sql, opts);
          ASSERT_TRUE(got.ok()) << sql << ": " << got.status();
          ExpectSameRows(
              reference->result, got->result,
              sql + util::StringPrintf(" [batch=%zu par=%d round=%d]", batch,
                                       par, round));
        }
      }
    }
  }
  EXPECT_GT(cache.stats().hits, 0);
  EXPECT_GT(calibrator.observations(), 0);
}

// ---------------------------------------------------------------------------
// Serving layer: concurrent submissions with every feature armed (TSan
// exercises PlanCache / CostCalibrator / AdaptiveController sharing), and
// Statusz surfacing.

TEST_F(AdaptiveTest, ConcurrentServingWithAllAdaptiveFeaturesArmed) {
  server::ServerOptions options;
  options.worker_threads = 4;
  options.scheduler.total_slots = 4;
  options.scheduler.interactive_slots = 4;
  options.admission.interactive_queue_capacity = 64;
  options.admission.analytic_queue_capacity = 64;
  options.slow_query_micros = 1;  // collect analyze -> calibrator observes
  options.adaptive.enabled = true;
  options.adaptive.window = 4;
  auto server = dt_->MakeServer(options);

  const std::string interactive_sql = dt_->OverlayQuerySql(dt_->tree().root());
  auto reference_interactive = dt_->Query(interactive_sql);
  ASSERT_TRUE(reference_interactive.ok());

  std::vector<std::string> analytic_sqls;
  std::vector<query::QueryResult> analytic_refs;
  for (int i = 0; i < 4; ++i) {
    analytic_sqls.push_back(util::StringPrintf(
        "SELECT accession FROM activities WHERE affinity_nm < %d.0 "
        "ORDER BY accession",
        100 + 50 * i));
    auto ref = dt_->Query(analytic_sqls.back());
    ASSERT_TRUE(ref.ok());
    analytic_refs.push_back(ref->result);
  }

  std::vector<server::ResponseHandle> handles;
  std::vector<int> expected;  // -1 = interactive, else analytic index
  for (int i = 0; i < 24; ++i) {
    server::QueryRequest r;
    r.session_id = static_cast<uint64_t>(i);
    if (i % 2 == 0) {
      r.sql = interactive_sql;
      r.query_class = server::QueryClass::kInteractive;
      expected.push_back(-1);
    } else {
      r.sql = analytic_sqls[static_cast<size_t>(i / 2) % analytic_sqls.size()];
      r.query_class = server::QueryClass::kAnalytic;
      expected.push_back(static_cast<int>((i / 2) % analytic_sqls.size()));
    }
    handles.push_back(server->SubmitAsync(std::move(r)));
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    auto r = handles[i].Wait();
    ASSERT_TRUE(r.ok()) << "request " << i << ": " << r.status();
    const query::QueryResult& want =
        expected[i] < 0 ? reference_interactive->result
                        : analytic_refs[static_cast<size_t>(expected[i])];
    ExpectSameRows(want, r->result,
                   util::StringPrintf("request %zu", i));
  }
  server->Drain();

  // Repeated shapes hit the shared plan cache.
  PlanCache::Stats stats = server->plan_cache()->stats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.installs, 0);

  // Statusz surfaces all three adaptive blocks.
  std::string statusz = server->Statusz();
  EXPECT_NE(statusz.find("\"plan_cache\":{"), std::string::npos);
  EXPECT_NE(statusz.find("\"cost_calibrator\":{"), std::string::npos);
  EXPECT_NE(statusz.find("\"adaptive\":{"), std::string::npos);
}

TEST_F(AdaptiveTest, DisablingPlanCacheAndCalibrationMatchesEnabled) {
  server::ServerOptions off;
  off.enable_plan_cache = false;
  off.enable_cost_calibration = false;
  auto server_off = dt_->MakeServer(off);
  auto server_on = dt_->MakeServer();
  for (const std::string& sql : Corpus()) {
    for (int round = 0; round < 2; ++round) {
      server::QueryRequest a;
      a.session_id = 1;
      a.sql = sql;
      server::QueryRequest b = a;
      auto ra = server_off->Submit(std::move(a));
      auto rb = server_on->Submit(std::move(b));
      ASSERT_TRUE(ra.ok()) << sql << ": " << ra.status();
      ASSERT_TRUE(rb.ok()) << sql << ": " << rb.status();
      ExpectSameRows(ra->result, rb->result, sql);
    }
  }
  EXPECT_EQ(server_off->plan_cache()->stats().installs, 0);
  EXPECT_GT(server_on->plan_cache()->stats().hits, 0);
}

// ---------------------------------------------------------------------------
// Sharded topologies: plan caches live in every replica and the
// coordinator; results stay row-for-row identical to the single node.

TEST_F(AdaptiveTest, ShardedTopologiesBitIdenticalWithCachesOn) {
  for (int shards : {2, 4}) {
    for (int replicas : {1, 2}) {
      shard::RouterOptions ro;
      ro.num_shards = shards;
      ro.replicas_per_shard = replicas;
      auto router = dt_->MakeShardRouter(ro);
      ASSERT_TRUE(router.ok()) << router.status();
      for (const std::string& sql : Corpus()) {
        auto reference = dt_->Query(sql);
        ASSERT_TRUE(reference.ok()) << sql;
        for (int round = 0; round < 2; ++round) {  // second round hits caches
          server::QueryRequest r;
          r.session_id = 1;
          r.sql = sql;
          auto got = (*router)->Submit(std::move(r));
          ASSERT_TRUE(got.ok())
              << "N=" << shards << " R=" << replicas << " " << sql << ": "
              << got.status();
          ExpectSameRows(reference->result, got->result,
                         util::StringPrintf("N=%d R=%d round=%d %s", shards,
                                            replicas, round, sql.c_str()));
        }
      }
    }
  }
}

}  // namespace
}  // namespace query
}  // namespace drugtree
