#include "chem/smiles.h"

#include <gtest/gtest.h>

#include "chem/properties.h"
#include "chem/synthetic_ligands.h"
#include "util/rng.h"

namespace drugtree {
namespace chem {
namespace {

TEST(SmilesParseTest, Ethanol) {
  auto m = ParseSmiles("CCO");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_atoms(), 3);
  EXPECT_EQ(m->num_bonds(), 2);
  EXPECT_EQ(m->atom(2).element, Element::kOxygen);
}

TEST(SmilesParseTest, Benzene) {
  auto m = ParseSmiles("c1ccccc1");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_atoms(), 6);
  EXPECT_EQ(m->num_bonds(), 6);
  EXPECT_EQ(m->RingCount(), 1);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(m->atom(i).aromatic);
    EXPECT_EQ(m->HydrogenCount(i), 1);
  }
  // Ring closure between aromatic atoms is aromatic.
  const Bond* closure = m->FindBond(0, 5);
  ASSERT_NE(closure, nullptr);
  EXPECT_EQ(closure->order, BondOrder::kAromatic);
}

TEST(SmilesParseTest, BranchesAndDoubleBonds) {
  // Acetic acid CC(=O)O.
  auto m = ParseSmiles("CC(=O)O");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_atoms(), 4);
  const Bond* co = m->FindBond(1, 2);
  ASSERT_NE(co, nullptr);
  EXPECT_EQ(co->order, BondOrder::kDouble);
  EXPECT_EQ(m->FindBond(1, 3)->order, BondOrder::kSingle);
}

TEST(SmilesParseTest, Aspirin) {
  auto m = ParseSmiles("CC(=O)Oc1ccccc1C(=O)O");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_atoms(), 13);
  EXPECT_EQ(m->RingCount(), 1);
  EXPECT_TRUE(m->IsConnected());
  auto props = ComputeProperties(*m);
  EXPECT_NEAR(props.molecular_weight, 180.16, 1.0);
}

TEST(SmilesParseTest, Caffeine) {
  auto m = ParseSmiles("Cn1cnc2c1c(=O)n(C)c(=O)n2C");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_atoms(), 14);
  EXPECT_EQ(m->RingCount(), 2);
  auto props = ComputeProperties(*m);
  EXPECT_NEAR(props.molecular_weight, 194.19, 2.5);
}

TEST(SmilesParseTest, TwoLetterElements) {
  auto m = ParseSmiles("ClCBr");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->atom(0).element, Element::kChlorine);
  EXPECT_EQ(m->atom(1).element, Element::kCarbon);
  EXPECT_EQ(m->atom(2).element, Element::kBromine);
}

TEST(SmilesParseTest, BracketAtomsChargeAndH) {
  auto m = ParseSmiles("C[N+](C)(C)C");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->atom(1).charge, 1);
  auto m2 = ParseSmiles("[O-]C");
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->atom(0).charge, -1);
  auto m3 = ParseSmiles("c1cc[nH]c1");  // pyrrole
  ASSERT_TRUE(m3.ok());
  EXPECT_EQ(m3->num_atoms(), 5);
  EXPECT_EQ(m3->atom(3).explicit_hydrogens, 1);
}

TEST(SmilesParseTest, TripleBond) {
  auto m = ParseSmiles("CC#N");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->FindBond(1, 2)->order, BondOrder::kTriple);
  EXPECT_EQ(m->HydrogenCount(1), 0);
}

TEST(SmilesParseTest, PercentRingNumbers) {
  auto m = ParseSmiles("C%12CCCCC%12");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->RingCount(), 1);
}

TEST(SmilesParseTest, ErrorCases) {
  EXPECT_TRUE(ParseSmiles("").status().IsParseError());
  EXPECT_TRUE(ParseSmiles("C(").status().IsParseError());
  EXPECT_TRUE(ParseSmiles("C)").status().IsParseError());
  EXPECT_TRUE(ParseSmiles("C1CC").status().IsParseError());  // open ring
  EXPECT_TRUE(ParseSmiles("C..C").status().IsParseError());
  EXPECT_TRUE(ParseSmiles("C/C=C/C").status().IsParseError());  // stereo
  EXPECT_TRUE(ParseSmiles("C[Zn]C").status().IsParseError());
  EXPECT_TRUE(ParseSmiles("C==C").status().IsParseError());
  EXPECT_TRUE(ParseSmiles("[").status().IsParseError());
}

TEST(SmilesWriteTest, SimpleChainRoundTrip) {
  auto m = ParseSmiles("CC(=O)O");
  ASSERT_TRUE(m.ok());
  auto text = WriteSmiles(*m);
  ASSERT_TRUE(text.ok());
  auto back = ParseSmiles(*text);
  ASSERT_TRUE(back.ok()) << *text;
  EXPECT_EQ(back->num_atoms(), m->num_atoms());
  EXPECT_EQ(back->num_bonds(), m->num_bonds());
}

TEST(SmilesWriteTest, RingRoundTrip) {
  auto m = ParseSmiles("c1ccc(CC2CCNCC2)cc1");
  ASSERT_TRUE(m.ok());
  auto text = WriteSmiles(*m);
  ASSERT_TRUE(text.ok());
  auto back = ParseSmiles(*text);
  ASSERT_TRUE(back.ok()) << *text;
  EXPECT_EQ(back->num_atoms(), m->num_atoms());
  EXPECT_EQ(back->num_bonds(), m->num_bonds());
  EXPECT_EQ(back->RingCount(), m->RingCount());
}

TEST(SmilesWriteTest, EmptyAndDisconnectedRejected) {
  Molecule empty;
  EXPECT_TRUE(WriteSmiles(empty).status().IsInvalidArgument());
  Molecule disc;
  disc.AddAtom({Element::kCarbon});
  disc.AddAtom({Element::kCarbon});
  EXPECT_TRUE(WriteSmiles(disc).status().IsInvalidArgument());
}

// Property: every generated ligand parses, and its SMILES round-trips
// through write+parse to an equal-sized graph with equal properties.
class GeneratedLigandRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedLigandRoundTrip, ParseWriteParseStable) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  LigandGenParams params;
  auto ligands = GenerateLigands(30, params, &rng);
  ASSERT_TRUE(ligands.ok());
  EXPECT_EQ(ligands->size(), 30u);
  for (const auto& lig : *ligands) {
    auto m = ParseSmiles(lig.smiles);
    ASSERT_TRUE(m.ok()) << lig.smiles;
    EXPECT_TRUE(m->IsConnected()) << lig.smiles;
    auto text = WriteSmiles(*m);
    ASSERT_TRUE(text.ok()) << lig.smiles;
    auto back = ParseSmiles(*text);
    ASSERT_TRUE(back.ok()) << lig.smiles << " -> " << *text;
    EXPECT_EQ(back->num_atoms(), m->num_atoms()) << lig.smiles;
    EXPECT_EQ(back->num_bonds(), m->num_bonds()) << lig.smiles;
    auto p1 = ComputeProperties(*m);
    auto p2 = ComputeProperties(*back);
    EXPECT_NEAR(p1.molecular_weight, p2.molecular_weight, 1e-6) << lig.smiles;
    EXPECT_EQ(p1.ring_count, p2.ring_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedLigandRoundTrip,
                         ::testing::Range(0, 5));

TEST(GenerateLigandsTest, DeterministicAndValidated) {
  LigandGenParams params;
  util::Rng r1(9), r2(9);
  auto a = GenerateLigands(20, params, &r1);
  auto b = GenerateLigands(20, params, &r2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].smiles, (*b)[i].smiles);
    EXPECT_EQ((*a)[i].ligand_id, (*b)[i].ligand_id);
  }
}

TEST(GenerateLigandsTest, ParamValidation) {
  util::Rng rng(1);
  LigandGenParams p;
  EXPECT_TRUE(GenerateLigands(-1, p, &rng).status().IsInvalidArgument());
  p.num_families = 0;
  EXPECT_TRUE(GenerateLigands(5, p, &rng).status().IsInvalidArgument());
  p = LigandGenParams();
  EXPECT_TRUE(GenerateLigands(5, p, nullptr).status().IsInvalidArgument());
}

}  // namespace
}  // namespace chem
}  // namespace drugtree
