#include "storage/value.h"

#include <gtest/gtest.h>

#include "storage/schema.h"
#include "util/rng.h"

namespace drugtree {
namespace storage {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int64(5).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
}

TEST(ValueTest, DefaultConstructedIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int64(42), Value::Double(42.0));
  EXPECT_NE(Value::Int64(42), Value::Double(42.5));
  EXPECT_LT(Value::Int64(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int64(2)), 0);
}

TEST(ValueTest, NullOrdersFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_GT(Value::String("").Compare(Value::Null()), 0);
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("abc"), Value::String("abc"));
}

TEST(ValueTest, BoolOrdering) {
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
  EXPECT_EQ(Value::Bool(true), Value::Bool(true));
}

TEST(ValueTest, HashConsistentWithEquality) {
  // Int64 and integral Double that compare equal must hash equal.
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Double(42.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::Int64(1).Hash(), Value::Int64(2).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(ValueTest, EncodeDecodeAllTypes) {
  std::vector<Value> values = {
      Value::Null(),       Value::Bool(true),      Value::Bool(false),
      Value::Int64(0),     Value::Int64(-1234567), Value::Double(3.14159),
      Value::Double(-0.0), Value::String(""),      Value::String("hello"),
      Value::String(std::string(1000, 'x')),
  };
  std::string buf;
  for (const auto& v : values) v.EncodeTo(&buf);
  size_t offset = 0;
  for (const auto& expected : values) {
    auto v = Value::DecodeFrom(buf, &offset);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, expected);
    EXPECT_EQ(v->type(), expected.type());
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(ValueTest, DecodeTruncatedFails) {
  std::string buf;
  Value::Int64(42).EncodeTo(&buf);
  buf.resize(buf.size() - 1);
  size_t offset = 0;
  EXPECT_TRUE(Value::DecodeFrom(buf, &offset).status().IsParseError());
}

TEST(ValueTest, DecodeBadTagFails) {
  std::string buf = "\x7f";
  size_t offset = 0;
  EXPECT_TRUE(Value::DecodeFrom(buf, &offset).status().IsParseError());
}

class ValueRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ValueRoundTrip, RandomRowsRoundTrip) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 3 + 11);
  for (int trial = 0; trial < 50; ++trial) {
    Row row;
    int cols = 1 + static_cast<int>(rng.Uniform(8));
    for (int c = 0; c < cols; ++c) {
      switch (rng.Uniform(5)) {
        case 0: row.push_back(Value::Null()); break;
        case 1: row.push_back(Value::Bool(rng.Bernoulli(0.5))); break;
        case 2:
          row.push_back(Value::Int64(rng.UniformRange(-1000000, 1000000)));
          break;
        case 3: row.push_back(Value::Double(rng.NextGaussian() * 100)); break;
        case 4: {
          std::string s;
          size_t len = rng.Uniform(30);
          for (size_t i = 0; i < len; ++i) {
            s += char('a' + rng.Uniform(26));
          }
          row.push_back(Value::String(std::move(s)));
          break;
        }
      }
    }
    std::string buf;
    EncodeRow(row, &buf);
    size_t offset = 0;
    auto decoded = DecodeRow(buf, &offset);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, row);
    EXPECT_EQ(offset, buf.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueRoundTrip, ::testing::Range(0, 4));

TEST(SchemaTest, CreateValidations) {
  EXPECT_TRUE(Schema::Create({{"", ValueType::kInt64, false}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Schema::Create({{"a", ValueType::kNull, false}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Schema::Create({{"a", ValueType::kInt64, false},
                              {"a", ValueType::kString, false}})
                  .status()
                  .IsInvalidArgument());
}

TEST(SchemaTest, IndexOfAndHas) {
  auto s = Schema::Create(
      {{"a", ValueType::kInt64, false}, {"b", ValueType::kString, true}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s->IndexOf("b"), 1u);
  EXPECT_TRUE(s->IndexOf("c").status().IsNotFound());
  EXPECT_TRUE(s->Has("a"));
  EXPECT_FALSE(s->Has("z"));
}

TEST(SchemaTest, CheckRowArityAndTypes) {
  auto s = Schema::Create(
      {{"a", ValueType::kInt64, false}, {"b", ValueType::kString, true}});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->CheckRow({Value::Int64(1), Value::String("x")}).ok());
  EXPECT_TRUE(s->CheckRow({Value::Int64(1), Value::Null()}).ok());  // nullable
  EXPECT_FALSE(s->CheckRow({Value::Null(), Value::String("x")}).ok());
  EXPECT_FALSE(s->CheckRow({Value::Int64(1)}).ok());  // arity
  EXPECT_FALSE(s->CheckRow({Value::String("x"), Value::String("y")}).ok());
}

TEST(SchemaTest, IntWidensToDouble) {
  auto s = Schema::Create({{"d", ValueType::kDouble, false}});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->CheckRow({Value::Int64(5)}).ok());
  EXPECT_FALSE(s->CheckRow({Value::String("5")}).ok());
}

TEST(SchemaTest, ToStringRendersTypes) {
  auto s = Schema::Create(
      {{"a", ValueType::kInt64, false}, {"b", ValueType::kBool, true}});
  EXPECT_EQ(s->ToString(), "a:INT64, b:BOOL");
}

}  // namespace
}  // namespace storage
}  // namespace drugtree
