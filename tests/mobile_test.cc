#include <gtest/gtest.h>

#include <set>

#include "mobile/client_cache.h"
#include "mobile/device.h"
#include "mobile/lod.h"
#include "mobile/protocol.h"
#include "mobile/session.h"
#include "mobile/trace.h"
#include "mobile/viewport.h"
#include "phylo/newick.h"
#include "util/clock.h"
#include "util/rng.h"

namespace drugtree {
namespace mobile {
namespace {

using phylo::NodeId;

struct TreeBundle {
  phylo::Tree tree;
  std::unique_ptr<phylo::TreeIndex> index;
  std::unique_ptr<phylo::TreeLayout> layout;
};

TreeBundle MakeBalancedTree(int levels) {
  TreeBundle b;
  NodeId root = *b.tree.AddRoot();
  std::vector<NodeId> frontier = {root};
  int leaf = 0;
  for (int level = 0; level < levels; ++level) {
    std::vector<NodeId> next;
    for (NodeId parent : frontier) {
      for (int c = 0; c < 2; ++c) {
        std::string name = level + 1 == levels
                               ? "L" + std::to_string(leaf++)
                               : "";
        next.push_back(*b.tree.AddChild(parent, name, 1.0));
      }
    }
    frontier = std::move(next);
  }
  b.index = std::make_unique<phylo::TreeIndex>(
      std::move(*phylo::TreeIndex::Build(b.tree)));
  b.layout = std::make_unique<phylo::TreeLayout>(
      std::move(*phylo::TreeLayout::Compute(b.tree)));
  return b;
}

TEST(ViewportTest, FullExtentCoversLayout) {
  auto b = MakeBalancedTree(4);
  Viewport v = Viewport::FullExtent(*b.layout);
  EXPECT_DOUBLE_EQ(v.x0, 0.0);
  EXPECT_DOUBLE_EQ(v.y0, 0.0);
  EXPECT_DOUBLE_EQ(v.x1, b.layout->max_x());
  EXPECT_DOUBLE_EQ(v.y1, b.layout->max_y());
}

TEST(ViewportTest, PanClampsAtEdges) {
  auto b = MakeBalancedTree(4);
  Viewport v = Viewport::FullExtent(*b.layout);
  v.Zoom(0.5, *b.layout);
  double w = v.Width();
  v.Pan(-1000, -1000, *b.layout);
  EXPECT_DOUBLE_EQ(v.x0, 0.0);
  EXPECT_DOUBLE_EQ(v.y0, 0.0);
  EXPECT_NEAR(v.Width(), w, 1e-9);
  v.Pan(1e9, 1e9, *b.layout);
  EXPECT_DOUBLE_EQ(v.x1, b.layout->max_x());
  EXPECT_DOUBLE_EQ(v.y1, b.layout->max_y());
}

TEST(ViewportTest, ZoomInShrinksWindow) {
  auto b = MakeBalancedTree(4);
  Viewport v = Viewport::FullExtent(*b.layout);
  double w = v.Width(), h = v.Height();
  v.Zoom(0.5, *b.layout);
  EXPECT_LT(v.Width(), w);
  EXPECT_LT(v.Height(), h);
  v.Zoom(10.0, *b.layout);  // zoom far out clamps to layout
  EXPECT_LE(v.Width(), b.layout->max_x() + 1e-9);
}

TEST(ViewportTest, CenterOnNode) {
  auto b = MakeBalancedTree(4);
  Viewport v = Viewport::FullExtent(*b.layout);
  NodeId leaf = b.tree.Leaves()[5];
  v.CenterOn(b.layout->position(leaf), 2.0, 4.0, *b.layout);
  EXPECT_TRUE(v.Contains(b.layout->position(leaf).x,
                         b.layout->position(leaf).y));
}

TEST(LodTest, FullCutShipsEveryNode) {
  auto b = MakeBalancedTree(5);
  auto cut = FullTreeCut(b.tree, *b.index, *b.layout, {});
  EXPECT_EQ(cut.size(), b.tree.NumNodes());
  for (const auto& n : cut) EXPECT_FALSE(n.collapsed);
}

TEST(LodTest, TightBudgetCollapses) {
  auto b = MakeBalancedTree(7);  // 255 nodes
  Viewport v = Viewport::FullExtent(*b.layout);
  LodParams params;
  params.min_subtree_pixels = 200;  // brutal: almost everything collapses
  params.screen_height_px = 480;
  auto cut = ComputeLodCut(b.tree, *b.index, *b.layout, v, {}, params);
  ASSERT_TRUE(cut.ok());
  EXPECT_LT(cut->size(), b.tree.NumNodes() / 4);
  bool any_collapsed = false;
  for (const auto& n : *cut) any_collapsed |= n.collapsed;
  EXPECT_TRUE(any_collapsed);
}

TEST(LodTest, EveryLeafRepresented) {
  // Coverage property: every leaf must be inside the subtree of some shipped
  // node (expanded leaf or collapsed marker).
  auto b = MakeBalancedTree(6);
  Viewport v = Viewport::FullExtent(*b.layout);
  LodParams params;
  params.min_subtree_pixels = 60;
  auto cut = ComputeLodCut(b.tree, *b.index, *b.layout, v, {}, params);
  ASSERT_TRUE(cut.ok());
  for (NodeId leaf : b.tree.Leaves()) {
    bool covered = false;
    for (const auto& n : *cut) {
      if (b.index->IsAncestor(n.id, leaf) &&
          (n.collapsed || n.id == leaf)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "leaf " << leaf;
  }
}

TEST(LodTest, ZoomRevealsMoreDetail) {
  auto b = MakeBalancedTree(7);
  LodParams params;
  params.min_subtree_pixels = 12;
  params.screen_height_px = 480;
  Viewport full = Viewport::FullExtent(*b.layout);
  auto far_cut = ComputeLodCut(b.tree, *b.index, *b.layout, full, {}, params);
  ASSERT_TRUE(far_cut.ok());
  // Zoom into the first quarter of the leaf band.
  Viewport zoomed = full;
  zoomed.y1 = full.y1 / 4;
  auto near_cut =
      ComputeLodCut(b.tree, *b.index, *b.layout, zoomed, {}, params);
  ASSERT_TRUE(near_cut.ok());
  // Zoomed view shows deeper nodes: its max depth exceeds the overview's.
  auto max_depth = [&](const std::vector<LodNode>& cut) {
    int d = 0;
    for (const auto& n : cut) d = std::max(d, int(b.index->Depth(n.id)));
    return d;
  };
  EXPECT_GT(max_depth(*near_cut), max_depth(*far_cut));
}

TEST(LodTest, MaxNodesBudgetRespected) {
  auto b = MakeBalancedTree(8);
  Viewport v = Viewport::FullExtent(*b.layout);
  LodParams params;
  params.min_subtree_pixels = 0.001;
  params.max_nodes = 50;
  auto cut = ComputeLodCut(b.tree, *b.index, *b.layout, v, {}, params);
  ASSERT_TRUE(cut.ok());
  EXPECT_LE(cut->size(), 50u);
}

TEST(LodTest, AnnotationCarried) {
  auto b = MakeBalancedTree(3);
  std::vector<double> ann(b.tree.NumNodes(), 0.0);
  ann[0] = 7.5;
  auto cut = FullTreeCut(b.tree, *b.index, *b.layout, ann);
  EXPECT_DOUBLE_EQ(cut[0].annotation, 7.5);
}

TEST(LodTest, InvalidParamsRejected) {
  auto b = MakeBalancedTree(3);
  Viewport v = Viewport::FullExtent(*b.layout);
  LodParams bad;
  bad.max_nodes = 0;
  EXPECT_TRUE(ComputeLodCut(b.tree, *b.index, *b.layout, v, {}, bad)
                  .status()
                  .IsInvalidArgument());
}

TEST(ProtocolTest, DeltaSkipsCachedNodes) {
  auto b = MakeBalancedTree(4);
  auto cut = FullTreeCut(b.tree, *b.index, *b.layout, {});
  std::unordered_set<int64_t> expanded;
  for (size_t i = 0; i < cut.size() / 2; ++i) expanded.insert(cut[i].id);
  Frame with_delta = BuildFrame(cut, {}, expanded, true);
  Frame without = BuildFrame(cut, {}, expanded, false);
  EXPECT_EQ(with_delta.delta_skipped, cut.size() / 2);
  EXPECT_EQ(with_delta.nodes.size(), cut.size() - cut.size() / 2);
  EXPECT_EQ(without.nodes.size(), cut.size());
  EXPECT_LT(with_delta.bytes, without.bytes);
}

TEST(ProtocolTest, CollapsedStateDistinguished) {
  LodNode n;
  n.id = 5;
  n.collapsed = true;
  // Client holds node 5 in *expanded* form: a collapsed version must ship.
  Frame f = BuildFrame({n}, {}, {5}, true);
  EXPECT_EQ(f.nodes.size(), 1u);
  // Client holds it collapsed: skip.
  Frame f2 = BuildFrame({n}, {5}, {}, true);
  EXPECT_EQ(f2.nodes.size(), 0u);
  EXPECT_EQ(f2.delta_skipped, 1u);
}

TEST(ClientCacheTest, InstallAndQuerySets) {
  ClientCache cache(10 * kBytesPerNode);
  LodNode a;
  a.id = 1;
  a.collapsed = false;
  LodNode bnode;
  bnode.id = 2;
  bnode.collapsed = true;
  cache.Install({a, bnode});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.ExpandedIds().count(1));
  EXPECT_TRUE(cache.CollapsedIds().count(2));
  EXPECT_FALSE(cache.CollapsedIds().count(1));
}

TEST(ClientCacheTest, BudgetEnforced) {
  ClientCache cache(5 * kBytesPerNode);
  std::vector<LodNode> nodes(20);
  for (int i = 0; i < 20; ++i) nodes[static_cast<size_t>(i)].id = i;
  cache.Install(nodes);
  EXPECT_LE(cache.size(), 5u);
}

TEST(TraceTest, StartsWithInitialLoadAndIsDeterministic) {
  auto b = MakeBalancedTree(5);
  TraceParams params;
  params.num_actions = 30;
  util::Rng r1(5), r2(5);
  auto t1 = GenerateTrace(b.tree, *b.index, params, &r1);
  auto t2 = GenerateTrace(b.tree, *b.index, params, &r2);
  ASSERT_EQ(t1.size(), 30u);
  EXPECT_EQ(t1[0].kind, ActionKind::kInitialLoad);
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].kind, t2[i].kind);
    EXPECT_EQ(t1[i].node, t2[i].node);
  }
}

TEST(TraceTest, NodesAreValid) {
  auto b = MakeBalancedTree(5);
  TraceParams params;
  params.num_actions = 100;
  util::Rng rng(11);
  auto trace = GenerateTrace(b.tree, *b.index, params, &rng);
  for (const auto& a : trace) {
    if (a.kind == ActionKind::kFocusNode ||
        a.kind == ActionKind::kOverlayQuery) {
      EXPECT_TRUE(b.tree.Contains(a.node));
    }
  }
}

TEST(SessionTest, RunsAndMeasures) {
  auto b = MakeBalancedTree(6);
  util::SimulatedClock clock;
  SessionOptions opts;
  MobileSession session(&b.tree, b.index.get(), b.layout.get(), {},
                        DeviceProfile::TabletWifi(), &clock, opts);
  TraceParams tp;
  tp.num_actions = 20;
  util::Rng rng(3);
  auto trace = GenerateTrace(b.tree, *b.index, tp, &rng);
  auto report = session.Run(trace);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->latency_ms.count(), 20);
  EXPECT_GT(report->bytes_shipped, 0u);
  EXPECT_GT(report->frames, 0u);
  EXPECT_GT(report->total_session_micros, 0);
  EXPECT_FALSE(report->ToString().empty());
}

TEST(SessionTest, ProgressiveLodShipsFewerBytesThanFull) {
  auto b = MakeBalancedTree(9);  // 1023 nodes
  TraceParams tp;
  tp.num_actions = 15;
  util::Rng rng(7);
  auto trace = GenerateTrace(b.tree, *b.index, tp, &rng);

  auto run = [&](bool lod, bool delta) {
    util::SimulatedClock clock;
    SessionOptions opts;
    opts.progressive_lod = lod;
    opts.delta_encoding = delta;
    MobileSession session(&b.tree, b.index.get(), b.layout.get(), {},
                          DeviceProfile::Phone3G(), &clock, opts);
    auto report = session.Run(trace);
    EXPECT_TRUE(report.ok());
    return *report;
  };
  auto full = run(false, false);
  auto lod = run(true, true);
  EXPECT_LT(lod.bytes_shipped, full.bytes_shipped / 2);
  EXPECT_LT(lod.latency_ms.Mean(), full.latency_ms.Mean());
}

TEST(SessionTest, DeltaEncodingSkipsRepeats) {
  auto b = MakeBalancedTree(7);
  // Trace that repeats the same view: second initial load is all-cached.
  std::vector<Action> trace = {{ActionKind::kInitialLoad, b.tree.root(), 0, 0},
                               {ActionKind::kInitialLoad, b.tree.root(), 0, 0}};
  util::SimulatedClock clock;
  SessionOptions opts;
  MobileSession session(&b.tree, b.index.get(), b.layout.get(), {},
                        DeviceProfile::TabletWifi(), &clock, opts);
  auto report = session.Run(trace);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->nodes_delta_skipped, 0u);
}

TEST(SessionTest, OverlayQueryCallbackInvoked) {
  auto b = MakeBalancedTree(5);
  util::SimulatedClock clock;
  int calls = 0;
  OverlayQueryFn fn = [&](NodeId) -> util::Result<uint64_t> {
    ++calls;
    return uint64_t{1000};
  };
  SessionOptions opts;
  MobileSession session(&b.tree, b.index.get(), b.layout.get(), {},
                        DeviceProfile::TabletWifi(), &clock, opts, fn);
  std::vector<Action> trace = {
      {ActionKind::kInitialLoad, b.tree.root(), 0, 0},
      {ActionKind::kOverlayQuery, b.tree.root(), 0, 0}};
  auto report = session.Run(trace);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(calls, 1);
}

TEST(DeviceTest, ProfilesOrdered) {
  auto phone = DeviceProfile::Phone3G();
  auto tablet = DeviceProfile::TabletWifi();
  auto desktop = DeviceProfile::DesktopLan();
  EXPECT_GT(phone.link.latency_micros, tablet.link.latency_micros);
  EXPECT_GT(tablet.link.latency_micros, desktop.link.latency_micros);
  EXPECT_LT(phone.link.bandwidth_bytes_per_sec,
            desktop.link.bandwidth_bytes_per_sec);
}

}  // namespace
}  // namespace mobile
}  // namespace drugtree
