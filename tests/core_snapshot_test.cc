// Snapshot persistence and annotation-guided LOD tests.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/drugtree.h"
#include "core/workload.h"
#include "mobile/lod.h"
#include "util/clock.h"

namespace drugtree {
namespace core {
namespace {

using query::PlannerOptions;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/drugtree_snapshot_test.db";
    std::remove(path_.c_str());
    BuildOptions options;
    options.seed = 3;
    options.num_families = 3;
    options.taxa_per_family = 8;
    options.sequence_length = 70;
    options.num_ligands = 60;
    auto built = DrugTree::Build(options, &clock_);
    ASSERT_TRUE(built.ok()) << built.status();
    dt_ = std::move(*built);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  util::SimulatedClock clock_;
  std::unique_ptr<DrugTree> dt_;
  std::string path_;
};

TEST_F(SnapshotTest, SaveLoadRoundTripPreservesData) {
  ASSERT_TRUE(dt_->SaveSnapshot(path_).ok());
  auto loaded = DrugTree::LoadSnapshot(path_, &clock_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->tree().NumLeaves(), dt_->tree().NumLeaves());
  EXPECT_EQ((*loaded)->ligands()->NumRows(), dt_->ligands()->NumRows());
  EXPECT_EQ((*loaded)->activities()->NumRows(), dt_->activities()->NumRows());
  EXPECT_EQ((*loaded)->overlay()->proteins()->NumRows(),
            dt_->overlay()->proteins()->NumRows());
  // Loaded instances have no remote sources.
  EXPECT_EQ((*loaded)->protein_source(), nullptr);
}

TEST_F(SnapshotTest, LoadedInstanceAnswersQueriesIdentically) {
  ASSERT_TRUE(dt_->SaveSnapshot(path_).ok());
  auto loaded = DrugTree::LoadSnapshot(path_, &clock_);
  ASSERT_TRUE(loaded.ok());
  WorkloadParams wp;
  wp.num_queries = 12;
  util::Rng rng(7);
  auto workload = GenerateWorkload(dt_->tree(), dt_->tree_index(), wp, &rng);
  for (const auto& q : workload) {
    // Workload node ids come from the original tree; map via name so the
    // comparison is fair even if node numbering changed on reload.
    auto a = dt_->Query(q.sql, PlannerOptions::Optimized());
    ASSERT_TRUE(a.ok()) << q.sql;
    // Rebuild the query against the loaded tree's numbering.
    std::string name = dt_->tree().node(q.focus).name;
    phylo::NodeId mapped = name.empty()
                               ? q.focus
                               : (*loaded)->tree().FindByName(name);
    std::string sql2 = MakeQuerySql(q.kind, mapped, (*loaded)->tree(), wp);
    auto b = (*loaded)->Query(sql2, PlannerOptions::Optimized());
    ASSERT_TRUE(b.ok()) << sql2 << ": " << b.status();
    // Node ids renumber on reload (Newick DFS order), so only compare
    // queries whose outputs are numbering-independent and whose focus
    // carried over by name.
    bool numbering_free = q.kind == QueryKind::kSubtreeProteins ||
                          q.kind == QueryKind::kScreeningJoin ||
                          q.kind == QueryKind::kFamilyAggregate;
    if (numbering_free &&
        (!name.empty() || q.kind == QueryKind::kFamilyAggregate)) {
      ASSERT_EQ(a->result.rows.size(), b->result.rows.size()) << q.sql;
      for (size_t i = 0; i < a->result.rows.size(); ++i) {
        EXPECT_EQ(a->result.rows[i], b->result.rows[i]) << q.sql;
      }
    }
  }
}

TEST_F(SnapshotTest, LoadedInstanceSupportsUpdatesAndSessions) {
  ASSERT_TRUE(dt_->SaveSnapshot(path_).ok());
  auto loaded = DrugTree::LoadSnapshot(path_, &clock_);
  ASSERT_TRUE(loaded.ok());
  auto leaf = (*loaded)->tree().Leaves()[0];
  ASSERT_TRUE(
      (*loaded)->AddActivity((*loaded)->tree().node(leaf).name, "L000001", 2.0)
          .ok());
  mobile::TraceParams tp;
  tp.num_actions = 6;
  auto trace = (*loaded)->MakeTrace(tp, 1);
  auto session = (*loaded)->MakeSession(mobile::DeviceProfile::TabletWifi(),
                                        {}, PlannerOptions::Optimized());
  auto report = session.Run(trace);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->latency_ms.count(), 6);
}

TEST_F(SnapshotTest, MissingAndCorruptSnapshotsRejected) {
  auto missing = DrugTree::LoadSnapshot(path_ + ".nope", &clock_);
  EXPECT_FALSE(missing.ok());
  // Corrupt: write garbage into the superblock.
  ASSERT_TRUE(dt_->SaveSnapshot(path_).ok());
  FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  uint32_t junk = 0xBADC0DE;
  std::fwrite(&junk, sizeof(junk), 1, f);
  std::fclose(f);
  auto corrupt = DrugTree::LoadSnapshot(path_, &clock_);
  EXPECT_TRUE(corrupt.status().IsParseError());
}

TEST_F(SnapshotTest, SaveOverwritesExisting) {
  ASSERT_TRUE(dt_->SaveSnapshot(path_).ok());
  ASSERT_TRUE(dt_->SaveSnapshot(path_).ok());  // second save must not corrupt
  auto loaded = DrugTree::LoadSnapshot(path_, &clock_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->tree().NumLeaves(), dt_->tree().NumLeaves());
}

TEST(AnnotationLodTest, HotCladesEarnDetail) {
  // Balanced tree; one clade gets a hot annotation.
  phylo::Tree tree;
  auto root = *tree.AddRoot();
  std::vector<phylo::NodeId> frontier = {root};
  for (int level = 0; level < 6; ++level) {
    std::vector<phylo::NodeId> next;
    for (auto p : frontier) {
      next.push_back(*tree.AddChild(p, "", 1.0));
      next.push_back(*tree.AddChild(p, "", 1.0));
    }
    frontier = std::move(next);
  }
  auto index = *phylo::TreeIndex::Build(tree);
  auto layout = *phylo::TreeLayout::Compute(tree);
  // Annotate the left child's whole subtree as hot.
  std::vector<double> ann(tree.NumNodes(), 0.0);
  phylo::NodeId hot = tree.node(root).children[0];
  for (auto n : index.SubtreeNodes(hot)) ann[static_cast<size_t>(n)] = 5.0;

  mobile::Viewport vp = mobile::Viewport::FullExtent(layout);
  mobile::LodParams params;
  params.min_subtree_pixels = 120;
  params.screen_height_px = 480;
  auto flat = mobile::ComputeLodCut(tree, index, layout, vp, ann, params);
  ASSERT_TRUE(flat.ok());
  params.annotation_boost = 8.0;
  params.annotation_hot_threshold = 1.0;
  auto boosted = mobile::ComputeLodCut(tree, index, layout, vp, ann, params);
  ASSERT_TRUE(boosted.ok());
  // Boost ships more nodes, and the extra nodes are inside the hot clade.
  EXPECT_GT(boosted->size(), flat->size());
  size_t hot_flat = 0, hot_boosted = 0, cold_flat = 0, cold_boosted = 0;
  for (const auto& n : *flat) {
    (index.IsAncestor(hot, n.id) ? hot_flat : cold_flat) += 1;
  }
  for (const auto& n : *boosted) {
    (index.IsAncestor(hot, n.id) ? hot_boosted : cold_boosted) += 1;
  }
  EXPECT_GT(hot_boosted, hot_flat);
  EXPECT_EQ(cold_boosted, cold_flat);
}

TEST(AnnotationLodTest, BoostBelowOneRejected) {
  phylo::Tree tree;
  tree.AddRoot().ValueOrDie();
  auto index = *phylo::TreeIndex::Build(tree);
  auto layout = *phylo::TreeLayout::Compute(tree);
  mobile::LodParams params;
  params.annotation_boost = 0.5;
  EXPECT_TRUE(mobile::ComputeLodCut(tree, index, layout,
                                    mobile::Viewport::FullExtent(layout), {},
                                    params)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace core
}  // namespace drugtree
