#include "chem/molecule.h"

#include <gtest/gtest.h>

namespace drugtree {
namespace chem {
namespace {

TEST(ElementTest, SymbolsAndMasses) {
  EXPECT_STREQ(ElementSymbol(Element::kCarbon), "C");
  EXPECT_STREQ(ElementSymbol(Element::kChlorine), "Cl");
  EXPECT_NEAR(ElementMassDa(Element::kCarbon), 12.011, 1e-3);
  EXPECT_NEAR(ElementMassDa(Element::kOxygen), 15.999, 1e-3);
  EXPECT_EQ(ElementValence(Element::kCarbon), 4);
  EXPECT_EQ(ElementValence(Element::kNitrogen), 3);
  EXPECT_EQ(ElementValence(Element::kFluorine), 1);
}

Molecule Ethanol() {
  // CCO
  Molecule m;
  int c1 = m.AddAtom({Element::kCarbon});
  int c2 = m.AddAtom({Element::kCarbon});
  int o = m.AddAtom({Element::kOxygen});
  EXPECT_TRUE(m.AddBond(c1, c2, BondOrder::kSingle).ok());
  EXPECT_TRUE(m.AddBond(c2, o, BondOrder::kSingle).ok());
  return m;
}

TEST(MoleculeTest, BuildEthanol) {
  Molecule m = Ethanol();
  EXPECT_EQ(m.num_atoms(), 3);
  EXPECT_EQ(m.num_bonds(), 2);
  EXPECT_TRUE(m.IsConnected());
  EXPECT_EQ(m.RingCount(), 0);
  // Implicit hydrogens: CH3 (3), CH2 (2), OH (1).
  EXPECT_EQ(m.HydrogenCount(0), 3);
  EXPECT_EQ(m.HydrogenCount(1), 2);
  EXPECT_EQ(m.HydrogenCount(2), 1);
}

TEST(MoleculeTest, BondValidation) {
  Molecule m = Ethanol();
  EXPECT_TRUE(m.AddBond(0, 0, BondOrder::kSingle).IsInvalidArgument());
  EXPECT_TRUE(m.AddBond(0, 9, BondOrder::kSingle).IsInvalidArgument());
  EXPECT_TRUE(m.AddBond(0, 1, BondOrder::kSingle).IsAlreadyExists());
  EXPECT_TRUE(m.AddBond(1, 0, BondOrder::kSingle).IsAlreadyExists());
}

TEST(MoleculeTest, FindBondIgnoresDirection) {
  Molecule m = Ethanol();
  EXPECT_NE(m.FindBond(0, 1), nullptr);
  EXPECT_NE(m.FindBond(1, 0), nullptr);
  EXPECT_EQ(m.FindBond(0, 2), nullptr);
}

TEST(MoleculeTest, NeighborsBidirectional) {
  Molecule m = Ethanol();
  EXPECT_EQ(m.Neighbors(1).size(), 2u);
  EXPECT_EQ(m.Neighbors(0).size(), 1u);
  EXPECT_EQ(m.Neighbors(0)[0], 1);
}

TEST(MoleculeTest, DoubleBondReducesHydrogens) {
  // C=O formaldehyde-ish carbon.
  Molecule m;
  int c = m.AddAtom({Element::kCarbon});
  int o = m.AddAtom({Element::kOxygen});
  ASSERT_TRUE(m.AddBond(c, o, BondOrder::kDouble).ok());
  EXPECT_EQ(m.HydrogenCount(c), 2);
  EXPECT_EQ(m.HydrogenCount(o), 0);
}

TEST(MoleculeTest, ExplicitHydrogensOverride) {
  Molecule m;
  Atom a;
  a.element = Element::kNitrogen;
  a.explicit_hydrogens = 0;
  int n = m.AddAtom(a);
  EXPECT_EQ(m.HydrogenCount(n), 0);
}

TEST(MoleculeTest, ChargeExtendsValence) {
  Molecule m;
  Atom a;
  a.element = Element::kNitrogen;
  a.charge = 1;
  int n = m.AddAtom(a);
  EXPECT_EQ(m.HydrogenCount(n), 4);  // NH4+
}

TEST(MoleculeTest, RingDetection) {
  // Cyclohexane.
  Molecule m;
  int atoms[6];
  for (auto& atom : atoms) atom = m.AddAtom({Element::kCarbon});
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(m.AddBond(atoms[i], atoms[(i + 1) % 6], BondOrder::kSingle).ok());
  }
  EXPECT_EQ(m.RingCount(), 1);
  EXPECT_TRUE(m.IsConnected());
  EXPECT_EQ(m.HydrogenCount(0), 2);
}

TEST(MoleculeTest, DisconnectedDetected) {
  Molecule m;
  m.AddAtom({Element::kCarbon});
  m.AddAtom({Element::kCarbon});
  EXPECT_FALSE(m.IsConnected());
  EXPECT_EQ(m.RingCount(), 0);  // 0 bonds - 2 atoms + 2 components
}

TEST(MoleculeTest, EmptyMolecule) {
  Molecule m;
  EXPECT_TRUE(m.IsConnected());
  EXPECT_EQ(m.RingCount(), 0);
}

}  // namespace
}  // namespace chem
}  // namespace drugtree
