#include "phylo/builder.h"

#include <gtest/gtest.h>

#include "bio/distance.h"
#include "bio/synthetic.h"
#include "phylo/newick.h"
#include "phylo/tree_index.h"
#include "phylo/tree_metrics.h"
#include "util/rng.h"

namespace drugtree {
namespace phylo {
namespace {

bio::DistanceMatrix Matrix(std::vector<std::string> names,
                           std::vector<std::vector<double>> d) {
  auto m = bio::DistanceMatrix::Create(std::move(names));
  EXPECT_TRUE(m.ok());
  for (size_t i = 0; i < m->size(); ++i) {
    for (size_t j = i + 1; j < m->size(); ++j) m->Set(i, j, d[i][j]);
  }
  return *m;
}

TEST(BuilderTest, RejectsTinyOrInvalidInput) {
  auto one = bio::DistanceMatrix::Create({"a"});
  EXPECT_TRUE(BuildUpgma(*one).status().IsInvalidArgument());
  EXPECT_TRUE(BuildNeighborJoining(*one).status().IsInvalidArgument());
}

TEST(BuilderTest, TwoTaxa) {
  auto m = Matrix({"a", "b"}, {{0, 4}, {4, 0}});
  auto u = BuildUpgma(m);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->NumLeaves(), 2u);
  EXPECT_DOUBLE_EQ(u->RootPathLength(u->FindByName("a")), 2.0);
  auto nj = BuildNeighborJoining(m);
  ASSERT_TRUE(nj.ok());
  EXPECT_EQ(nj->NumLeaves(), 2u);
}

TEST(UpgmaTest, ClassicThreeTaxa) {
  // d(a,b)=2, d(a,c)=d(b,c)=6: (a,b) merge at height 1, c joins at height 3.
  auto m = Matrix({"a", "b", "c"}, {{0, 2, 6}, {2, 0, 6}, {6, 6, 0}});
  auto t = BuildUpgma(m);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(IsUltrametric(*t));
  EXPECT_DOUBLE_EQ(t->RootPathLength(t->FindByName("a")), 3.0);
  EXPECT_DOUBLE_EQ(t->RootPathLength(t->FindByName("c")), 3.0);
  // a and b are siblings.
  NodeId a = t->FindByName("a");
  NodeId b = t->FindByName("b");
  EXPECT_EQ(t->node(a).parent, t->node(b).parent);
}

TEST(UpgmaTest, UltrametricOnEvolvedData) {
  util::Rng rng(17);
  bio::EvolutionParams ep;
  ep.num_taxa = 12;
  ep.sequence_length = 120;
  auto fam = bio::EvolveFamily(ep, &rng);
  ASSERT_TRUE(fam.ok());
  auto dist = bio::KmerDistanceMatrix(fam->sequences, 3);
  ASSERT_TRUE(dist.ok());
  auto t = BuildUpgma(*dist);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->Validate().ok());
  EXPECT_TRUE(IsUltrametric(*t, 1e-6));
  EXPECT_EQ(t->NumLeaves(), 12u);
}

// NJ is consistent: on additive (tree-realizable) distances it recovers the
// true topology exactly.
TEST(NeighborJoiningTest, RecoversAdditiveTree) {
  // True tree: ((a:2,b:3):1,(c:2,d:4):2); pairwise path distances:
  // ab=5, ac=7, ad=9, bc=8, bd=10, cd=6.
  auto m = Matrix({"a", "b", "c", "d"}, {{0, 5, 7, 9},
                                         {5, 0, 8, 10},
                                         {7, 8, 0, 6},
                                         {9, 10, 6, 0}});
  auto t = BuildNeighborJoining(m);
  ASSERT_TRUE(t.ok());
  auto truth = ParseNewick("((a:2,b:3):1,(c:2,d:4):2);");
  ASSERT_TRUE(truth.ok());
  auto rf = RobinsonFoulds(*t, *truth);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(*rf, 0);
  // Patristic distances are reproduced too.
  auto idx = TreeIndex::Build(*t);
  ASSERT_TRUE(idx.ok());
  EXPECT_NEAR(idx->PathLength(t->FindByName("a"), t->FindByName("b")), 5.0,
              1e-9);
  EXPECT_NEAR(idx->PathLength(t->FindByName("a"), t->FindByName("d")), 9.0,
              1e-9);
  EXPECT_NEAR(idx->PathLength(t->FindByName("c"), t->FindByName("d")), 6.0,
              1e-9);
}

TEST(NeighborJoiningTest, RootHasDegreeThree) {
  util::Rng rng(19);
  bio::EvolutionParams ep;
  ep.num_taxa = 10;
  auto fam = bio::EvolveFamily(ep, &rng);
  auto dist = bio::KmerDistanceMatrix(fam->sequences, 3);
  auto t = BuildNeighborJoining(*dist);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->node(t->root()).children.size(), 3u);
  EXPECT_TRUE(t->Validate().ok());
  EXPECT_EQ(t->NumLeaves(), 10u);
}

// Reconstruction accuracy: both builders get close to the generating tree on
// clock-like data; NJ tolerates non-clock data better (the E5 claim).
class ReconstructionAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(ReconstructionAccuracy, NjAccurateOnEvolvedFamilies) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 3);
  bio::EvolutionParams ep;
  ep.num_taxa = 16;
  ep.sequence_length = 300;
  ep.mutation_rate = 0.2;
  ep.indel_probability = 0.0;  // keep it alignment-free friendly
  auto fam = bio::EvolveFamily(ep, &rng);
  ASSERT_TRUE(fam.ok());
  auto truth = ParseNewick(fam->true_tree_newick);
  ASSERT_TRUE(truth.ok());
  auto dist = bio::KmerDistanceMatrix(fam->sequences, 3);
  ASSERT_TRUE(dist.ok());
  auto nj = BuildNeighborJoining(*dist);
  ASSERT_TRUE(nj.ok());
  auto nrf = NormalizedRobinsonFoulds(*nj, *truth);
  ASSERT_TRUE(nrf.ok());
  EXPECT_LT(*nrf, 0.6) << "NJ should recover most of the true splits";
}

INSTANTIATE_TEST_SUITE_P(Families, ReconstructionAccuracy,
                         ::testing::Range(0, 5));

TEST(BuilderDispatchTest, BuildTreeSelectsMethod) {
  auto m = Matrix({"a", "b", "c"}, {{0, 2, 6}, {2, 0, 6}, {6, 6, 0}});
  auto u = BuildTree(m, TreeMethod::kUpgma);
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(IsUltrametric(*u));
  auto nj = BuildTree(m, TreeMethod::kNeighborJoining);
  ASSERT_TRUE(nj.ok());
  EXPECT_EQ(nj->NumLeaves(), 3u);
}

TEST(BuilderTest, AllLeafNamesPreserved) {
  util::Rng rng(23);
  bio::EvolutionParams ep;
  ep.num_taxa = 20;
  auto fam = bio::EvolveFamily(ep, &rng);
  auto dist = bio::KmerDistanceMatrix(fam->sequences, 2);
  for (auto method : {TreeMethod::kUpgma, TreeMethod::kNeighborJoining}) {
    auto t = BuildTree(*dist, method);
    ASSERT_TRUE(t.ok());
    auto names = t->LeafNames();
    std::sort(names.begin(), names.end());
    std::vector<std::string> expected = dist->names();
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(names, expected);
  }
}

}  // namespace
}  // namespace phylo
}  // namespace drugtree
