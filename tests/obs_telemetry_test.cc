// Continuous-telemetry tests: TimeSeriesStore ring semantics, the
// MetricsSampler's counter-differencing / gauge / histogram / probe paths,
// the AlertEngine state machine (threshold debounce, multi-window burn
// rate), the health rollup, end-to-end server scenarios that must be
// bit-deterministic on a virtual clock, router brown-out diversion and
// recovery, and Chrome-trace export shape (per-lane timestamp monotonicity,
// alert instant placement, shard-replica lane prefixes).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/drugtree.h"
#include "obs/alerts.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace_store.h"
#include "server/server.h"
#include "shard/router.h"
#include "util/clock.h"

namespace drugtree {
namespace obs {
namespace {

// Tiny deterministic instance for the end-to-end scenarios.
core::BuildOptions TinyBuild() {
  core::BuildOptions options;
  options.seed = 77;
  options.num_families = 3;
  options.taxa_per_family = 6;
  options.sequence_length = 60;
  options.num_ligands = 60;
  return options;
}

TEST(TimeSeriesStore, RingEvictsOldestAndKeepsOrder) {
  TimeSeriesStore store(4);
  for (int i = 0; i < 6; ++i) {
    store.Observe("s", 100 * (i + 1), static_cast<double>(i));
  }
  std::vector<TimePoint> points = store.Points("s");
  ASSERT_EQ(4u, points.size());  // capacity-bounded
  EXPECT_EQ(300, points[0].t_micros);  // two oldest evicted
  EXPECT_EQ(600, points[3].t_micros);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i - 1].t_micros, points[i].t_micros);
  }
  EXPECT_EQ(6, store.total_points());  // evicted points still counted
  TimePoint latest;
  ASSERT_TRUE(store.Latest("s", &latest));
  EXPECT_EQ(600, latest.t_micros);
  EXPECT_DOUBLE_EQ(5.0, latest.value);
  EXPECT_FALSE(store.Latest("missing", &latest));
  EXPECT_EQ(1u, store.num_series());
}

TEST(TimeSeriesStore, WindowAverageIsHalfOpen) {
  TimeSeriesStore store(16);
  store.Observe("s", 100, 10.0);
  store.Observe("s", 200, 20.0);
  store.Observe("s", 300, 30.0);
  double avg = 0.0;
  // (100, 300]: the point at exactly now-window is excluded.
  ASSERT_TRUE(store.WindowAverage("s", 300, 200, &avg));
  EXPECT_DOUBLE_EQ(25.0, avg);
  ASSERT_TRUE(store.WindowAverage("s", 300, 1000, &avg));
  EXPECT_DOUBLE_EQ(20.0, avg);
  // A window with no points reads as unevaluable, not as zero.
  EXPECT_FALSE(store.WindowAverage("s", 1000, 100, &avg));
  EXPECT_FALSE(store.WindowAverage("missing", 300, 200, &avg));
}

TEST(MetricsSampler, CountersDifferenceIntoRates) {
  MetricRegistry registry;
  util::SimulatedClock clock;
  TimeSeriesStore store(16);
  SamplerOptions options;
  options.interval_micros = 1'000;
  options.registry_prefixes = {"server."};
  MetricsSampler sampler(&store, &registry, &clock, options);
  Counter* requests = registry.GetCounter("server.requests");
  Gauge* depth = registry.GetGauge("server.depth");
  HistogramMetric* lat = registry.GetHistogram("server.lat_ms");
  Counter* other = registry.GetCounter("query.other");  // prefix-filtered

  requests->Add(5);
  depth->Set(3);
  lat->Observe(10.0);
  lat->Observe(20.0);
  other->Add(99);
  ASSERT_TRUE(sampler.SampleIfDue());
  // The first sample seeds the counter baseline -- no bogus rate spike.
  EXPECT_TRUE(store.Points("server.requests.rate").empty());
  ASSERT_EQ(1u, store.Points("server.depth").size());
  EXPECT_DOUBLE_EQ(3.0, store.Points("server.depth")[0].value);
  EXPECT_EQ(1u, store.Points("server.lat_ms.p50").size());
  EXPECT_EQ(1u, store.Points("server.lat_ms.p95").size());
  EXPECT_EQ(1u, store.Points("server.lat_ms.p99").size());
  EXPECT_TRUE(store.Points("query.other.rate").empty());
  EXPECT_TRUE(store.Points("query.other").empty());

  // Debounce: no virtual time elapsed, no sample.
  EXPECT_FALSE(sampler.SampleIfDue());
  EXPECT_EQ(1, sampler.samples());

  clock.AdvanceMicros(2'000'000);
  requests->Add(10);
  ASSERT_TRUE(sampler.SampleIfDue());
  std::vector<TimePoint> rate = store.Points("server.requests.rate");
  ASSERT_EQ(1u, rate.size());
  EXPECT_DOUBLE_EQ(5.0, rate[0].value);  // +10 over 2s
  EXPECT_EQ(2, sampler.samples());
}

TEST(MetricsSampler, NanProbeSkipsThePoint) {
  MetricRegistry registry;
  util::SimulatedClock clock;
  TimeSeriesStore store(16);
  SamplerOptions options;
  options.interval_micros = 1'000;
  MetricsSampler sampler(&store, &registry, &clock, options);
  double probe_value = std::nan("");
  sampler.AddProbe("probe", [&probe_value] { return probe_value; });
  sampler.SampleNow();
  EXPECT_TRUE(store.Points("probe").empty());  // NaN = no data yet
  probe_value = 7.5;
  clock.AdvanceMicros(1'000);
  sampler.SampleNow();
  ASSERT_EQ(1u, store.Points("probe").size());
  EXPECT_DOUBLE_EQ(7.5, store.Points("probe")[0].value);
}

TEST(AlertEngine, ThresholdWithForDurationDebounce) {
  util::SimulatedClock clock;
  TimeSeriesStore store(32);
  AlertEngine engine(&store, &clock);
  AlertRule rule;
  rule.name = "hot";
  rule.series = "temp";
  rule.kind = AlertKind::kThreshold;
  rule.threshold = 10.0;
  rule.for_micros = 500;
  engine.AddRule(rule);

  // Unevaluable series (no data) reads as condition-false.
  engine.Evaluate();
  EXPECT_EQ(AlertState::kInactive, engine.Statuses()[0].state);

  store.Observe("temp", clock.NowMicros(), 5.0);
  engine.Evaluate();
  EXPECT_EQ(AlertState::kInactive, engine.Statuses()[0].state);

  clock.AdvanceMicros(100);
  store.Observe("temp", clock.NowMicros(), 20.0);
  engine.Evaluate();
  EXPECT_EQ(AlertState::kPending, engine.Statuses()[0].state);

  // 300us into the 500us debounce: still pending, not firing.
  clock.AdvanceMicros(300);
  store.Observe("temp", clock.NowMicros(), 20.0);
  engine.Evaluate();
  EXPECT_EQ(AlertState::kPending, engine.Statuses()[0].state);

  clock.AdvanceMicros(300);
  store.Observe("temp", clock.NowMicros(), 20.0);
  std::vector<AlertTransition> t = engine.Evaluate();
  ASSERT_EQ(1u, t.size());
  EXPECT_EQ(AlertState::kFiring, t[0].to);
  EXPECT_EQ(clock.NowMicros(), t[0].at_micros);
  EXPECT_EQ(1, engine.firing_count());

  clock.AdvanceMicros(100);
  store.Observe("temp", clock.NowMicros(), 5.0);
  engine.Evaluate();
  AlertStatus status = engine.Statuses()[0];
  EXPECT_EQ(AlertState::kInactive, status.state);
  EXPECT_EQ(1, status.fired);
  EXPECT_EQ(1, status.resolved);
  // History: inactive->pending, pending->firing, firing->inactive.
  EXPECT_EQ(3u, engine.History().size());
}

TEST(AlertEngine, PendingAbortsWhenConditionClears) {
  util::SimulatedClock clock;
  TimeSeriesStore store(32);
  AlertEngine engine(&store, &clock);
  AlertRule rule;
  rule.name = "hot";
  rule.series = "temp";
  rule.threshold = 10.0;
  rule.for_micros = 1'000;
  engine.AddRule(rule);
  store.Observe("temp", clock.NowMicros(), 20.0);
  engine.Evaluate();
  EXPECT_EQ(AlertState::kPending, engine.Statuses()[0].state);
  clock.AdvanceMicros(100);
  store.Observe("temp", clock.NowMicros(), 5.0);  // blip ended pre-debounce
  engine.Evaluate();
  AlertStatus status = engine.Statuses()[0];
  EXPECT_EQ(AlertState::kInactive, status.state);
  EXPECT_EQ(0, status.fired);  // never fired, so nothing to resolve
}

TEST(AlertEngine, BurnRateRequiresBothWindows) {
  util::SimulatedClock clock;
  TimeSeriesStore store(64);
  AlertEngine engine(&store, &clock);
  AlertRule rule;
  rule.name = "burn";
  rule.series = "slo.burn";
  rule.kind = AlertKind::kBurnRate;
  rule.threshold = 1.0;
  rule.short_window_micros = 200;
  rule.long_window_micros = 800;
  engine.AddRule(rule);

  // A quiet history, then a single-sample blip: the short window crosses
  // ((0 + 5) / 2 = 2.5 > 1) but the long window stays clean
  // (5 / 8 = 0.625 < 1) -- no fire.
  for (int i = 0; i < 7; ++i) {
    store.Observe("slo.burn", clock.NowMicros(), 0.0);
    clock.AdvanceMicros(100);
  }
  store.Observe("slo.burn", clock.NowMicros(), 5.0);
  engine.Evaluate();
  EXPECT_EQ(AlertState::kInactive, engine.Statuses()[0].state);

  // Sustained burn contaminates the long window too -- fires.
  int64_t fired_at = -1;
  for (int i = 0; i < 8; ++i) {
    clock.AdvanceMicros(100);
    store.Observe("slo.burn", clock.NowMicros(), 5.0);
    for (const AlertTransition& t : engine.Evaluate()) {
      if (t.to == AlertState::kFiring) fired_at = t.at_micros;
    }
  }
  EXPECT_GE(fired_at, 0) << "sustained burn never fired";
  EXPECT_EQ(AlertState::kFiring, engine.Statuses()[0].state);

  // Recovery: clean samples roll both windows back under threshold.
  for (int i = 0; i < 10; ++i) {
    clock.AdvanceMicros(100);
    store.Observe("slo.burn", clock.NowMicros(), 0.0);
    engine.Evaluate();
  }
  AlertStatus status = engine.Statuses()[0];
  EXPECT_EQ(AlertState::kInactive, status.state);
  EXPECT_EQ(1, status.fired);
  EXPECT_EQ(1, status.resolved);
}

TEST(HealthModel, RollupTakesTheWorstSubsystem) {
  AlertRule warn;
  warn.name = "w";
  warn.subsystem = "memory";
  warn.severity = AlertSeverity::kWarning;
  AlertRule crit;
  crit.name = "c";
  crit.subsystem = "serving";
  crit.severity = AlertSeverity::kCritical;

  AlertStatus firing_warn;
  firing_warn.rule = warn;
  firing_warn.state = AlertState::kFiring;
  AlertStatus firing_crit;
  firing_crit.rule = crit;
  firing_crit.state = AlertState::kFiring;
  AlertStatus idle_crit;
  idle_crit.rule = crit;
  idle_crit.state = AlertState::kInactive;

  std::vector<std::string> baseline = {"memory", "serving", "scheduler"};
  HealthSnapshot all_clear = DeriveHealth({idle_crit}, baseline);
  EXPECT_EQ(HealthState::kHealthy, all_clear.overall);
  EXPECT_EQ(3u, all_clear.subsystems.size());  // baseline always present

  HealthSnapshot degraded = DeriveHealth({firing_warn, idle_crit}, baseline);
  EXPECT_EQ(HealthState::kDegraded, degraded.overall);
  EXPECT_EQ(HealthState::kDegraded, degraded.subsystems.at("memory"));
  EXPECT_EQ(HealthState::kHealthy, degraded.subsystems.at("serving"));

  HealthSnapshot critical =
      DeriveHealth({firing_warn, firing_crit}, baseline);
  EXPECT_EQ(HealthState::kCritical, critical.overall);
  EXPECT_EQ(HealthState::kCritical, critical.subsystems.at("serving"));
  EXPECT_EQ(0u, critical.ToJson().rfind("{\"overall\":\"critical\"", 0));
}

// One serialized brown-out scenario against a fresh server; returns the
// full telemetry dump. Must be bit-identical across invocations.
struct ScenarioResult {
  std::string timeline_json;
  std::string alerts_json;
  int64_t fired = 0;
  int64_t resolved = 0;
};

ScenarioResult RunServerScenario() {
  MetricRegistry::Default()->ResetAll();  // global metrics are cumulative
  util::SimulatedClock clock;
  auto built = core::DrugTree::Build(TinyBuild(), &clock);
  EXPECT_TRUE(built.ok()) << built.status();
  auto dt = std::move(*built);

  server::ServerOptions sopts;
  sopts.worker_threads = 1;
  sopts.scheduler.total_slots = 1;
  sopts.scheduler.interactive_slots = 1;
  sopts.scheduler.analytic_slots = 1;
  sopts.interactive_slo_micros = 5'000;
  sopts.slo_window_micros = 500'000;
  sopts.telemetry.sample_interval_micros = 50'000;
  auto server = dt->MakeServer(sopts);

  size_t num_nodes = dt->tree().NumNodes();
  auto pump = [&](int n, uint64_t seed_base) {
    for (int i = 0; i < n; ++i) {
      server::QueryRequest request;
      request.session_id = 1;
      request.sql = dt->OverlayQuerySql(
          static_cast<phylo::NodeId>((seed_base + static_cast<uint64_t>(i)) %
                                     num_nodes));
      request.query_class = server::QueryClass::kInteractive;
      auto r = server->Submit(std::move(request));
      EXPECT_TRUE(r.ok()) << r.status();
      clock.AdvanceMicros(25'000);
    }
  };

  pump(6, 0);  // healthy
  EXPECT_EQ(HealthState::kHealthy, server->health());
  server->set_fault_execution_delay_micros(20'000);
  pump(6, 6);  // browned out: 20ms >> the 5ms SLO
  EXPECT_EQ(HealthState::kCritical, server->health());
  server->set_fault_execution_delay_micros(0);
  pump(30, 12);  // recovery: misses roll out of the 500ms SLO window
  server->Drain();
  EXPECT_EQ(HealthState::kHealthy, server->health());

  ScenarioResult out;
  out.timeline_json = server->timeline()->ToJson();
  out.alerts_json = server->alert_engine()->ToJson();
  for (const AlertStatus& s : server->alert_engine()->Statuses()) {
    if (s.rule.name != "interactive_burn") continue;
    out.fired = s.fired;
    out.resolved = s.resolved;
  }
  return out;
}

TEST(ServerTelemetry, BrownOutScenarioIsBitDeterministic) {
  ScenarioResult a = RunServerScenario();
  ScenarioResult b = RunServerScenario();
  EXPECT_EQ(1, a.fired);
  EXPECT_EQ(1, a.resolved);
  // Identical runs, identical telemetry: every sampled point, every alert
  // firing / resolved timestamp, byte for byte.
  EXPECT_EQ(a.timeline_json, b.timeline_json);
  EXPECT_EQ(a.alerts_json, b.alerts_json);
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_EQ(a.resolved, b.resolved);
}

TEST(ServerTelemetry, StatuszCarriesTimelineAlertsAndHealth) {
  MetricRegistry::Default()->ResetAll();
  util::SimulatedClock clock;
  auto built = core::DrugTree::Build(TinyBuild(), &clock);
  ASSERT_TRUE(built.ok()) << built.status();
  auto dt = std::move(*built);
  auto server = dt->MakeServer();
  server::QueryRequest request;
  request.session_id = 1;
  request.sql = dt->OverlayQuerySql(dt->tree().root());
  request.query_class = server::QueryClass::kInteractive;
  ASSERT_TRUE(server->Submit(std::move(request)).ok());
  server->Drain();
  std::string statusz = server->Statusz();
  EXPECT_NE(std::string::npos, statusz.find("\"timeline\":{\"enabled\":true"));
  EXPECT_NE(std::string::npos, statusz.find("\"alerts\":{\"firing\":0"));
  EXPECT_NE(std::string::npos, statusz.find("\"health\":{\"overall\":"));
  EXPECT_NE(std::string::npos, statusz.find("\"subsystems\":{"));
  EXPECT_NE(std::string::npos, statusz.find("slo.interactive.burn_rate"));
}

TEST(ServerTelemetry, DisabledTelemetryLeavesNullSurfaces) {
  MetricRegistry::Default()->ResetAll();
  util::SimulatedClock clock;
  auto built = core::DrugTree::Build(TinyBuild(), &clock);
  ASSERT_TRUE(built.ok()) << built.status();
  auto dt = std::move(*built);
  server::ServerOptions sopts;
  sopts.telemetry.enabled = false;
  auto server = dt->MakeServer(sopts);
  EXPECT_EQ(nullptr, server->timeline());
  EXPECT_EQ(nullptr, server->alert_engine());
  EXPECT_FALSE(server->TelemetryTick());
  EXPECT_EQ(HealthState::kHealthy, server->health());
  server::QueryRequest request;
  request.session_id = 1;
  request.sql = dt->OverlayQuerySql(dt->tree().root());
  request.query_class = server::QueryClass::kInteractive;
  ASSERT_TRUE(server->Submit(std::move(request)).ok());
  server->Drain();
  std::string statusz = server->Statusz();
  EXPECT_NE(std::string::npos,
            statusz.find("\"timeline\":{\"enabled\":false"));
}

// Router brown-out: replica r0 of the only shard gets a 20ms execution
// fault; its burn-rate alert fires, health flips, PickReplica diverts
// traffic to r1, and after the fault clears the alert resolves and traffic
// returns to r0 (lowest-index tie-break).
TEST(RouterHealth, BrownOutDivertsTrafficAndRecovers) {
  MetricRegistry::Default()->ResetAll();
  util::SimulatedClock clock;
  auto built = core::DrugTree::Build(TinyBuild(), &clock);
  ASSERT_TRUE(built.ok()) << built.status();
  auto dt = std::move(*built);

  shard::RouterOptions options;
  options.num_shards = 1;
  options.replicas_per_shard = 2;
  options.replica.worker_threads = 1;
  options.replica.scheduler.total_slots = 1;
  options.replica.scheduler.interactive_slots = 1;
  options.replica.scheduler.analytic_slots = 1;
  options.replica.interactive_slo_micros = 5'000;
  options.replica.slo_window_micros = 500'000;
  options.replica.telemetry.sample_interval_micros = 50'000;
  options.coordinator.worker_threads = 1;
  options.coordinator.scheduler.total_slots = 1;
  auto router_or = dt->MakeShardRouter(options);
  ASSERT_TRUE(router_or.ok()) << router_or.status();
  shard::ShardRouter* router = router_or->get();
  server::DrugTreeServer* r0 = router->replica_server(0, 0);
  server::DrugTreeServer* r1 = router->replica_server(0, 1);

  size_t num_nodes = dt->tree().NumNodes();
  uint64_t next_node = 0;
  auto submit_one = [&] {
    server::QueryRequest request;
    request.session_id = 1;
    request.sql =
        dt->OverlayQuerySql(static_cast<phylo::NodeId>(next_node++ %
                                                       num_nodes));
    request.query_class = server::QueryClass::kInteractive;
    auto r = router->Submit(std::move(request));
    ASSERT_TRUE(r.ok()) << r.status();
    clock.AdvanceMicros(25'000);
  };
  auto completed = [](server::DrugTreeServer* s) {
    return s->counters(server::QueryClass::kInteractive).completed;
  };

  // Healthy: the tie-break sends every request to the lowest index, r0.
  for (int i = 0; i < 6; ++i) submit_one();
  EXPECT_EQ(6, completed(r0));
  EXPECT_EQ(0, completed(r1));
  EXPECT_EQ(HealthState::kHealthy, r0->health());

  // Brown-out r0 and pump until its burn-rate alert flips its health.
  r0->set_fault_execution_delay_micros(20'000);
  int pumped = 0;
  while (r0->health() == HealthState::kHealthy && pumped < 24) {
    submit_one();
    ++pumped;
  }
  ASSERT_EQ(HealthState::kCritical, r0->health())
      << "brown-out never flipped r0 health (pumped " << pumped << ")";

  // Diversion: with r0 critical, every new request lands on healthy r1.
  int64_t r0_at_divert = completed(r0);
  int64_t r1_at_divert = completed(r1);
  for (int i = 0; i < 4; ++i) submit_one();
  EXPECT_EQ(r0_at_divert, completed(r0)) << "critical replica kept traffic";
  EXPECT_EQ(r1_at_divert + 4, completed(r1));

  // Statusz surfaces per-replica health inside the topology block.
  EXPECT_NE(std::string::npos,
            router->Statusz().find("\"id\":\"s0r0\",\"down\":false,"
                                   "\"health\":\"critical\""));

  // Recovery: fault off; diverted ticks keep sampling r0, the misses roll
  // out of its SLO window, the alert resolves, traffic returns to r0.
  r0->set_fault_execution_delay_micros(0);
  pumped = 0;
  while (r0->health() != HealthState::kHealthy && pumped < 48) {
    submit_one();
    ++pumped;
  }
  ASSERT_EQ(HealthState::kHealthy, r0->health())
      << "r0 never recovered (pumped " << pumped << ")";
  int64_t r0_at_recovery = completed(r0);
  for (int i = 0; i < 4; ++i) submit_one();
  EXPECT_EQ(r0_at_recovery + 4, completed(r0))
      << "traffic did not return to the recovered replica";

  // The burn alert fired and resolved exactly once on r0, never on r1.
  for (const AlertStatus& s : r0->alert_engine()->Statuses()) {
    if (s.rule.name != "interactive_burn") continue;
    EXPECT_EQ(1, s.fired);
    EXPECT_EQ(1, s.resolved);
  }
  for (const AlertStatus& s : r1->alert_engine()->Statuses()) {
    if (s.rule.name != "interactive_burn") continue;
    EXPECT_EQ(0, s.fired);
  }
  router->Drain();
}

// Chrome-trace export shape: "ph":"X" timestamps are monotone within each
// lane (tid), alert instants land on their own lane at their transition
// times, and replica lanes keep their "s<shard>r<replica>/" prefixes.
struct ParsedEvent {
  int tid = 0;
  int64_t ts = 0;
  bool instant = false;
};

std::vector<ParsedEvent> ParseEvents(const std::string& json) {
  std::vector<ParsedEvent> out;
  size_t pos = 0;
  while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
    char ph = json[pos + 6];
    size_t line_start = json.rfind('{', pos);
    size_t line_end = json.find('}', pos);
    if (ph == 'M') {  // metadata has a nested args object
      pos = line_end + 1;
      continue;
    }
    std::string line = json.substr(line_start, line_end - line_start);
    ParsedEvent ev;
    ev.instant = ph == 'i';
    size_t tid_pos = line.find("\"tid\":");
    size_t ts_pos = line.find("\"ts\":");
    EXPECT_NE(std::string::npos, tid_pos);
    EXPECT_NE(std::string::npos, ts_pos);
    ev.tid = std::stoi(line.substr(tid_pos + 6));
    ev.ts = std::stoll(line.substr(ts_pos + 5));
    out.push_back(ev);
    pos = line_end + 1;
  }
  return out;
}

TEST(ChromeTrace, LaneTimestampsMonotoneAndInstantsPlaced) {
  TraceStore store(64, /*slow_threshold_micros=*/0);
  // Two lanes of strictly ordered records plus a cross-lane interleaving.
  for (int i = 0; i < 4; ++i) {
    TraceRecord rec;
    rec.trace_id = static_cast<uint64_t>(i + 1);
    rec.lane = (i % 2 == 0) ? "slot0" : "slot1";
    rec.begin_micros = 1'000 * i;
    PhaseInterval iv;
    iv.phase = TracePhase::kExecute;
    iv.start_micros = 1'000 * i;
    iv.end_micros = 1'000 * i + 400;
    rec.intervals.push_back(iv);
    store.Record(std::move(rec));
  }
  std::vector<TraceInstant> instants;
  TraceInstant inst;
  inst.name = "alert:burn firing";
  inst.lane = "alerts";
  inst.ts_micros = 2'500;
  instants.push_back(inst);
  inst.name = "alert:burn resolved";
  inst.ts_micros = 3'500;
  instants.push_back(inst);

  std::string json = ExportChromeTrace(store.Snapshot(), instants);
  ASSERT_EQ(0u, json.rfind("{\"traceEvents\":", 0));
  EXPECT_NE(std::string::npos, json.find("\"name\":\"alerts\""));
  EXPECT_NE(std::string::npos, json.find("\"alert:burn firing\""));
  EXPECT_NE(std::string::npos,
            json.find("\"ph\":\"i\",\"s\":\"t\""));

  std::vector<ParsedEvent> events = ParseEvents(json);
  std::map<int, int64_t> last_ts;
  int instants_seen = 0;
  for (const ParsedEvent& ev : events) {
    if (ev.instant) {
      ++instants_seen;
      EXPECT_TRUE(ev.ts == 2'500 || ev.ts == 3'500);
      continue;
    }
    auto it = last_ts.find(ev.tid);
    if (it != last_ts.end()) {
      EXPECT_LE(it->second, ev.ts) << "lane tid " << ev.tid
                                   << " went backwards";
    }
    last_ts[ev.tid] = ev.ts;
  }
  EXPECT_EQ(2, instants_seen);
}

TEST(ChromeTrace, RouterExportPrefixesReplicaAlertLanes) {
  MetricRegistry::Default()->ResetAll();
  util::SimulatedClock clock;
  auto built = core::DrugTree::Build(TinyBuild(), &clock);
  ASSERT_TRUE(built.ok()) << built.status();
  auto dt = std::move(*built);

  shard::RouterOptions options;
  options.num_shards = 1;
  options.replicas_per_shard = 2;
  options.replica.worker_threads = 1;
  options.replica.scheduler.total_slots = 1;
  options.replica.interactive_slo_micros = 5'000;
  options.replica.slo_window_micros = 500'000;
  options.replica.telemetry.sample_interval_micros = 50'000;
  options.coordinator.worker_threads = 1;
  options.coordinator.scheduler.total_slots = 1;
  auto router_or = dt->MakeShardRouter(options);
  ASSERT_TRUE(router_or.ok()) << router_or.status();
  shard::ShardRouter* router = router_or->get();

  // Brown out r0 long enough to fire its burn alert, producing instants.
  router->replica_server(0, 0)->set_fault_execution_delay_micros(20'000);
  size_t num_nodes = dt->tree().NumNodes();
  for (int i = 0; i < 24; ++i) {
    server::QueryRequest request;
    request.session_id = 1;
    request.sql = dt->OverlayQuerySql(
        static_cast<phylo::NodeId>(static_cast<uint64_t>(i) % num_nodes));
    request.query_class = server::QueryClass::kInteractive;
    ASSERT_TRUE(router->Submit(std::move(request)).ok());
    clock.AdvanceMicros(25'000);
  }
  router->Drain();
  ASSERT_GT(router->replica_server(0, 0)->alert_engine()->History().size(),
            0u);

  std::string json = router->ExportChromeTrace();
  // Replica record lanes and the replica's alert lane both carry the
  // "s0r0/" prefix; the instants themselves survive the merge.
  EXPECT_NE(std::string::npos, json.find("s0r0/"));
  EXPECT_NE(std::string::npos, json.find("\"name\":\"s0r0/alerts\""));
  EXPECT_NE(std::string::npos, json.find("alert:interactive_burn firing"));

  // Per-lane monotonicity holds across the merged, prefixed export too.
  std::vector<ParsedEvent> events = ParseEvents(json);
  std::map<int, int64_t> last_ts;
  for (const ParsedEvent& ev : events) {
    if (ev.instant) continue;
    auto it = last_ts.find(ev.tid);
    if (it != last_ts.end()) {
      EXPECT_LE(it->second, ev.ts) << "merged lane tid " << ev.tid
                                   << " went backwards";
    }
    last_ts[ev.tid] = ev.ts;
  }
}

}  // namespace
}  // namespace obs
}  // namespace drugtree
