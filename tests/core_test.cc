// Core facade tests: overlay correctness, end-to-end DrugTree behaviour, the
// naive-vs-optimized equivalence property over generated workloads, and
// incremental updates.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/drugtree.h"
#include "core/workload.h"
#include "util/clock.h"

namespace drugtree {
namespace core {
namespace {

using query::PlannerOptions;
using storage::Value;

class DrugTreeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    clock_ = new util::SimulatedClock();
    BuildOptions options;
    options.seed = 99;
    options.num_families = 3;
    options.taxa_per_family = 10;
    options.sequence_length = 90;
    options.num_ligands = 120;
    auto built = DrugTree::Build(options, clock_);
    ASSERT_TRUE(built.ok()) << built.status();
    dt_ = built->release();
  }
  static void TearDownTestSuite() {
    delete dt_;
    dt_ = nullptr;
    delete clock_;
    clock_ = nullptr;
  }

  static util::SimulatedClock* clock_;
  static DrugTree* dt_;
};

util::SimulatedClock* DrugTreeTest::clock_ = nullptr;
DrugTree* DrugTreeTest::dt_ = nullptr;

TEST_F(DrugTreeTest, BuildWiresEverything) {
  EXPECT_EQ(dt_->tree().NumLeaves(), 30u);
  EXPECT_EQ(dt_->overlay()->proteins()->NumRows(), 30);
  EXPECT_EQ(dt_->ligands()->NumRows(), 120);
  EXPECT_GT(dt_->activities()->NumRows(), 0);
  EXPECT_EQ(dt_->overlay()->tree_nodes()->NumRows(),
            static_cast<int64_t>(dt_->tree().NumNodes()));
  EXPECT_EQ(dt_->overlay()->node_overlay()->NumRows(),
            static_cast<int64_t>(dt_->tree().NumNodes()));
}

TEST_F(DrugTreeTest, EveryProteinMapsToALeaf) {
  auto* proteins = dt_->overlay()->proteins();
  auto node_col = *proteins->schema().IndexOf("node_id");
  auto acc_col = *proteins->schema().IndexOf("accession");
  for (auto rid : proteins->LiveRows()) {
    const auto& row = proteins->row(rid);
    ASSERT_FALSE(row[node_col].is_null());
    auto node = static_cast<phylo::NodeId>(row[node_col].AsInt64());
    EXPECT_TRUE(dt_->tree().node(node).IsLeaf());
    EXPECT_EQ(dt_->tree().node(node).name, row[acc_col].AsString());
  }
}

TEST_F(DrugTreeTest, OverlayAggregatesMatchBruteForce) {
  // Recompute per-node activity counts by brute force over the activities
  // table and the tree, then compare with the overlay.
  auto* acts = dt_->activities();
  auto acc_col = *acts->schema().IndexOf("accession");
  std::map<std::string, int64_t> per_leaf;
  for (auto rid : acts->LiveRows()) {
    ++per_leaf[acts->row(rid)[acc_col].AsString()];
  }
  const auto& index = dt_->tree_index();
  const auto& aggs = dt_->overlay()->aggregates();
  for (size_t i = 0; i < dt_->tree().NumNodes(); ++i) {
    auto id = static_cast<phylo::NodeId>(i);
    int64_t expected = 0;
    for (phylo::NodeId n : index.SubtreeNodes(id)) {
      if (!dt_->tree().node(n).IsLeaf()) continue;
      auto it = per_leaf.find(dt_->tree().node(n).name);
      if (it != per_leaf.end()) expected += it->second;
    }
    EXPECT_EQ(aggs[i].activity_count, expected) << "node " << id;
  }
}

TEST_F(DrugTreeTest, OverlayBestAffinityIsSubtreeMinimum) {
  auto* acts = dt_->activities();
  auto acc_col = *acts->schema().IndexOf("accession");
  auto aff_col = *acts->schema().IndexOf("affinity_nm");
  std::map<std::string, double> best_per_leaf;
  for (auto rid : acts->LiveRows()) {
    const auto& row = acts->row(rid);
    auto [it, inserted] =
        best_per_leaf.emplace(row[acc_col].AsString(), row[aff_col].AsDouble());
    if (!inserted) it->second = std::min(it->second, row[aff_col].AsDouble());
  }
  const auto& aggs = dt_->overlay()->aggregates();
  phylo::NodeId root = dt_->tree().root();
  double global_best = 1e18;
  for (const auto& [acc, best] : best_per_leaf) {
    global_best = std::min(global_best, best);
  }
  EXPECT_NEAR(aggs[static_cast<size_t>(root)].best_affinity_nm, global_best,
              1e-9);
}

TEST_F(DrugTreeTest, SubtreeQueryReturnsExactlyCladeProteins) {
  // Pick an internal node and compare the query result against TreeIndex.
  phylo::NodeId clade = dt_->tree().node(dt_->tree().root()).children[0];
  auto outcome = dt_->Query(
      "SELECT p.accession FROM proteins p WHERE SUBTREE(p.node_id, " +
      std::to_string(clade) + ") ORDER BY p.accession");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  std::vector<std::string> expected;
  for (phylo::NodeId n : dt_->tree_index().SubtreeNodes(clade)) {
    if (dt_->tree().node(n).IsLeaf()) expected.push_back(dt_->tree().node(n).name);
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(outcome->result.rows.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(outcome->result.rows[i][0].AsString(), expected[i]);
  }
}

TEST_F(DrugTreeTest, WorkloadQueriesAgreeAcrossPlans) {
  WorkloadParams wp;
  wp.num_queries = 20;
  util::Rng rng(5);
  auto workload =
      GenerateWorkload(dt_->tree(), dt_->tree_index(), wp, &rng);
  ASSERT_EQ(workload.size(), 20u);
  for (const auto& q : workload) {
    auto naive = dt_->Query(q.sql, PlannerOptions::Naive());
    auto fast = dt_->Query(q.sql, PlannerOptions::Optimized());
    ASSERT_TRUE(naive.ok()) << q.sql << ": " << naive.status();
    ASSERT_TRUE(fast.ok()) << q.sql << ": " << fast.status();
    ASSERT_EQ(naive->result.rows.size(), fast->result.rows.size()) << q.sql;
    for (size_t i = 0; i < naive->result.rows.size(); ++i) {
      EXPECT_EQ(naive->result.rows[i], fast->result.rows[i])
          << q.sql << " row " << i;
    }
  }
}

TEST_F(DrugTreeTest, OptimizedSubtreePlanTouchesFewerRows) {
  phylo::NodeId clade = dt_->tree().node(dt_->tree().root()).children[0];
  std::string sql =
      "SELECT o.node_id FROM node_overlay o WHERE SUBTREE(o.node_id, " +
      std::to_string(clade) + ")";
  auto naive = dt_->Query(sql, PlannerOptions::Naive());
  auto fast = dt_->Query(sql, PlannerOptions::Optimized());
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(fast.ok());
  // Naive scans every overlay row; optimized fetches only the interval.
  EXPECT_EQ(naive->stats.rows_scanned,
            static_cast<int64_t>(dt_->tree().NumNodes()));
  EXPECT_EQ(fast->stats.rows_scanned, 0);
  EXPECT_EQ(fast->stats.rows_index_fetched,
            static_cast<int64_t>(fast->result.rows.size()));
}

TEST_F(DrugTreeTest, MakeTraceAndSessionEndToEnd) {
  mobile::TraceParams tp;
  tp.num_actions = 12;
  auto trace = dt_->MakeTrace(tp, 17);
  ASSERT_EQ(trace.size(), 12u);
  mobile::SessionOptions sopts;
  auto session = dt_->MakeSession(mobile::DeviceProfile::TabletWifi(), sopts,
                                  PlannerOptions::Optimized());
  auto report = session.Run(trace);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->latency_ms.count(), 12);
  EXPECT_GT(report->bytes_shipped, 0u);
}

TEST_F(DrugTreeTest, QueryErrorsPropagate) {
  EXPECT_TRUE(dt_->Query("SELECT nope FROM proteins p").status().IsNotFound());
  EXPECT_TRUE(dt_->Query("garbage").status().IsParseError());
}

// Separate fixture (non-shared instance) for mutation tests.
class DrugTreeMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BuildOptions options;
    options.seed = 7;
    options.num_families = 2;
    options.taxa_per_family = 6;
    options.sequence_length = 70;
    options.num_ligands = 40;
    auto built = DrugTree::Build(options, &clock_);
    ASSERT_TRUE(built.ok()) << built.status();
    dt_ = std::move(*built);
  }

  util::SimulatedClock clock_;
  std::unique_ptr<DrugTree> dt_;
};

TEST_F(DrugTreeMutationTest, AddActivityUpdatesPathAggregates) {
  auto leaf = dt_->tree().Leaves()[2];
  const std::string acc = dt_->tree().node(leaf).name;
  const auto& index = dt_->tree_index();
  std::vector<int64_t> before;
  for (size_t i = 0; i < dt_->tree().NumNodes(); ++i) {
    before.push_back(dt_->overlay()->aggregates()[i].activity_count);
  }
  ASSERT_TRUE(dt_->AddActivity(acc, "L000001", 2.5).ok());
  for (size_t i = 0; i < dt_->tree().NumNodes(); ++i) {
    auto id = static_cast<phylo::NodeId>(i);
    int64_t expected = before[i] + (index.IsAncestor(id, leaf) ? 1 : 0);
    EXPECT_EQ(dt_->overlay()->aggregates()[i].activity_count, expected)
        << "node " << id;
  }
  // Strong new binder becomes the subtree best along the path.
  EXPECT_DOUBLE_EQ(dt_->overlay()
                       ->aggregates()[static_cast<size_t>(leaf)]
                       .best_affinity_nm,
                   2.5);
}

TEST_F(DrugTreeMutationTest, AddActivityInvalidatesResultCache) {
  PlannerOptions opts = PlannerOptions::Optimized();
  opts.use_result_cache = true;
  const char* sql = "SELECT COUNT(*) AS n FROM activities a";
  auto first = dt_->Query(sql, opts);
  ASSERT_TRUE(first.ok());
  auto cached = dt_->Query(sql, opts);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_result_cache);
  auto leaf_name = dt_->tree().node(dt_->tree().Leaves()[0]).name;
  ASSERT_TRUE(dt_->AddActivity(leaf_name, "L000002", 10.0).ok());
  auto after = dt_->Query(sql, opts);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->from_result_cache);
  EXPECT_EQ(after->result.rows[0][0].AsInt64(),
            first->result.rows[0][0].AsInt64() + 1);
}

TEST_F(DrugTreeMutationTest, AddActivityUnknownAccessionFails) {
  EXPECT_TRUE(dt_->AddActivity("NOPE", "L000001", 5.0).IsNotFound());
  EXPECT_TRUE(dt_->AddActivity(dt_->tree().node(dt_->tree().Leaves()[0]).name,
                               "L000001", -1.0)
                  .IsInvalidArgument());
}

TEST_F(DrugTreeMutationTest, MaterializeOverlayReflectsUpdates) {
  auto leaf = dt_->tree().Leaves()[0];
  const std::string acc = dt_->tree().node(leaf).name;
  ASSERT_TRUE(dt_->AddActivity(acc, "L000003", 1.5).ok());
  ASSERT_TRUE(dt_->overlay()->MaterializeOverlayTable().ok());
  auto* overlay = dt_->overlay()->node_overlay();
  auto rows = overlay->IndexLookup("node_id", Value::Int64(leaf));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  auto best_col = *overlay->schema().IndexOf("best_affinity_nm");
  EXPECT_DOUBLE_EQ(overlay->row((*rows)[0])[best_col].AsDouble(), 1.5);
}

TEST(WorkloadTest, GenerationDeterministicAndWellFormed) {
  util::SimulatedClock clock;
  BuildOptions options;
  options.seed = 3;
  options.num_families = 2;
  options.taxa_per_family = 5;
  options.num_ligands = 30;
  auto dt = DrugTree::Build(options, &clock);
  ASSERT_TRUE(dt.ok());
  WorkloadParams wp;
  wp.num_queries = 25;
  util::Rng r1(9), r2(9);
  auto w1 = GenerateWorkload((*dt)->tree(), (*dt)->tree_index(), wp, &r1);
  auto w2 = GenerateWorkload((*dt)->tree(), (*dt)->tree_index(), wp, &r2);
  ASSERT_EQ(w1.size(), 25u);
  for (size_t i = 0; i < w1.size(); ++i) {
    EXPECT_EQ(w1[i].sql, w2[i].sql);
    EXPECT_FALSE(w1[i].sql.empty());
  }
  // Every generated query must at least plan and execute.
  for (const auto& q : w1) {
    auto outcome = (*dt)->Query(q.sql);
    EXPECT_TRUE(outcome.ok()) << q.sql << ": " << outcome.status();
  }
}

}  // namespace
}  // namespace core
}  // namespace drugtree
