// Morsel-parallel query execution: parallel seq-scan filtering, the
// partitioned-hash-join build, and the parallel Tanimoto scan must all
// return results identical to their serial counterparts, at any
// parallelism.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chem/fingerprint.h"
#include "chem/similarity.h"
#include "obs/metrics.h"
#include "query/planner.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace drugtree {
namespace query {
namespace {

using storage::Row;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

constexpr int kMeasurements = 6000;  // > 2 morsels so the parallel path runs
constexpr int kCompounds = 3000;

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(7);
    auto mschema = Schema::Create({{"cid", ValueType::kInt64, false},
                                   {"aff", ValueType::kDouble, false},
                                   {"grp", ValueType::kInt64, false}});
    measurements_ = std::make_unique<Table>("measurements", *mschema);
    for (int i = 0; i < kMeasurements; ++i) {
      ASSERT_TRUE(measurements_
                      ->Insert({Value::Int64(static_cast<int64_t>(
                                    rng.Uniform(kCompounds))),
                                Value::Double(rng.UniformDouble(1.0, 1000.0)),
                                Value::Int64(i % 17)})
                      .ok());
    }
    auto cschema = Schema::Create({{"cid", ValueType::kInt64, false},
                                   {"mw", ValueType::kDouble, false}});
    compounds_ = std::make_unique<Table>("compounds", *cschema);
    for (int i = 0; i < kCompounds; ++i) {
      ASSERT_TRUE(compounds_
                      ->Insert({Value::Int64(i),
                                Value::Double(rng.UniformDouble(100.0, 600.0))})
                      .ok());
    }
    ASSERT_TRUE(measurements_->Analyze().ok());
    ASSERT_TRUE(compounds_->Analyze().ok());
    ASSERT_TRUE(catalog_.Register(measurements_.get()).ok());
    ASSERT_TRUE(catalog_.Register(compounds_.get()).ok());
    planner_ = std::make_unique<Planner>(&catalog_);
  }

  QueryResult Run(const std::string& sql, int parallelism) {
    PlannerOptions opts;
    opts.parallelism = parallelism;
    auto outcome = planner_->Run(sql, opts);
    EXPECT_TRUE(outcome.ok()) << sql << ": " << outcome.status();
    last_stats_ = outcome.ok() ? outcome->stats : ExecStats{};
    return outcome.ok() ? outcome->result : QueryResult{};
  }

  static void ExpectSameRows(const QueryResult& a, const QueryResult& b) {
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (size_t i = 0; i < a.rows.size(); ++i) {
      ASSERT_EQ(a.rows[i].size(), b.rows[i].size()) << "row " << i;
      for (size_t c = 0; c < a.rows[i].size(); ++c) {
        EXPECT_EQ(a.rows[i][c].Compare(b.rows[i][c]), 0)
            << "row " << i << " col " << c;
      }
    }
  }

  std::unique_ptr<Table> measurements_, compounds_;
  Catalog catalog_;
  std::unique_ptr<Planner> planner_;
  ExecStats last_stats_;
};

TEST_F(ParallelExecTest, ParallelScanMatchesSerial) {
  const std::string sql =
      "SELECT m.cid, m.aff FROM measurements m WHERE m.aff < 250.0";
  auto serial = Run(sql, 1);
  ExecStats serial_stats = last_stats_;
  int64_t morsels_before = obs::MetricRegistry::Default()
                               ->GetCounter("query.parallel.morsels")
                               ->Value();
  for (int workers : {2, 4, 8}) {
    auto parallel = Run(sql, workers);
    ExpectSameRows(serial, parallel);
    EXPECT_EQ(last_stats_.rows_scanned, serial_stats.rows_scanned);
    EXPECT_EQ(last_stats_.predicate_evals, serial_stats.predicate_evals);
  }
  int64_t morsels_after = obs::MetricRegistry::Default()
                              ->GetCounter("query.parallel.morsels")
                              ->Value();
  EXPECT_GT(morsels_after, morsels_before);  // the parallel path really ran
}

TEST_F(ParallelExecTest, ParallelHashJoinMatchesSerial) {
  // compounds (3000 rows) lands on the build side; > 2 morsels.
  const std::string sql =
      "SELECT m.cid, c.mw, m.aff FROM measurements m JOIN compounds c "
      "ON m.cid = c.cid WHERE m.aff < 500.0 ORDER BY m.aff, m.cid";
  auto serial = Run(sql, 1);
  EXPECT_GT(serial.rows.size(), 0u);
  for (int workers : {2, 4}) {
    auto parallel = Run(sql, workers);
    ExpectSameRows(serial, parallel);
    EXPECT_EQ(last_stats_.rows_joined, serial.rows.empty() ? 0 : last_stats_.rows_joined);
  }
}

TEST_F(ParallelExecTest, ParallelAggregateOverJoinMatchesSerial) {
  const std::string sql =
      "SELECT m.grp, COUNT(*) AS n, AVG(m.aff) AS mean FROM measurements m "
      "JOIN compounds c ON m.cid = c.cid GROUP BY m.grp ORDER BY m.grp";
  auto serial = Run(sql, 1);
  ASSERT_EQ(serial.rows.size(), 17u);
  auto parallel = Run(sql, 4);
  ExpectSameRows(serial, parallel);
}

TEST_F(ParallelExecTest, UnfilteredScanStaysSerial) {
  // No predicate: nothing to parallelize; both paths must agree anyway.
  const std::string sql = "SELECT m.cid FROM measurements m";
  auto serial = Run(sql, 1);
  auto parallel = Run(sql, 4);
  ExpectSameRows(serial, parallel);
}

TEST(ParallelSimilarityTest, ParallelThresholdScanMatchesSerial) {
  constexpr int kBits = 256;
  constexpr int kMols = 4000;
  util::Rng rng(11);
  chem::SimilarityIndex index(kBits);
  std::vector<chem::Fingerprint> fps;
  for (int i = 0; i < kMols; ++i) {
    chem::Fingerprint fp(kBits);
    int set = 20 + static_cast<int>(rng.Uniform(80));
    for (int b = 0; b < set; ++b) {
      fp.SetBit(static_cast<int>(rng.Uniform(kBits)));
    }
    ASSERT_TRUE(index.Add(i, fp).ok());
    fps.push_back(std::move(fp));
  }
  util::ThreadPool pool(3);
  for (double threshold : {0.2, 0.4, 0.7}) {
    for (int q = 0; q < 5; ++q) {
      auto serial = index.SearchThreshold(fps[static_cast<size_t>(q * 111)],
                                          threshold);
      auto parallel = index.SearchThresholdParallel(
          fps[static_cast<size_t>(q * 111)], threshold, &pool);
      ASSERT_TRUE(serial.ok());
      ASSERT_TRUE(parallel.ok());
      ASSERT_EQ(serial->size(), parallel->size())
          << "threshold " << threshold << " query " << q;
      for (size_t i = 0; i < serial->size(); ++i) {
        EXPECT_EQ((*serial)[i].id, (*parallel)[i].id);
        EXPECT_DOUBLE_EQ((*serial)[i].similarity, (*parallel)[i].similarity);
      }
    }
  }
}

TEST(ParallelSimilarityTest, NullPoolFallsBackToSerial) {
  chem::SimilarityIndex index(64);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    chem::Fingerprint fp(64);
    for (int b = 0; b < 12; ++b) fp.SetBit(static_cast<int>(rng.Uniform(64)));
    ASSERT_TRUE(index.Add(i, fp).ok());
  }
  chem::Fingerprint q(64);
  for (int b = 0; b < 12; ++b) q.SetBit(b);
  auto serial = index.SearchThreshold(q, 0.3);
  auto fallback = index.SearchThresholdParallel(q, 0.3, nullptr);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(serial->size(), fallback->size());
}

}  // namespace
}  // namespace query
}  // namespace drugtree
