#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace drugtree {
namespace util {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(19);
  const uint64_t n = 50;
  int first = 0, last = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Zipf(n, 1.0);
    EXPECT_LT(v, n);
    if (v == 0) ++first;
    if (v == n - 1) ++last;
  }
  EXPECT_GT(first, 10 * std::max(last, 1));
}

TEST(RngTest, ZipfZeroThetaIsUniformish) {
  Rng rng(21);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 350);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(23);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 20000; ++i) {
    size_t idx = rng.WeightedIndex(w);
    ASSERT_LT(idx, 2u);
    ones += idx == 1;
  }
  EXPECT_NEAR(double(ones) / 20000, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  auto orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(37);
  Rng child1 = a.Fork();
  Rng b(37);
  Rng child2 = b.Fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1.Next(), child2.Next());
}

}  // namespace
}  // namespace util
}  // namespace drugtree
