#include <gtest/gtest.h>

#include "query/lexer.h"
#include "query/parser.h"

namespace drugtree {
namespace query {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("SELECT a.b, c FROM t WHERE x >= 3.5 AND y = 'hi'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "a.b");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Lex("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto tokens = Lex("42 3.5 1e3 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInteger);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[1].float_value, 3.5);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[2].float_value, 1000.0);
  EXPECT_EQ((*tokens)[3].int_value, 7);
}

TEST(LexerTest, StringsWithEscapedQuotes) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Lex("<= >= <> !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "<=");
  EXPECT_EQ((*tokens)[1].text, ">=");
  EXPECT_EQ((*tokens)[2].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<>");  // != normalizes
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Lex("'unterminated").status().IsParseError());
  EXPECT_TRUE(Lex("a @ b").status().IsParseError());
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = ParseQuery("SELECT a FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select.size(), 1u);
  EXPECT_EQ(stmt->tables.size(), 1u);
  EXPECT_EQ(stmt->tables[0].table, "t");
  EXPECT_EQ(stmt->tables[0].alias, "t");
  EXPECT_EQ(stmt->where, nullptr);
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseQuery("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select[0].star);
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto stmt = ParseQuery("SELECT a AS x, b y FROM t1 AS u, t2 v");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select[0].alias, "x");
  EXPECT_EQ(stmt->select[1].alias, "y");
  EXPECT_EQ(stmt->tables[0].alias, "u");
  EXPECT_EQ(stmt->tables[1].alias, "v");
}

TEST(ParserTest, JoinOnFoldsIntoWhere) {
  auto stmt = ParseQuery(
      "SELECT p.a FROM proteins p JOIN activities a ON p.acc = a.acc "
      "WHERE a.x < 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->tables.size(), 2u);
  ASSERT_NE(stmt->where, nullptr);
  // The fold produces (a.x < 5) AND (p.acc = a.acc).
  auto conjuncts = SplitConjuncts(stmt->where);
  EXPECT_EQ(conjuncts.size(), 2u);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseQuery("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
  ASSERT_TRUE(stmt.ok());
  // OR binds loosest: (x=1) OR ((y=2) AND (z=3)).
  EXPECT_EQ(stmt->where->bin_op, BinaryOp::kOr);
  EXPECT_EQ(stmt->where->children[1]->bin_op, BinaryOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = ParseQuery("SELECT a + b * c FROM t");
  ASSERT_TRUE(stmt.ok());
  const Expr& e = *stmt->select[0].expr;
  EXPECT_EQ(e.bin_op, BinaryOp::kAdd);
  EXPECT_EQ(e.children[1]->bin_op, BinaryOp::kMul);
}

TEST(ParserTest, ParensOverridePrecedence) {
  auto stmt = ParseQuery("SELECT (a + b) * c FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select[0].expr->bin_op, BinaryOp::kMul);
}

TEST(ParserTest, NotAndUnaryMinus) {
  auto stmt = ParseQuery("SELECT a FROM t WHERE NOT x = -1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->kind, ExprKind::kUnary);
  EXPECT_EQ(stmt->where->un_op, UnaryOp::kNot);
}

TEST(ParserTest, FunctionsAndCountStar) {
  auto stmt = ParseQuery(
      "SELECT COUNT(*), SUM(x), SUBTREE(p.node, 'n1') FROM t GROUP BY y");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select[0].expr->function, "COUNT");
  EXPECT_TRUE(stmt->select[0].expr->children.empty());
  EXPECT_EQ(stmt->select[1].expr->function, "SUM");
  EXPECT_EQ(stmt->select[2].expr->function, "SUBTREE");
  EXPECT_EQ(stmt->select[2].expr->children.size(), 2u);
  EXPECT_EQ(stmt->group_by.size(), 1u);
}

TEST(ParserTest, IsNullAndIsNotNull) {
  auto s1 = ParseQuery("SELECT a FROM t WHERE x IS NULL");
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->where->function, "IS_NULL");
  auto s2 = ParseQuery("SELECT a FROM t WHERE x IS NOT NULL");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->where->un_op, UnaryOp::kNot);
  EXPECT_EQ(s2->where->children[0]->function, "IS_NULL");
}

TEST(ParserTest, OrderByAndLimit) {
  auto stmt = ParseQuery(
      "SELECT a FROM t ORDER BY a DESC, b ASC, c LIMIT 10;");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->order_by.size(), 3u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
  EXPECT_TRUE(stmt->order_by[2].ascending);
  ASSERT_TRUE(stmt->limit.has_value());
  EXPECT_EQ(*stmt->limit, 10);
}

TEST(ParserTest, Literals) {
  auto stmt = ParseQuery(
      "SELECT a FROM t WHERE b = TRUE AND c = FALSE AND d = NULL AND "
      "e = 'str'");
  ASSERT_TRUE(stmt.ok());
}

TEST(ParserTest, Errors) {
  EXPECT_TRUE(ParseQuery("").status().IsParseError());
  EXPECT_TRUE(ParseQuery("SELECT FROM t").status().IsParseError());
  EXPECT_TRUE(ParseQuery("SELECT a").status().IsParseError());
  EXPECT_TRUE(ParseQuery("SELECT a FROM").status().IsParseError());
  EXPECT_TRUE(ParseQuery("SELECT a FROM t WHERE").status().IsParseError());
  EXPECT_TRUE(ParseQuery("SELECT a FROM t LIMIT x").status().IsParseError());
  EXPECT_TRUE(ParseQuery("SELECT a FROM t extra junk w").status().IsParseError());
  EXPECT_TRUE(
      ParseQuery("SELECT a FROM t JOIN u").status().IsParseError());  // no ON
  EXPECT_TRUE(ParseQuery("SELECT f( FROM t").status().IsParseError());
}

TEST(ParserTest, CanonicalToStringStable) {
  auto s1 = ParseQuery("select  a.x  from  t  a where a.x<5 limit 3");
  ASSERT_TRUE(s1.ok());
  auto s2 = ParseQuery(s1->ToString());
  ASSERT_TRUE(s2.ok()) << s1->ToString();
  EXPECT_EQ(s1->ToString(), s2->ToString());
}

TEST(ExprTest, SplitAndCombineConjuncts) {
  auto stmt = ParseQuery("SELECT a FROM t WHERE x = 1 AND y = 2 AND z = 3");
  ASSERT_TRUE(stmt.ok());
  auto parts = SplitConjuncts(stmt->where);
  EXPECT_EQ(parts.size(), 3u);
  auto combined = CombineConjuncts(parts);
  EXPECT_EQ(SplitConjuncts(combined).size(), 3u);
  EXPECT_EQ(CombineConjuncts({}), nullptr);
}

TEST(ExprTest, CloneIsDeep) {
  auto stmt = ParseQuery("SELECT a FROM t WHERE x = 1");
  auto clone = stmt->where->Clone();
  clone->children[0]->column = "changed";
  EXPECT_EQ(stmt->where->children[0]->column, "x");
}

TEST(ExprTest, CollectColumnsDeduplicates) {
  auto stmt = ParseQuery("SELECT a FROM t WHERE x = 1 AND x = 2 AND y = 3");
  std::vector<std::string> cols;
  stmt->where->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"x", "y"}));
}

TEST(ExprTest, AggregateDetection) {
  auto stmt = ParseQuery("SELECT COUNT(*), a + 1 FROM t GROUP BY a");
  EXPECT_TRUE(stmt->select[0].expr->IsAggregate());
  EXPECT_TRUE(stmt->select[0].expr->ContainsAggregate());
  EXPECT_FALSE(stmt->select[1].expr->IsAggregate());
  EXPECT_FALSE(stmt->select[1].expr->ContainsAggregate());
}

}  // namespace
}  // namespace query
}  // namespace drugtree
