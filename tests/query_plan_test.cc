// Logical planning and optimizer-rule tests.

#include <gtest/gtest.h>

#include "phylo/newick.h"
#include "query/logical_plan.h"
#include "query/parser.h"
#include "query/rules.h"

namespace drugtree {
namespace query {
namespace {

using storage::IndexKind;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto pschema = Schema::Create({{"acc", ValueType::kString, false},
                                   {"family", ValueType::kString, false},
                                   {"node_id", ValueType::kInt64, true},
                                   {"pre", ValueType::kInt64, true}});
    ASSERT_TRUE(pschema.ok());
    proteins_ = std::make_unique<Table>("proteins", *pschema);
    auto aschema = Schema::Create({{"acc", ValueType::kString, false},
                                   {"lig", ValueType::kString, false},
                                   {"aff", ValueType::kDouble, false}});
    ASSERT_TRUE(aschema.ok());
    activities_ = std::make_unique<Table>("activities", *aschema);
    auto lschema = Schema::Create({{"lig", ValueType::kString, false},
                                   {"mw", ValueType::kDouble, false}});
    ASSERT_TRUE(lschema.ok());
    ligands_ = std::make_unique<Table>("ligands", *lschema);

    // Tree ((a,b)x,c)r with the standard numbering.
    auto t = phylo::ParseNewick("((a,b)x,c)r;");
    ASSERT_TRUE(t.ok());
    tree_ = std::move(*t);
    auto idx = phylo::TreeIndex::Build(tree_);
    ASSERT_TRUE(idx.ok());
    index_ = std::make_unique<phylo::TreeIndex>(std::move(*idx));

    for (auto leaf : tree_.Leaves()) {
      ASSERT_TRUE(proteins_
                      ->Insert({Value::String(tree_.node(leaf).name),
                                Value::String("fam"), Value::Int64(leaf),
                                Value::Int64(index_->Pre(leaf))})
                      .ok());
    }
    ASSERT_TRUE(activities_
                    ->Insert({Value::String("a"), Value::String("L1"),
                              Value::Double(10)})
                    .ok());
    ASSERT_TRUE(ligands_->Insert({Value::String("L1"), Value::Double(300)}).ok());
    ASSERT_TRUE(proteins_->Analyze().ok());
    ASSERT_TRUE(activities_->Analyze().ok());
    ASSERT_TRUE(ligands_->Analyze().ok());

    ASSERT_TRUE(catalog_.Register(proteins_.get()).ok());
    ASSERT_TRUE(catalog_.Register(activities_.get()).ok());
    ASSERT_TRUE(catalog_.Register(ligands_.get()).ok());
    catalog_.SetTree(&tree_, index_.get());
    ASSERT_TRUE(catalog_.BindTree("proteins", {"node_id", "pre", ""}).ok());
  }

  LogicalPtr Build(const std::string& sql) {
    auto stmt = ParseQuery(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    auto plan = BuildLogicalPlan(*stmt, catalog_);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return *plan;
  }

  LogicalPtr Optimize(const std::string& sql,
                      OptimizerOptions opts = OptimizerOptions::AllOn()) {
    auto plan = Build(sql);
    auto optimized = OptimizeLogicalPlan(plan, catalog_, opts);
    EXPECT_TRUE(optimized.ok()) << optimized.status();
    return *optimized;
  }

  std::unique_ptr<Table> proteins_, activities_, ligands_;
  phylo::Tree tree_;
  std::unique_ptr<phylo::TreeIndex> index_;
  Catalog catalog_;
};

TEST_F(PlanTest, BuildShapeSimpleSelect) {
  auto plan = Build("SELECT p.acc FROM proteins p WHERE p.family = 'fam'");
  // Project(Filter(Scan)).
  EXPECT_EQ(plan->kind, LogicalKind::kProject);
  EXPECT_EQ(plan->children[0]->kind, LogicalKind::kFilter);
  EXPECT_EQ(plan->children[0]->children[0]->kind, LogicalKind::kScan);
}

TEST_F(PlanTest, BuildShapeJoinAggregateSortLimit) {
  auto plan = Build(
      "SELECT p.family, COUNT(*) AS n FROM proteins p "
      "JOIN activities a ON p.acc = a.acc GROUP BY p.family "
      "ORDER BY n DESC LIMIT 5");
  EXPECT_EQ(plan->kind, LogicalKind::kLimit);
  EXPECT_EQ(plan->children[0]->kind, LogicalKind::kSort);
  EXPECT_EQ(plan->children[0]->children[0]->kind, LogicalKind::kProject);
  EXPECT_EQ(plan->children[0]->children[0]->children[0]->kind,
            LogicalKind::kAggregate);
}

TEST_F(PlanTest, StarExpandsToAllColumns) {
  auto plan = Build("SELECT * FROM proteins p");
  EXPECT_EQ(plan->schema.NumColumns(), 4u);
  EXPECT_EQ(plan->schema.column(0).name, "p.acc");
}

TEST_F(PlanTest, UnknownTableRejected) {
  auto stmt = ParseQuery("SELECT x FROM nope");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(BuildLogicalPlan(*stmt, catalog_).status().IsNotFound());
}

TEST_F(PlanTest, DuplicateAliasRejected) {
  auto stmt = ParseQuery("SELECT a.acc FROM proteins a, activities a");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(BuildLogicalPlan(*stmt, catalog_).status().IsInvalidArgument());
}

TEST_F(PlanTest, NonGroupedSelectItemRejected) {
  auto stmt =
      ParseQuery("SELECT p.acc, COUNT(*) FROM proteins p GROUP BY p.family");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(BuildLogicalPlan(*stmt, catalog_).status().IsInvalidArgument());
}

TEST_F(PlanTest, PushdownMovesPredicateIntoScan) {
  auto plan = Optimize(
      "SELECT p.acc FROM proteins p JOIN activities a ON p.acc = a.acc "
      "WHERE p.family = 'fam' AND a.aff < 100");
  // Find the scans; both must carry their single-table conjunct.
  std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("Scan proteins AS p [pred:"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("Scan activities AS a [pred:"), std::string::npos)
      << rendered;
}

TEST_F(PlanTest, PushdownDisabledKeepsFilterAbove) {
  OptimizerOptions opts = OptimizerOptions::AllOff();
  auto plan = Optimize(
      "SELECT p.acc FROM proteins p WHERE p.family = 'fam'", opts);
  std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("Filter"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("[pred:"), std::string::npos) << rendered;
}

TEST_F(PlanTest, TreeRewriteReplacesSubtreeWithInterval) {
  auto plan = Optimize(
      "SELECT p.acc FROM proteins p WHERE SUBTREE(p.node_id, 'x')");
  std::string rendered = plan->ToString();
  EXPECT_EQ(rendered.find("SUBTREE"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("p.pre"), std::string::npos) << rendered;
  // x subtree: pre in [1, 3].
  EXPECT_NE(rendered.find(">= 1"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("<= 3"), std::string::npos) << rendered;
}

TEST_F(PlanTest, TreeRewriteDisabledKeepsFunction) {
  OptimizerOptions opts;
  opts.enable_tree_rewrite = false;
  auto plan = Optimize(
      "SELECT p.acc FROM proteins p WHERE SUBTREE(p.node_id, 'x')", opts);
  EXPECT_NE(plan->ToString().find("SUBTREE"), std::string::npos);
}

TEST_F(PlanTest, TreeRewriteUnknownNodeFails) {
  auto plan = Build("SELECT p.acc FROM proteins p WHERE SUBTREE(p.node_id, 'zz')");
  auto optimized =
      OptimizeLogicalPlan(plan, catalog_, OptimizerOptions::AllOn());
  EXPECT_TRUE(optimized.status().IsNotFound());
}

TEST_F(PlanTest, TreeRewriteLeavesUnboundTablesAlone) {
  // activities has no tree binding: SUBTREE on it survives (runtime eval).
  auto plan = Optimize(
      "SELECT a.acc FROM activities a WHERE SUBTREE(a.acc, 'x')");
  EXPECT_NE(plan->ToString().find("SUBTREE"), std::string::npos);
}

TEST_F(PlanTest, ConstantFoldingSimplifies) {
  auto plan = Optimize("SELECT p.acc FROM proteins p WHERE p.pre < 2 + 3");
  std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("< 5"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("2 + 3"), std::string::npos) << rendered;
}

TEST_F(PlanTest, TrueConjunctsDropped) {
  auto plan = Optimize("SELECT p.acc FROM proteins p WHERE 1 = 1");
  std::string rendered = plan->ToString();
  EXPECT_EQ(rendered.find("Filter"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("[pred"), std::string::npos) << rendered;
}

TEST_F(PlanTest, JoinConditionsAttachedToJoins) {
  auto plan = Optimize(
      "SELECT p.acc FROM proteins p, activities a, ligands l "
      "WHERE p.acc = a.acc AND a.lig = l.lig");
  std::string rendered = plan->ToString();
  // No residual filter: both equi conditions live on joins.
  EXPECT_EQ(rendered.find("Filter"), std::string::npos) << rendered;
  // Two joins with ON conditions.
  size_t first = rendered.find("Join ON");
  ASSERT_NE(first, std::string::npos) << rendered;
  EXPECT_NE(rendered.find("Join ON", first + 1), std::string::npos) << rendered;
}

TEST_F(PlanTest, JoinReorderPutsSmallTablesFirst) {
  // proteins has 3 rows, activities 1, ligands 1; with reordering the bigger
  // table should not be forced first when it is not in the textual order...
  // Here we simply check the optimizer runs and keeps all three scans.
  auto plan = Optimize(
      "SELECT p.acc FROM proteins p, activities a, ligands l "
      "WHERE p.acc = a.acc AND a.lig = l.lig");
  std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("Scan proteins"), std::string::npos);
  EXPECT_NE(rendered.find("Scan activities"), std::string::npos);
  EXPECT_NE(rendered.find("Scan ligands"), std::string::npos);
}

TEST_F(PlanTest, SchemaPropagatesThroughJoin) {
  auto plan = Optimize(
      "SELECT p.acc, a.aff FROM proteins p JOIN activities a ON "
      "p.acc = a.acc");
  EXPECT_EQ(plan->schema.NumColumns(), 2u);
  EXPECT_EQ(plan->schema.column(0).name, "p.acc");
  EXPECT_EQ(plan->schema.column(1).name, "a.aff");
}

TEST_F(PlanTest, ExplainRendersTree) {
  auto plan = Optimize("SELECT p.acc FROM proteins p WHERE p.pre <= 3");
  std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("Project"), std::string::npos);
  EXPECT_NE(rendered.find("Scan proteins"), std::string::npos);
}

}  // namespace
}  // namespace query
}  // namespace drugtree
