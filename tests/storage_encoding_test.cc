#include "storage/encoded_segment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "storage/statistics.h"
#include "storage/table.h"
#include "util/rng.h"

namespace drugtree {
namespace storage {
namespace {

// ------------------------------------------------------------ shared helpers

/// All encodings a column could conceivably be asked to carry.
const ColumnEncoding kAllEncodings[] = {
    ColumnEncoding::kPlain, ColumnEncoding::kDictionary,
    ColumnEncoding::kRunLength, ColumnEncoding::kFrameOfReference};

/// Round-trip check: encode `src` under every eligible encoding and verify
/// ValueAt / DecodeInto / GatherInto all reproduce the source bit-exactly
/// (type tag AND payload, via Value::operator==).
void ExpectRoundTrip(const ColumnVector& src) {
  for (ColumnEncoding e : kAllEncodings) {
    if (!EncodedColumn::Eligible(src, e)) continue;
    SCOPED_TRACE(std::string("encoding=") + ColumnEncodingName(e));
    EncodedColumn enc = EncodedColumn::EncodeWith(src, e);
    ASSERT_EQ(enc.size(), src.size());
    // Per-row materialization.
    for (size_t i = 0; i < src.size(); ++i) {
      EXPECT_EQ(enc.IsNull(i), src.IsNull(i)) << "row " << i;
      EXPECT_EQ(enc.ValueAt(i), src.GetValue(i)) << "row " << i;
    }
    // Bulk decode.
    ColumnVector dec;
    enc.DecodeInto(&dec);
    ASSERT_EQ(dec.size(), src.size());
    for (size_t i = 0; i < src.size(); ++i) {
      EXPECT_EQ(dec.GetValue(i), src.GetValue(i)) << "row " << i;
    }
    // Strided gather (every other row), appended after a sentinel so the
    // append-not-overwrite contract is exercised.
    std::vector<uint32_t> idx;
    for (size_t i = 0; i < src.size(); i += 2) {
      idx.push_back(static_cast<uint32_t>(i));
    }
    ColumnVector gat;
    gat.Append(Value::Int64(-777));  // sentinel
    enc.GatherInto(idx.data(), idx.size(), &gat);
    ASSERT_EQ(gat.size(), idx.size() + 1);
    EXPECT_EQ(gat.GetValue(0), Value::Int64(-777));
    for (size_t k = 0; k < idx.size(); ++k) {
      EXPECT_EQ(gat.GetValue(k + 1), src.GetValue(idx[k])) << "k " << k;
    }
  }
}

/// FilterCompare vs the scalar reference: for every op, the encoded matches
/// must equal brute-force row-at-a-time comparison (null rows never match).
void ExpectFilterExact(const ColumnVector& src, const Value& literal) {
  const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                            CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  for (ColumnEncoding e : kAllEncodings) {
    if (!EncodedColumn::Eligible(src, e)) continue;
    EncodedColumn enc = EncodedColumn::EncodeWith(src, e);
    for (CompareOp op : kOps) {
      SCOPED_TRACE(std::string("encoding=") + ColumnEncodingName(e) +
                   " op=" + std::to_string(static_cast<int>(op)) +
                   " literal=" + literal.ToString());
      std::vector<uint32_t> expect;
      for (size_t i = 0; i < src.size(); ++i) {
        Value v = src.GetValue(i);
        if (v.is_null() || literal.is_null()) continue;
        if (CompareMatches(op, v.Compare(literal))) {
          expect.push_back(static_cast<uint32_t>(i));
        }
      }
      std::vector<uint32_t> got;
      enc.FilterCompare(op, literal, /*candidates=*/nullptr, &got);
      EXPECT_EQ(got, expect);
      // Candidate-restricted form over every third row.
      std::vector<uint32_t> cand;
      for (size_t i = 0; i < src.size(); i += 3) {
        cand.push_back(static_cast<uint32_t>(i));
      }
      std::vector<uint32_t> expect_cand;
      for (uint32_t i : expect) {
        if (i % 3 == 0) expect_cand.push_back(i);
      }
      got.clear();
      enc.FilterCompare(op, literal, &cand, &got);
      EXPECT_EQ(got, expect_cand);
    }
  }
}

// ------------------------------------------------------------ BitPackedArray

TEST(BitPackedArrayTest, PacksAndExtractsAcrossWordBoundaries) {
  for (int bits : {1, 3, 7, 13, 31, 33, 63, 64}) {
    std::vector<uint64_t> values;
    uint64_t mask =
        bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
    util::Rng rng(42 + static_cast<uint64_t>(bits));
    for (int i = 0; i < 300; ++i) values.push_back(rng.Next() & mask);
    BitPackedArray arr = BitPackedArray::Pack(values, bits);
    ASSERT_EQ(arr.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(arr.Get(i), values[i]) << "bits " << bits << " i " << i;
    }
  }
}

TEST(BitPackedArrayTest, ZeroWidthStoresNothing) {
  BitPackedArray arr = BitPackedArray::Pack({0, 0, 0, 0}, 0);
  EXPECT_EQ(arr.size(), 4u);
  EXPECT_EQ(arr.ByteSize(), 0u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(arr.Get(i), 0u);
}

TEST(BitPackedArrayTest, BitsFor) {
  EXPECT_EQ(BitPackedArray::BitsFor(0), 0);
  EXPECT_EQ(BitPackedArray::BitsFor(1), 1);
  EXPECT_EQ(BitPackedArray::BitsFor(2), 2);
  EXPECT_EQ(BitPackedArray::BitsFor(255), 8);
  EXPECT_EQ(BitPackedArray::BitsFor(256), 9);
  EXPECT_EQ(BitPackedArray::BitsFor(~uint64_t{0}), 64);
}

// ----------------------------------------------------------- round-trip laws

TEST(EncodedColumnTest, RoundTripInt64Patterns) {
  // Low-cardinality, runs, wide range, negatives.
  ColumnVector runs;
  for (int i = 0; i < 500; ++i) runs.AppendInt64(i / 50);
  ExpectRoundTrip(runs);

  ColumnVector wide;
  for (int i = 0; i < 500; ++i) {
    wide.AppendInt64((i * 2654435761LL) % 1000003 - 500000);
  }
  ExpectRoundTrip(wide);

  ColumnVector extremes;
  extremes.AppendInt64(INT64_MIN);
  extremes.AppendInt64(INT64_MAX);
  extremes.AppendInt64(0);
  extremes.AppendInt64(-1);
  ExpectRoundTrip(extremes);
}

TEST(EncodedColumnTest, RoundTripStringsAndDoublesAndBools) {
  ColumnVector strs;
  for (int i = 0; i < 300; ++i) {
    strs.AppendString("family-" + std::to_string(i % 7));
  }
  ExpectRoundTrip(strs);

  ColumnVector dbls;
  for (int i = 0; i < 300; ++i) dbls.AppendDouble(i * 0.25 - 30.0);
  ExpectRoundTrip(dbls);

  ColumnVector bools;
  for (int i = 0; i < 100; ++i) bools.AppendBool(i % 3 == 0);
  ExpectRoundTrip(bools);
}

TEST(EncodedColumnTest, RoundTripNullPatterns) {
  // Leading nulls (type fixed late), interleaved nulls, all-null.
  ColumnVector leading;
  for (int i = 0; i < 10; ++i) leading.AppendNull();
  for (int i = 0; i < 90; ++i) leading.AppendInt64(i % 4);
  ExpectRoundTrip(leading);

  ColumnVector interleaved;
  for (int i = 0; i < 200; ++i) {
    if (i % 5 == 2) {
      interleaved.AppendNull();
    } else {
      interleaved.AppendString(i % 2 ? "yes" : "no");
    }
  }
  ExpectRoundTrip(interleaved);

  ColumnVector all_null;
  for (int i = 0; i < 64; ++i) all_null.AppendNull();
  ExpectRoundTrip(all_null);
}

TEST(EncodedColumnTest, RoundTripEdgeShapes) {
  ColumnVector empty;
  ExpectRoundTrip(empty);

  ColumnVector single;
  single.AppendInt64(7);
  ExpectRoundTrip(single);

  ColumnVector constant;
  for (int i = 0; i < 128; ++i) constant.AppendString("same");
  ExpectRoundTrip(constant);

  ColumnVector all_distinct;
  for (int i = 0; i < 257; ++i) all_distinct.AppendInt64(i);
  ExpectRoundTrip(all_distinct);
}

TEST(EncodedColumnTest, MixedAndNanColumnsFallBackToPlain) {
  // Int64(2) vs Double(2.0) compare equal but are bit-different; a
  // Compare-keyed dictionary or run merge would lose the distinction.
  ColumnVector mixed;
  mixed.AppendInt64(2);
  mixed.AppendDouble(2.0);
  EXPECT_FALSE(EncodedColumn::Eligible(mixed, ColumnEncoding::kDictionary));
  EXPECT_FALSE(EncodedColumn::Eligible(mixed, ColumnEncoding::kRunLength));
  EXPECT_FALSE(
      EncodedColumn::Eligible(mixed, ColumnEncoding::kFrameOfReference));
  EXPECT_EQ(EncodedColumn::ChooseEncoding(mixed), ColumnEncoding::kPlain);
  ExpectRoundTrip(mixed);

  // NaN compares equal to everything under Value::Compare; Compare-based
  // dedup/sort would corrupt a dictionary, so NaN poisons eligibility.
  ColumnVector with_nan;
  with_nan.AppendDouble(1.0);
  with_nan.AppendDouble(std::nan(""));
  EXPECT_FALSE(
      EncodedColumn::Eligible(with_nan, ColumnEncoding::kDictionary));
  EXPECT_FALSE(EncodedColumn::Eligible(with_nan, ColumnEncoding::kRunLength));
  EXPECT_EQ(EncodedColumn::ChooseEncoding(with_nan), ColumnEncoding::kPlain);
}

// ------------------------------------------------------------- filter kernels

TEST(EncodedColumnTest, FilterCompareMatchesScalarReference) {
  ColumnVector ints;
  for (int i = 0; i < 400; ++i) {
    if (i % 11 == 3) {
      ints.AppendNull();
    } else {
      ints.AppendInt64(i % 13);
    }
  }
  ExpectFilterExact(ints, Value::Int64(6));
  ExpectFilterExact(ints, Value::Int64(-1));   // below range
  ExpectFilterExact(ints, Value::Int64(99));   // above range
  ExpectFilterExact(ints, Value::Double(6.0)); // cross-type numeric
  ExpectFilterExact(ints, Value::Double(5.5)); // between codes
  ExpectFilterExact(ints, Value::Null());      // null literal: no matches
  ExpectFilterExact(ints, Value::String("x")); // cross-type by type id

  ColumnVector strs;
  for (int i = 0; i < 200; ++i) {
    strs.AppendString("k" + std::to_string(i % 5));
  }
  ExpectFilterExact(strs, Value::String("k2"));
  ExpectFilterExact(strs, Value::String("a"));   // below all
  ExpectFilterExact(strs, Value::String("zz"));  // above all
  ExpectFilterExact(strs, Value::Int64(3));      // cross-type by type id
}

TEST(FilterSegmentTest, ConjunctionAndEmptyClauses) {
  // Build a two-column segment through the public snapshot builder.
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({Value::Int64(i % 10), Value::String(i < 50 ? "a" : "b")});
  }
  std::vector<const Row*> ptrs;
  for (const Row& r : rows) ptrs.push_back(&r);
  EncodedTableSnapshot snap =
      BuildEncodedTableSnapshot(2, ptrs, /*segment_rows=*/100);
  ASSERT_EQ(snap.segments.size(), 1u);
  const EncodedSegment& seg = snap.segments[0];

  std::vector<uint32_t> matches, scratch;
  // No clauses: every row.
  FilterSegment(seg, {}, &matches, &scratch);
  ASSERT_EQ(matches.size(), 100u);

  // col0 >= 7 AND col1 = "a": rows {7,8,9,17,...,47...}.
  std::vector<EncodedPredicate> clauses = {
      {0, CompareOp::kGe, Value::Int64(7)},
      {1, CompareOp::kEq, Value::String("a")}};
  matches.clear();
  FilterSegment(seg, clauses, &matches, &scratch);
  std::vector<uint32_t> expect;
  for (uint32_t i = 0; i < 100; ++i) {
    if (i % 10 >= 7 && i < 50) expect.push_back(i);
  }
  EXPECT_EQ(matches, expect);

  // Contradictory clauses short-circuit to empty.
  clauses.push_back({0, CompareOp::kLt, Value::Int64(0)});
  matches.clear();
  FilterSegment(seg, clauses, &matches, &scratch);
  EXPECT_TRUE(matches.empty());
}

// --------------------------------------------------------------- the chooser

TEST(EncodedColumnTest, ChooserPicksSensibleEncodings) {
  // Long runs -> RLE.
  ColumnVector runs;
  for (int i = 0; i < 4096; ++i) runs.AppendInt64(i / 512);
  EXPECT_EQ(EncodedColumn::ChooseEncoding(runs), ColumnEncoding::kRunLength);

  // Low-cardinality scattered strings -> dictionary.
  ColumnVector cats;
  for (int i = 0; i < 4096; ++i) {
    cats.AppendString("family-" + std::to_string(i % 8));
  }
  EXPECT_EQ(EncodedColumn::ChooseEncoding(cats), ColumnEncoding::kDictionary);

  // Narrow-range scattered ints -> frame-of-reference beats a dictionary of
  // thousands of distinct values.
  ColumnVector narrow;
  for (int i = 0; i < 4096; ++i) {
    narrow.AppendInt64(1000000 + (i * 2654435761LL) % 4096);
  }
  EncodedColumn enc = EncodedColumn::Encode(narrow);
  EXPECT_EQ(enc.encoding(), ColumnEncoding::kFrameOfReference);
  EXPECT_LT(enc.EncodedBytes(), enc.PlainBytes() / 2);

  // All-distinct doubles: nothing compresses, plain wins.
  ColumnVector dbls;
  for (int i = 0; i < 4096; ++i) dbls.AppendDouble(i * 1.000001);
  EXPECT_EQ(EncodedColumn::ChooseEncoding(dbls), ColumnEncoding::kPlain);
}

// -------------------------------------------------- table snapshot lifecycle

Table MakeEncTable(int rows) {
  auto s = Schema::Create({
      {"id", ValueType::kInt64, false},
      {"family", ValueType::kString, false},
      {"score", ValueType::kDouble, true},
  });
  EXPECT_TRUE(s.ok());
  Table t("enc", *s);
  for (int i = 0; i < rows; ++i) {
    auto id = t.Insert({Value::Int64(i),
                        Value::String("fam" + std::to_string(i % 5)),
                        i % 7 == 0 ? Value::Null() : Value::Double(i * 0.5)});
    EXPECT_TRUE(id.ok());
  }
  return t;
}

TEST(TableEncodingTest, BuildExposeAndInvalidate) {
  Table t = MakeEncTable(1000);
  EXPECT_EQ(t.encoded(), nullptr);
  ASSERT_TRUE(t.BuildEncodedSegments(256).ok());
  const EncodedTableSnapshot* snap = t.encoded();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->num_rows, 1000u);
  EXPECT_EQ(snap->segments.size(), 4u);  // 1000 rows / 256 per segment
  EXPECT_GT(snap->CompressionRatio(), 1.0);

  // Snapshot rows match table rows exactly.
  for (size_t s = 0, row = 0; s < snap->segments.size(); ++s) {
    const EncodedSegment& seg = snap->segments[s];
    for (size_t i = 0; i < seg.num_rows; ++i, ++row) {
      for (size_t c = 0; c < seg.columns.size(); ++c) {
        EXPECT_EQ(seg.columns[c].ValueAt(i),
                  t.row(static_cast<RowId>(row))[c]);
      }
    }
  }

  // Any mutation invalidates: encoded() hides the stale snapshot.
  ASSERT_TRUE(t.Insert({Value::Int64(-1), Value::String("fam0"),
                        Value::Double(0.0)})
                  .ok());
  EXPECT_EQ(t.encoded(), nullptr);
  ASSERT_TRUE(t.BuildEncodedSegments(256).ok());
  ASSERT_NE(t.encoded(), nullptr);
  EXPECT_EQ(t.encoded()->num_rows, 1001u);

  ASSERT_TRUE(t.Delete(0).ok());
  EXPECT_EQ(t.encoded(), nullptr);

  // Rebuild skips tombstones.
  ASSERT_TRUE(t.BuildEncodedSegments(256).ok());
  EXPECT_EQ(t.encoded()->num_rows, 1000u);

  t.DropEncodedSegments();
  EXPECT_EQ(t.encoded(), nullptr);
}

TEST(TableEncodingTest, ScanFootprintShrinksWhenEncoded) {
  Table t = MakeEncTable(2000);
  uint64_t plain = t.ApproxScanFootprintBytes();
  ASSERT_TRUE(t.BuildEncodedSegments().ok());
  uint64_t encoded = t.ApproxScanFootprintBytes();
  EXPECT_LT(encoded, plain / 2) << "plain=" << plain
                                << " encoded=" << encoded;
  EXPECT_EQ(encoded, t.encoded()->encoded_bytes);
}

TEST(TableEncodingTest, SnapshotSummaryNamesEncodings) {
  Table t = MakeEncTable(2000);
  ASSERT_TRUE(t.BuildEncodedSegments().ok());
  std::string summary = t.encoded()->Summary(t.schema());
  EXPECT_NE(summary.find("family=dict"), std::string::npos) << summary;
}

// ----------------------------------------------------- statistics extensions

TEST(StatisticsTest, RunCountsAndAverageRunLength) {
  auto s = Schema::Create({{"v", ValueType::kInt64, true}});
  ASSERT_TRUE(s.ok());
  std::vector<Row> rows;
  // 1,1,1,1,2,2,2,2,NULL,NULL,3,3 -> 4 runs over 12 rows.
  for (int i = 0; i < 4; ++i) rows.push_back({Value::Int64(1)});
  for (int i = 0; i < 4; ++i) rows.push_back({Value::Int64(2)});
  for (int i = 0; i < 2; ++i) rows.push_back({Value::Null()});
  for (int i = 0; i < 2; ++i) rows.push_back({Value::Int64(3)});
  auto stats = TableStats::Analyze(*s, rows);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->column(0).num_runs(), 4);
  EXPECT_DOUBLE_EQ(stats->column(0).avg_run_length(), 3.0);
  EXPECT_EQ(stats->column(0).num_distinct(), 3);
}

TEST(StatisticsTest, StatsFreshnessTracksMutations) {
  Table t = MakeEncTable(100);
  EXPECT_FALSE(t.stats_fresh());
  ASSERT_TRUE(t.Analyze().ok());
  EXPECT_TRUE(t.stats_fresh());
  // A tombstone-creating delete (the staleness bug this field fixes: stats
  // computed before deletes kept being served as fresh).
  ASSERT_TRUE(t.Delete(3).ok());
  EXPECT_FALSE(t.stats_fresh());
  ASSERT_TRUE(t.Analyze().ok());
  EXPECT_TRUE(t.stats_fresh());
}

// ----------------------------------------------------------- AppendRepeated

TEST(ColumnVectorTest, AppendRepeatedMatchesLoopedAppend) {
  ColumnVector bulk, loop;
  bulk.AppendRepeated(Value::Int64(9), 100);
  for (int i = 0; i < 100; ++i) loop.Append(Value::Int64(9));
  ASSERT_EQ(bulk.size(), loop.size());
  for (size_t i = 0; i < bulk.size(); ++i) {
    EXPECT_EQ(bulk.GetValue(i), loop.GetValue(i));
  }

  ColumnVector nulls;
  nulls.AppendRepeated(Value::Null(), 5);
  nulls.AppendRepeated(Value::String("x"), 3);
  nulls.AppendRepeated(Value::Null(), 2);
  ASSERT_EQ(nulls.size(), 10u);
  EXPECT_TRUE(nulls.IsNull(0));
  EXPECT_TRUE(nulls.IsNull(4));
  EXPECT_EQ(nulls.GetValue(6), Value::String("x"));
  EXPECT_TRUE(nulls.IsNull(9));

  // Zero-count is a no-op.
  ColumnVector zero;
  zero.AppendRepeated(Value::Int64(1), 0);
  EXPECT_EQ(zero.size(), 0u);
}

}  // namespace
}  // namespace storage
}  // namespace drugtree
