#include "phylo/tree.h"

#include <gtest/gtest.h>

#include <set>

#include "phylo/newick.h"
#include "util/rng.h"

namespace drugtree {
namespace phylo {
namespace {

// ((a,b),c) with branch lengths.
Tree SmallTree() {
  Tree t;
  NodeId root = *t.AddRoot();
  NodeId ab = *t.AddChild(root, "", 1.0);
  t.AddChild(ab, "a", 0.5).ValueOrDie();
  t.AddChild(ab, "b", 0.7).ValueOrDie();
  t.AddChild(root, "c", 2.0).ValueOrDie();
  return t;
}

TEST(TreeTest, BuildAndCount) {
  Tree t = SmallTree();
  EXPECT_EQ(t.NumNodes(), 5u);
  EXPECT_EQ(t.NumLeaves(), 3u);
  EXPECT_EQ(t.root(), 0);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TreeTest, SecondRootRejected) {
  Tree t;
  ASSERT_TRUE(t.AddRoot().ok());
  EXPECT_TRUE(t.AddRoot().status().IsAlreadyExists());
}

TEST(TreeTest, ChildOfMissingParentRejected) {
  Tree t;
  EXPECT_TRUE(t.AddChild(0).status().IsInvalidArgument());
  t.AddRoot().ValueOrDie();
  EXPECT_TRUE(t.AddChild(99).status().IsInvalidArgument());
}

TEST(TreeTest, LeavesInDfsOrder) {
  Tree t = SmallTree();
  auto names = t.LeafNames();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TreeTest, FindByName) {
  Tree t = SmallTree();
  NodeId b = t.FindByName("b");
  ASSERT_NE(b, kInvalidNode);
  EXPECT_EQ(t.node(b).name, "b");
  EXPECT_EQ(t.FindByName("zzz"), kInvalidNode);
}

TEST(TreeTest, DepthAndHeight) {
  Tree t = SmallTree();
  EXPECT_EQ(t.Depth(t.root()), 0);
  EXPECT_EQ(t.Depth(t.FindByName("a")), 2);
  EXPECT_EQ(t.Depth(t.FindByName("c")), 1);
  EXPECT_EQ(t.Height(), 2);
}

TEST(TreeTest, RootPathLength) {
  Tree t = SmallTree();
  EXPECT_DOUBLE_EQ(t.RootPathLength(t.FindByName("a")), 1.5);
  EXPECT_DOUBLE_EQ(t.RootPathLength(t.FindByName("c")), 2.0);
  EXPECT_DOUBLE_EQ(t.RootPathLength(t.root()), 0.0);
}

TEST(TreeTest, PreOrderVisitsParentBeforeChild) {
  Tree t = SmallTree();
  std::vector<NodeId> order;
  t.PreOrder([&](NodeId id) { order.push_back(id); });
  EXPECT_EQ(order.size(), t.NumNodes());
  std::set<NodeId> seen;
  for (NodeId id : order) {
    if (!t.node(id).IsRoot()) {
      EXPECT_TRUE(seen.count(t.node(id).parent)) << "child before parent";
    }
    seen.insert(id);
  }
}

TEST(TreeTest, PostOrderVisitsChildBeforeParent) {
  Tree t = SmallTree();
  std::set<NodeId> seen;
  t.PostOrder([&](NodeId id) {
    for (NodeId c : t.node(id).children) {
      EXPECT_TRUE(seen.count(c)) << "parent before child";
    }
    seen.insert(id);
  });
  EXPECT_EQ(seen.size(), t.NumNodes());
}

TEST(TreeTest, ValidateDetectsDuplicateLeafNames) {
  Tree t;
  NodeId root = *t.AddRoot();
  t.AddChild(root, "x").ValueOrDie();
  t.AddChild(root, "x").ValueOrDie();
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TreeTest, EmptyTreeValidates) {
  Tree t;
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.root(), kInvalidNode);
}

TEST(NewickTest, ParseSimple) {
  auto t = ParseNewick("((a:0.5,b:0.7):1.0,c:2.0);");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumLeaves(), 3u);
  EXPECT_DOUBLE_EQ(t->node(t->FindByName("a")).branch_length, 0.5);
  EXPECT_DOUBLE_EQ(t->node(t->FindByName("c")).branch_length, 2.0);
}

TEST(NewickTest, ParseWithoutLengths) {
  auto t = ParseNewick("((a,b),(c,d));");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumLeaves(), 4u);
  EXPECT_EQ(t->NumNodes(), 7u);
}

TEST(NewickTest, ParseInternalLabels) {
  auto t = ParseNewick("((a,b)ab,c)root;");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->node(t->root()).name, "root");
  EXPECT_NE(t->FindByName("ab"), kInvalidNode);
}

TEST(NewickTest, ParseQuotedLabels) {
  auto t = ParseNewick("('a b':1,'it''s':2);");
  ASSERT_TRUE(t.ok());
  EXPECT_NE(t->FindByName("a b"), kInvalidNode);
  EXPECT_NE(t->FindByName("it's"), kInvalidNode);
}

TEST(NewickTest, ParseMultifurcation) {
  auto t = ParseNewick("(a,b,c,d);");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->node(t->root()).children.size(), 4u);
}

TEST(NewickTest, ParseSingleLeaf) {
  auto t = ParseNewick("only;");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumNodes(), 1u);
  EXPECT_EQ(t->node(0).name, "only");
}

TEST(NewickTest, ErrorsAreParseErrors) {
  EXPECT_TRUE(ParseNewick("((a,b);").status().IsParseError());   // missing )
  EXPECT_TRUE(ParseNewick("(a,b)").status().IsParseError());     // missing ;
  EXPECT_TRUE(ParseNewick("(a,b); x").status().IsParseError());  // trailing
  EXPECT_TRUE(ParseNewick("(a:,b);").status().IsParseError());   // bad number
  EXPECT_TRUE(ParseNewick("('a,b);").status().IsParseError());   // open quote
  EXPECT_TRUE(ParseNewick("(a:-1,b);").status().IsParseError()); // negative
}

TEST(NewickTest, WhitespaceTolerated) {
  auto t = ParseNewick("  ( a : 1.0 , b : 2.0 ) ;  ");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumLeaves(), 2u);
}

TEST(NewickTest, WriteThenParseRoundTrip) {
  Tree t = SmallTree();
  std::string text = WriteNewick(t);
  auto back = ParseNewick(text);
  ASSERT_TRUE(back.ok()) << text;
  EXPECT_EQ(back->NumNodes(), t.NumNodes());
  EXPECT_EQ(back->LeafNames(), t.LeafNames());
  EXPECT_DOUBLE_EQ(back->node(back->FindByName("b")).branch_length, 0.7);
}

TEST(NewickTest, WriteQuotesSpecialLabels) {
  Tree t;
  NodeId root = *t.AddRoot();
  t.AddChild(root, "a b", 1).ValueOrDie();
  t.AddChild(root, "c:d", 1).ValueOrDie();
  std::string text = WriteNewick(t);
  auto back = ParseNewick(text);
  ASSERT_TRUE(back.ok()) << text;
  EXPECT_NE(back->FindByName("a b"), kInvalidNode);
  EXPECT_NE(back->FindByName("c:d"), kInvalidNode);
}

// Property: random trees round-trip through Newick preserving topology,
// names, and branch lengths.
class NewickRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(NewickRoundTrip, RandomTreePreserved) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  Tree t;
  NodeId root = *t.AddRoot();
  std::vector<NodeId> nodes = {root};
  int leaves = 0;
  for (int i = 0; i < 40; ++i) {
    NodeId parent = nodes[rng.Uniform(nodes.size())];
    std::string name;
    if (rng.Bernoulli(0.6)) {
      name = "L" + std::to_string(leaves++);
    }
    NodeId child = *t.AddChild(parent, name, rng.NextDouble() * 3);
    nodes.push_back(child);
  }
  // Note: interior nodes that stayed childless are leaves; names may clash
  // with none since all generated names are unique.
  std::string text = WriteNewick(t);
  auto back = ParseNewick(text);
  ASSERT_TRUE(back.ok()) << text;
  EXPECT_EQ(back->NumNodes(), t.NumNodes());
  EXPECT_EQ(back->NumLeaves(), t.NumLeaves());
  // DFS order and branch lengths are preserved node-for-node.
  std::vector<double> lens_a, lens_b;
  t.PreOrder([&](NodeId id) { lens_a.push_back(t.node(id).branch_length); });
  back->PreOrder(
      [&](NodeId id) { lens_b.push_back(back->node(id).branch_length); });
  lens_a[0] = lens_b[0] = 0;  // root length is not serialized
  ASSERT_EQ(lens_a.size(), lens_b.size());
  for (size_t i = 0; i < lens_a.size(); ++i) {
    EXPECT_NEAR(lens_a[i], lens_b[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, NewickRoundTrip, ::testing::Range(0, 8));

}  // namespace
}  // namespace phylo
}  // namespace drugtree
