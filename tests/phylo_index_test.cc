#include "phylo/tree_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "phylo/newick.h"
#include "util/rng.h"

namespace drugtree {
namespace phylo {
namespace {

// Brute-force ancestry via parent pointers.
bool NaiveIsAncestor(const Tree& t, NodeId anc, NodeId desc) {
  for (NodeId cur = desc;; cur = t.node(cur).parent) {
    if (cur == anc) return true;
    if (t.node(cur).IsRoot()) return false;
  }
}

NodeId NaiveLca(const Tree& t, NodeId a, NodeId b) {
  for (NodeId cur = a;; cur = t.node(cur).parent) {
    if (NaiveIsAncestor(t, cur, b)) return cur;
    if (t.node(cur).IsRoot()) return t.root();
  }
}

Tree RandomTree(uint64_t seed, int extra_nodes) {
  util::Rng rng(seed);
  Tree t;
  NodeId root = *t.AddRoot("root");
  std::vector<NodeId> nodes = {root};
  for (int i = 0; i < extra_nodes; ++i) {
    NodeId parent = nodes[rng.Uniform(nodes.size())];
    NodeId child = *t.AddChild(parent, "n" + std::to_string(i),
                               rng.NextDouble() * 2);
    nodes.push_back(child);
  }
  return t;
}

TEST(TreeIndexTest, RejectsEmptyTree) {
  Tree t;
  EXPECT_TRUE(TreeIndex::Build(t).status().IsInvalidArgument());
}

TEST(TreeIndexTest, SingleNode) {
  Tree t;
  t.AddRoot("solo").ValueOrDie();
  auto idx = TreeIndex::Build(t);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->Pre(0), 0);
  EXPECT_EQ(idx->Post(0), 0);
  EXPECT_EQ(idx->SubtreeSize(0), 1);
  EXPECT_EQ(idx->SubtreeLeafCount(0), 1);
  EXPECT_EQ(idx->Lca(0, 0), 0);
}

TEST(TreeIndexTest, KnownTreeNumbers) {
  auto t = ParseNewick("((a,b)x,c)r;");
  ASSERT_TRUE(t.ok());
  auto idx = TreeIndex::Build(*t);
  ASSERT_TRUE(idx.ok());
  NodeId r = t->root();
  NodeId x = t->FindByName("x");
  NodeId a = t->FindByName("a");
  NodeId b = t->FindByName("b");
  NodeId c = t->FindByName("c");
  EXPECT_EQ(idx->Pre(r), 0);
  EXPECT_EQ(idx->Post(r), 4);
  EXPECT_EQ(idx->Pre(x), 1);
  EXPECT_EQ(idx->Post(x), 3);
  EXPECT_EQ(idx->SubtreeSize(x), 3);
  EXPECT_EQ(idx->SubtreeLeafCount(x), 2);
  EXPECT_EQ(idx->SubtreeLeafCount(r), 3);
  EXPECT_EQ(idx->Depth(a), 2);
  EXPECT_TRUE(idx->IsAncestor(x, a));
  EXPECT_TRUE(idx->IsAncestor(x, b));
  EXPECT_FALSE(idx->IsAncestor(x, c));
  EXPECT_TRUE(idx->IsAncestor(a, a));
  EXPECT_EQ(idx->Lca(a, b), x);
  EXPECT_EQ(idx->Lca(a, c), r);
}

TEST(TreeIndexTest, NodeAtPreInverse) {
  Tree t = RandomTree(5, 50);
  auto idx = TreeIndex::Build(t);
  ASSERT_TRUE(idx.ok());
  for (size_t i = 0; i < t.NumNodes(); ++i) {
    auto id = static_cast<NodeId>(i);
    EXPECT_EQ(idx->NodeAtPre(idx->Pre(id)), id);
  }
}

TEST(TreeIndexTest, SubtreeNodesMatchInterval) {
  Tree t = RandomTree(7, 60);
  auto idx = TreeIndex::Build(t);
  ASSERT_TRUE(idx.ok());
  for (size_t i = 0; i < t.NumNodes(); ++i) {
    auto id = static_cast<NodeId>(i);
    auto nodes = idx->SubtreeNodes(id);
    EXPECT_EQ(nodes.size(), static_cast<size_t>(idx->SubtreeSize(id)));
    for (NodeId n : nodes) {
      EXPECT_TRUE(NaiveIsAncestor(t, id, n));
    }
  }
}

TEST(TreeIndexTest, PathLengthViaLca) {
  auto t = ParseNewick("((a:2,b:3)x:1,c:4)r;");
  ASSERT_TRUE(t.ok());
  auto idx = TreeIndex::Build(*t);
  ASSERT_TRUE(idx.ok());
  NodeId a = t->FindByName("a");
  NodeId b = t->FindByName("b");
  NodeId c = t->FindByName("c");
  EXPECT_NEAR(idx->PathLength(a, b), 5.0, 1e-12);
  EXPECT_NEAR(idx->PathLength(a, c), 7.0, 1e-12);
  EXPECT_NEAR(idx->PathLength(a, a), 0.0, 1e-12);
}

// The core correctness property behind the interval-rewrite optimization:
// interval containment must agree with parent-pointer ancestry everywhere.
class IntervalAncestryProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntervalAncestryProperty, IntervalMatchesNaiveAncestry) {
  Tree t = RandomTree(static_cast<uint64_t>(GetParam()) * 13 + 1,
                      30 + GetParam() * 20);
  auto idx = TreeIndex::Build(t);
  ASSERT_TRUE(idx.ok());
  const auto n = static_cast<NodeId>(t.NumNodes());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      EXPECT_EQ(idx->IsAncestor(a, b), NaiveIsAncestor(t, a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, IntervalAncestryProperty,
                         ::testing::Range(0, 6));

class LcaProperty : public ::testing::TestWithParam<int> {};

TEST_P(LcaProperty, LcaMatchesNaive) {
  Tree t = RandomTree(static_cast<uint64_t>(GetParam()) * 17 + 2,
                      40 + GetParam() * 15);
  auto idx = TreeIndex::Build(t);
  ASSERT_TRUE(idx.ok());
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 300; ++trial) {
    auto a = static_cast<NodeId>(rng.Uniform(t.NumNodes()));
    auto b = static_cast<NodeId>(rng.Uniform(t.NumNodes()));
    EXPECT_EQ(idx->Lca(a, b), NaiveLca(t, a, b)) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, LcaProperty, ::testing::Range(0, 6));

TEST(TreeIndexTest, LcaSymmetric) {
  Tree t = RandomTree(99, 80);
  auto idx = TreeIndex::Build(t);
  ASSERT_TRUE(idx.ok());
  util::Rng rng(100);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = static_cast<NodeId>(rng.Uniform(t.NumNodes()));
    auto b = static_cast<NodeId>(rng.Uniform(t.NumNodes()));
    EXPECT_EQ(idx->Lca(a, b), idx->Lca(b, a));
  }
}

TEST(TreeIndexTest, SubtreeSizesSumCorrectly) {
  Tree t = RandomTree(31, 70);
  auto idx = TreeIndex::Build(t);
  ASSERT_TRUE(idx.ok());
  // For every internal node: size = 1 + sum(children sizes).
  for (size_t i = 0; i < t.NumNodes(); ++i) {
    auto id = static_cast<NodeId>(i);
    int32_t sum = 1;
    for (NodeId c : t.node(id).children) sum += idx->SubtreeSize(c);
    EXPECT_EQ(idx->SubtreeSize(id), sum);
  }
}

}  // namespace
}  // namespace phylo
}  // namespace drugtree
