#include "storage/table.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/rng.h"

namespace drugtree {
namespace storage {
namespace {

Schema TestSchema() {
  auto s = Schema::Create({
      {"id", ValueType::kInt64, false},
      {"name", ValueType::kString, false},
      {"score", ValueType::kDouble, true},
  });
  EXPECT_TRUE(s.ok());
  return *s;
}

Table MakeTable(int rows) {
  Table t("test", TestSchema());
  for (int i = 0; i < rows; ++i) {
    auto id = t.Insert({Value::Int64(i),
                        Value::String("row" + std::to_string(i % 10)),
                        Value::Double(i * 1.5)});
    EXPECT_TRUE(id.ok());
    EXPECT_EQ(*id, i);
  }
  return t;
}

TEST(TableTest, InsertAndFetch) {
  Table t = MakeTable(5);
  EXPECT_EQ(t.NumRows(), 5);
  auto row = t.FetchRow(3);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], Value::Int64(3));
  EXPECT_TRUE(t.FetchRow(9).status().IsOutOfRange());
}

TEST(TableTest, SchemaEnforced) {
  Table t("t", TestSchema());
  EXPECT_TRUE(t.Insert({Value::Int64(1)}).status().IsInvalidArgument());
  EXPECT_TRUE(t.Insert({Value::Null(), Value::String("x"), Value::Null()})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      t.Insert({Value::Int64(1), Value::String("x"), Value::Null()}).ok());
}

TEST(TableTest, DeleteTombstones) {
  Table t = MakeTable(5);
  ASSERT_TRUE(t.Delete(2).ok());
  EXPECT_TRUE(t.IsDeleted(2));
  EXPECT_TRUE(t.FetchRow(2).status().IsNotFound());
  EXPECT_TRUE(t.Delete(2).IsNotFound());
  EXPECT_EQ(t.LiveRows().size(), 4u);
}

TEST(TableTest, HashIndexLookup) {
  Table t = MakeTable(30);
  ASSERT_TRUE(t.CreateIndex("name", IndexKind::kHash).ok());
  auto rows = t.IndexLookup("name", Value::String("row3"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // rows 3, 13, 23
  for (RowId r : *rows) {
    EXPECT_EQ(t.row(r)[1], Value::String("row3"));
  }
}

TEST(TableTest, BTreeIndexRange) {
  Table t = MakeTable(30);
  ASSERT_TRUE(t.CreateIndex("id", IndexKind::kBTree).ok());
  auto rows = t.IndexRange("id", Value::Int64(5), true, Value::Int64(8), true);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<RowId>{5, 6, 7, 8}));
}

TEST(TableTest, IndexMaintainedAcrossInsertDelete) {
  Table t = MakeTable(10);
  ASSERT_TRUE(t.CreateIndex("id", IndexKind::kBTree).ok());
  ASSERT_TRUE(t.Delete(4).ok());
  auto rows = t.IndexRange("id", Value::Int64(3), true, Value::Int64(5), true);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<RowId>{3, 5}));
  auto id = t.Insert({Value::Int64(100), Value::String("new"),
                      Value::Double(1.0)});
  ASSERT_TRUE(id.ok());
  auto found = t.IndexLookup("id", Value::Int64(100));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, (std::vector<RowId>{*id}));
}

TEST(TableTest, DuplicateIndexRejected) {
  Table t = MakeTable(3);
  ASSERT_TRUE(t.CreateIndex("id", IndexKind::kBTree).ok());
  EXPECT_TRUE(t.CreateIndex("id", IndexKind::kBTree).IsAlreadyExists());
  // A different flavor on the same column is allowed.
  EXPECT_TRUE(t.CreateIndex("id", IndexKind::kHash).ok());
}

TEST(TableTest, IndexOnMissingColumnRejected) {
  Table t = MakeTable(3);
  EXPECT_TRUE(t.CreateIndex("nope", IndexKind::kHash).IsNotFound());
}

TEST(TableTest, LookupWithoutIndexFails) {
  Table t = MakeTable(3);
  EXPECT_TRUE(t.IndexLookup("id", Value::Int64(1)).status().IsNotFound());
  EXPECT_TRUE(t.IndexRange("id", Value::Int64(0), true, Value::Int64(2), true)
                  .status()
                  .IsNotFound());
}

TEST(TableTest, RangeNeedsBTreeNotHash) {
  Table t = MakeTable(3);
  ASSERT_TRUE(t.CreateIndex("id", IndexKind::kHash).ok());
  EXPECT_TRUE(t.IndexRange("id", Value::Int64(0), true, Value::Int64(2), true)
                  .status()
                  .IsNotFound());
  // Point lookup through the hash index works.
  auto rows = t.IndexLookup("id", Value::Int64(1));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(TableStatsTest, AnalyzeBasics) {
  Table t = MakeTable(100);
  ASSERT_TRUE(t.Analyze().ok());
  const TableStats* stats = t.stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->num_rows(), 100);
  const ColumnStats& id = stats->column(0);
  EXPECT_EQ(id.num_distinct(), 100);
  EXPECT_EQ(id.min(), Value::Int64(0));
  EXPECT_EQ(id.max(), Value::Int64(99));
  EXPECT_EQ(id.num_nulls(), 0);
  const ColumnStats& name = stats->column(1);
  EXPECT_EQ(name.num_distinct(), 10);
}

TEST(TableStatsTest, EqualitySelectivity) {
  Table t = MakeTable(100);
  ASSERT_TRUE(t.Analyze().ok());
  const ColumnStats& name = t.stats()->column(1);
  EXPECT_NEAR(name.EqualitySelectivity(Value::String("row3")), 0.1, 1e-9);
  const ColumnStats& id = t.stats()->column(0);
  EXPECT_NEAR(id.EqualitySelectivity(Value::Int64(5)), 0.01, 1e-9);
  // Out-of-range constant selects nothing.
  EXPECT_DOUBLE_EQ(id.EqualitySelectivity(Value::Int64(1000)), 0.0);
}

TEST(TableStatsTest, RangeSelectivityFromHistogram) {
  Table t = MakeTable(1000);
  ASSERT_TRUE(t.Analyze().ok());
  const ColumnStats& id = t.stats()->column(0);
  // id in [0, 999]; the quarter range should estimate ~0.25.
  double sel = id.RangeSelectivity(Value::Int64(0), true,
                                   Value::Int64(249), true);
  EXPECT_NEAR(sel, 0.25, 0.08);
  // Full range ~ 1.
  EXPECT_NEAR(id.RangeSelectivity(Value::Null(), true, Value::Null(), true),
              1.0, 0.05);
  // Empty range.
  EXPECT_DOUBLE_EQ(id.RangeSelectivity(Value::Int64(2000), true,
                                       Value::Int64(3000), true),
                   0.0);
}

TEST(TableStatsTest, NullFractionTracked) {
  Table t("t", TestSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int64(i), Value::String("x"),
                          i < 4 ? Value::Null() : Value::Double(i)})
                    .ok());
  }
  ASSERT_TRUE(t.Analyze().ok());
  EXPECT_NEAR(t.stats()->column(2).NullFraction(), 0.4, 1e-9);
}

TEST(TableTest, SaveAndLoadRoundTrip) {
  std::string path = testing::TempDir() + "/drugtree_table_test.db";
  std::remove(path.c_str());
  auto disk = DiskManager::Open(path);
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 16);
  Table t = MakeTable(25);
  ASSERT_TRUE(t.Delete(7).ok());
  auto dir = t.SaveTo(&pool);
  ASSERT_TRUE(dir.ok());

  Table loaded("test2", TestSchema());
  ASSERT_TRUE(loaded.LoadFrom(&pool, *dir).ok());
  EXPECT_EQ(loaded.NumRows(), 24);  // deleted row not persisted
  // Spot-check content equality for live rows.
  auto live = t.LiveRows();
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(loaded.row(static_cast<RowId>(i)), t.row(live[i]));
  }
  std::remove(path.c_str());
}

class TableIndexConsistency : public ::testing::TestWithParam<int> {};

TEST_P(TableIndexConsistency, IndexAgreesWithScanUnderChurn) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  Table t("churn", TestSchema());
  ASSERT_TRUE(t.CreateIndex("id", IndexKind::kBTree).ok());
  ASSERT_TRUE(t.CreateIndex("name", IndexKind::kHash).ok());
  std::vector<RowId> live;
  for (int op = 0; op < 800; ++op) {
    if (live.empty() || rng.Bernoulli(0.7)) {
      auto id = t.Insert({Value::Int64(rng.UniformRange(0, 40)),
                          Value::String("n" + std::to_string(rng.Uniform(8))),
                          Value::Double(rng.NextDouble())});
      ASSERT_TRUE(id.ok());
      live.push_back(*id);
    } else {
      size_t pick = rng.Uniform(live.size());
      ASSERT_TRUE(t.Delete(live[pick]).ok());
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  // Every index lookup must agree with a full scan.
  for (int64_t key = 0; key < 40; ++key) {
    auto indexed = t.IndexLookup("id", Value::Int64(key));
    ASSERT_TRUE(indexed.ok());
    std::vector<RowId> scanned;
    for (RowId r : t.LiveRows()) {
      if (t.row(r)[0] == Value::Int64(key)) scanned.push_back(r);
    }
    EXPECT_EQ(*indexed, scanned) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableIndexConsistency, ::testing::Range(0, 4));

}  // namespace
}  // namespace storage
}  // namespace drugtree
