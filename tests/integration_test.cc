#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "integration/activity_source.h"
#include "integration/ligand_source.h"
#include "integration/mediator.h"
#include "integration/network.h"
#include "integration/prefetcher.h"
#include "integration/protein_source.h"
#include "integration/semantic_cache.h"
#include "util/clock.h"
#include "util/rng.h"

namespace drugtree {
namespace integration {
namespace {

TEST(NetworkTest, ChargesLatencyAndTransfer) {
  util::SimulatedClock clock;
  NetworkParams params;
  params.latency_micros = 1000;
  params.bandwidth_bytes_per_sec = 1'000'000;  // 1 B/us
  params.jitter_fraction = 0;
  SimulatedNetwork net(&clock, params);
  int64_t cost = net.Request(5000);
  EXPECT_EQ(cost, 1000 + 5000);
  EXPECT_EQ(clock.NowMicros(), 6000);
  EXPECT_EQ(net.num_requests(), 1u);
  EXPECT_EQ(net.bytes_transferred(), 5000u);
}

TEST(NetworkTest, EstimateDoesNotAdvanceClock) {
  util::SimulatedClock clock;
  SimulatedNetwork net(&clock, NetworkParams{});
  EXPECT_GT(net.EstimateMicros(1000), 0);
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(NetworkTest, JitterBounded) {
  util::SimulatedClock clock;
  NetworkParams params;
  params.latency_micros = 10'000;
  params.bandwidth_bytes_per_sec = 0;  // disable transfer cost
  params.jitter_fraction = 0.1;
  SimulatedNetwork net(&clock, params);
  for (int i = 0; i < 100; ++i) {
    int64_t cost = net.Request(0);
    EXPECT_GE(cost, 9'000);
    EXPECT_LE(cost, 11'000);
  }
}

class SourcesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<util::SimulatedClock>();
    NetworkParams params;
    params.jitter_fraction = 0;
    network_ = std::make_unique<SimulatedNetwork>(clock_.get(), params);
    util::Rng rng(42);

    ProteinSourceParams pp;
    pp.num_families = 2;
    pp.taxa_per_family = 6;
    pp.sequence_length = 60;
    auto ps = ProteinSource::Create(pp, network_.get(), &rng);
    ASSERT_TRUE(ps.ok());
    proteins_ = std::make_unique<ProteinSource>(std::move(*ps));

    chem::LigandGenParams lp;
    auto ls = LigandSource::Create(50, lp, network_.get(), &rng);
    ASSERT_TRUE(ls.ok());
    ligands_ = std::make_unique<LigandSource>(std::move(*ls));

    ActivityGenParams ap;
    auto as = ActivitySource::Create(CollectAccessions(), CollectLigandIds(),
                                     ap, network_.get(), &rng);
    ASSERT_TRUE(as.ok());
    activities_ = std::make_unique<ActivitySource>(std::move(*as));

    cache_ = std::make_unique<SemanticCache>(1 << 20);
    mediator_ = std::make_unique<Mediator>(proteins_.get(), ligands_.get(),
                                           activities_.get(), cache_.get());
  }

  std::vector<std::string> CollectAccessions() {
    std::vector<std::string> out;
    for (const auto& r : proteins_->FetchAll()) out.push_back(r.accession);
    return out;
  }
  std::vector<std::string> CollectLigandIds() {
    std::vector<std::string> out;
    for (const auto& e : ligands_->FetchAll()) out.push_back(e.record.ligand_id);
    return out;
  }

  std::unique_ptr<util::SimulatedClock> clock_;
  std::unique_ptr<SimulatedNetwork> network_;
  std::unique_ptr<ProteinSource> proteins_;
  std::unique_ptr<LigandSource> ligands_;
  std::unique_ptr<ActivitySource> activities_;
  std::unique_ptr<SemanticCache> cache_;
  std::unique_ptr<Mediator> mediator_;
};

TEST_F(SourcesTest, ProteinSourcePopulation) {
  EXPECT_EQ(proteins_->NumRecords(), 12u);
  EXPECT_EQ(proteins_->true_trees().size(), 2u);
  auto accs = proteins_->ListAccessions();
  EXPECT_EQ(accs.size(), 12u);
  auto rec = proteins_->FetchByAccession(accs[0]);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->accession, accs[0]);
  EXPECT_FALSE(rec->sequence.empty());
  EXPECT_TRUE(proteins_->FetchByAccession("NOPE").status().IsNotFound());
}

TEST_F(SourcesTest, FetchFamilyFiltersCorrectly) {
  auto fam0 = proteins_->FetchFamily("family-0");
  EXPECT_EQ(fam0.size(), 6u);
  for (const auto& r : fam0) EXPECT_EQ(r.family, "family-0");
  EXPECT_TRUE(proteins_->FetchFamily("family-99").empty());
}

TEST_F(SourcesTest, BatchVsPerRecordRequestCounts) {
  uint64_t before = proteins_->num_requests();
  auto accs = proteins_->ListAccessions();
  proteins_->FetchBatch(accs);
  uint64_t batched = proteins_->num_requests() - before;
  EXPECT_EQ(batched, 2u);  // list + one batch
  before = proteins_->num_requests();
  for (const auto& a : accs) {
    ASSERT_TRUE(proteins_->FetchByAccession(a).ok());
  }
  EXPECT_EQ(proteins_->num_requests() - before, accs.size());
}

TEST_F(SourcesTest, LigandSourceServesProperties) {
  auto ids = ligands_->ListIds();
  ASSERT_EQ(ids.size(), 50u);
  auto entry = ligands_->FetchById(ids[3]);
  ASSERT_TRUE(entry.ok());
  EXPECT_GT(entry->properties.molecular_weight, 0.0);
  EXPECT_TRUE(ligands_->FetchById("LX").status().IsNotFound());
}

TEST_F(SourcesTest, ActivitySourceLinksKnownEntities) {
  auto all = activities_->FetchAll();
  EXPECT_GT(all.size(), 10u);
  auto accs = CollectAccessions();
  std::set<std::string> acc_set(accs.begin(), accs.end());
  for (const auto& a : all) {
    EXPECT_TRUE(acc_set.count(a.accession)) << a.accession;
    EXPECT_GE(a.affinity_nm, 1.0);
    EXPECT_LE(a.affinity_nm, 100'000.0);
  }
  auto one = activities_->FetchByAccession(accs[0]);
  EXPECT_GE(one.size(), 1u);
  for (const auto& a : one) EXPECT_EQ(a.accession, accs[0]);
}

TEST_F(SourcesTest, IntegrateAllBuildsConsistentTables) {
  MediatorOptions opts;
  auto ds = mediator_->IntegrateAll(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->proteins->NumRows(), 12);
  EXPECT_EQ(ds->ligands->NumRows(), 50);
  EXPECT_GT(ds->activities->NumRows(), 0);
  // Referential integrity: every activity accession exists in proteins.
  auto acc_col = *ds->activities->schema().IndexOf("accession");
  auto p_acc_col = *ds->proteins->schema().IndexOf("accession");
  std::set<std::string> accs;
  for (auto rid : ds->proteins->LiveRows()) {
    accs.insert(ds->proteins->row(rid)[p_acc_col].AsString());
  }
  for (auto rid : ds->activities->LiveRows()) {
    EXPECT_TRUE(accs.count(ds->activities->row(rid)[acc_col].AsString()));
  }
}

TEST_F(SourcesTest, ConflictResolutionMergesDuplicates) {
  MediatorOptions opts;
  auto ds = mediator_->IntegrateAll(opts);
  ASSERT_TRUE(ds.ok());
  // No two output rows share (accession, ligand, assay_type).
  auto s = ds->activities->schema();
  auto a_col = *s.IndexOf("accession");
  auto l_col = *s.IndexOf("ligand_id");
  auto t_col = *s.IndexOf("assay_type");
  auto src_col = *s.IndexOf("source_db");
  std::set<std::tuple<std::string, std::string, std::string>> seen;
  bool found_merged = false;
  for (auto rid : ds->activities->LiveRows()) {
    const auto& row = ds->activities->row(rid);
    auto key = std::make_tuple(row[a_col].AsString(), row[l_col].AsString(),
                               row[t_col].AsString());
    EXPECT_TRUE(seen.insert(key).second) << "duplicate survived merging";
    found_merged |= row[src_col].AsString() == "merged";
  }
  // The generator produces ~10% duplicates, so merging must have happened.
  EXPECT_TRUE(found_merged);
}

TEST_F(SourcesTest, MediatorCachesPointRequests) {
  auto accs = CollectAccessions();
  MediatorOptions opts;
  uint64_t before = proteins_->num_requests();
  ASSERT_TRUE(mediator_->GetProtein(accs[0], opts).ok());
  EXPECT_EQ(proteins_->num_requests(), before + 1);
  // Second request is served from cache: no new source request.
  ASSERT_TRUE(mediator_->GetProtein(accs[0], opts).ok());
  EXPECT_EQ(proteins_->num_requests(), before + 1);
  EXPECT_GT(cache_->stats().hits, 0u);
}

TEST_F(SourcesTest, MediatorCacheDisabledAlwaysFetches) {
  auto accs = CollectAccessions();
  MediatorOptions opts;
  opts.use_cache = false;
  uint64_t before = proteins_->num_requests();
  ASSERT_TRUE(mediator_->GetProtein(accs[0], opts).ok());
  ASSERT_TRUE(mediator_->GetProtein(accs[0], opts).ok());
  EXPECT_EQ(proteins_->num_requests(), before + 2);
}

TEST_F(SourcesTest, FamilyFetchServesLaterPointRequests) {
  MediatorOptions opts;
  auto fam = mediator_->GetFamily("family-1", opts);
  ASSERT_TRUE(fam.ok());
  ASSERT_FALSE(fam->empty());
  uint64_t before = proteins_->num_requests();
  // Members were installed under fine-grained keys: no new requests.
  for (const auto& rec : *fam) {
    ASSERT_TRUE(mediator_->GetProtein(rec.accession, opts).ok());
  }
  EXPECT_EQ(proteins_->num_requests(), before);
  // The family itself is also served from cache.
  auto again = mediator_->GetFamily("family-1", opts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(proteins_->num_requests(), before);
  EXPECT_EQ(again->size(), fam->size());
}

TEST_F(SourcesTest, ProteinBlobRoundTrip) {
  auto accs = CollectAccessions();
  auto rec = proteins_->FetchByAccession(accs[0]);
  ASSERT_TRUE(rec.ok());
  std::string blob = Mediator::EncodeProtein(*rec);
  auto back = Mediator::DecodeProtein(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->accession, rec->accession);
  EXPECT_EQ(back->sequence, rec->sequence);
  EXPECT_EQ(back->family, rec->family);
}

TEST_F(SourcesTest, ActivitiesBlobRoundTrip) {
  auto accs = CollectAccessions();
  auto recs = activities_->FetchByAccession(accs[0]);
  std::string blob = Mediator::EncodeActivities(recs);
  auto back = Mediator::DecodeActivities(blob);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), recs.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ((*back)[i].ligand_id, recs[i].ligand_id);
    EXPECT_DOUBLE_EQ((*back)[i].affinity_nm, recs[i].affinity_nm);
  }
}

TEST_F(SourcesTest, PrefetcherWidensToFamilyAndIsUseful) {
  PrefetcherOptions popts;
  TreeAwarePrefetcher prefetcher(mediator_.get(), cache_.get(), popts);
  auto accs = CollectAccessions();
  // Touch one protein of family-0: the whole family gets prefetched.
  auto first = prefetcher.GetProtein(accs[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(prefetcher.stats().prefetched_records, 0u);
  uint64_t requests_before = proteins_->num_requests();
  // Now touching its family mates hits the cache.
  auto fam = proteins_->FetchFamily(first->family);  // (costs one request)
  for (const auto& rec : fam) {
    ASSERT_TRUE(prefetcher.GetProtein(rec.accession).ok());
  }
  EXPECT_EQ(proteins_->num_requests(), requests_before + 1);
  EXPECT_GT(prefetcher.stats().useful_prefetches, 0u);
  EXPECT_GT(prefetcher.stats().Usefulness(), 0.0);
}

TEST_F(SourcesTest, SemanticCacheEvictionByBytes) {
  SemanticCache small(100);
  small.Put("k1", std::string(60, 'a'));
  small.Put("k2", std::string(60, 'b'));
  EXPECT_FALSE(small.Contains("k1"));
  EXPECT_TRUE(small.Contains("k2"));
  EXPECT_LE(small.used_bytes(), 100u);
}

}  // namespace
}  // namespace integration
}  // namespace drugtree
