// End-to-end query execution tests over hand-built tables, including the
// naive-vs-optimized equivalence property that underpins E1/E2.

#include <gtest/gtest.h>

#include <algorithm>

#include "phylo/newick.h"
#include "query/planner.h"
#include "util/rng.h"

namespace drugtree {
namespace query {
namespace {

using storage::IndexKind;
using storage::Row;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Balanced 4-leaf tree for tree predicates.
    auto t = phylo::ParseNewick("((a,b)x,(c,d)y)r;");
    ASSERT_TRUE(t.ok());
    tree_ = std::move(*t);
    auto idx = phylo::TreeIndex::Build(tree_);
    ASSERT_TRUE(idx.ok());
    index_ = std::make_unique<phylo::TreeIndex>(std::move(*idx));

    auto pschema = Schema::Create({{"acc", ValueType::kString, false},
                                   {"family", ValueType::kString, false},
                                   {"node_id", ValueType::kInt64, true},
                                   {"pre", ValueType::kInt64, true}});
    proteins_ = std::make_unique<Table>("proteins", *pschema);
    for (auto leaf : tree_.Leaves()) {
      const std::string& name = tree_.node(leaf).name;
      ASSERT_TRUE(proteins_
                      ->Insert({Value::String(name),
                                Value::String(name < "c" ? "famA" : "famB"),
                                Value::Int64(leaf),
                                Value::Int64(index_->Pre(leaf))})
                      .ok());
    }
    ASSERT_TRUE(proteins_->CreateIndex("pre", IndexKind::kBTree).ok());
    ASSERT_TRUE(proteins_->CreateIndex("acc", IndexKind::kHash).ok());

    auto aschema = Schema::Create({{"acc", ValueType::kString, false},
                                   {"lig", ValueType::kString, false},
                                   {"aff", ValueType::kDouble, false}});
    activities_ = std::make_unique<Table>("activities", *aschema);
    struct Act {
      const char* acc;
      const char* lig;
      double aff;
    };
    for (const Act& act : std::initializer_list<Act>{
             {"a", "L1", 10},
             {"a", "L2", 500},
             {"b", "L1", 20},
             {"c", "L3", 5},
             {"c", "L1", 900},
             {"d", "L2", 50},
         }) {
      ASSERT_TRUE(activities_
                      ->Insert({Value::String(act.acc), Value::String(act.lig),
                                Value::Double(act.aff)})
                      .ok());
    }
    auto lschema = Schema::Create({{"lig", ValueType::kString, false},
                                   {"mw", ValueType::kDouble, false}});
    ligands_ = std::make_unique<Table>("ligands", *lschema);
    for (const char* lig : {"L1", "L2", "L3"}) {
      ASSERT_TRUE(ligands_
                      ->Insert({Value::String(lig),
                                Value::Double(100.0 + lig[1] * 1.0)})
                      .ok());
    }
    ASSERT_TRUE(proteins_->Analyze().ok());
    ASSERT_TRUE(activities_->Analyze().ok());
    ASSERT_TRUE(ligands_->Analyze().ok());

    ASSERT_TRUE(catalog_.Register(proteins_.get()).ok());
    ASSERT_TRUE(catalog_.Register(activities_.get()).ok());
    ASSERT_TRUE(catalog_.Register(ligands_.get()).ok());
    catalog_.SetTree(&tree_, index_.get());
    ASSERT_TRUE(catalog_.BindTree("proteins", {"node_id", "pre", ""}).ok());

    result_cache_ = std::make_unique<ResultCache>(1 << 20);
    planner_ = std::make_unique<Planner>(&catalog_, result_cache_.get());
  }

  QueryResult Run(const std::string& sql,
                  PlannerOptions opts = PlannerOptions::Optimized()) {
    auto outcome = planner_->Run(sql, opts);
    EXPECT_TRUE(outcome.ok()) << sql << ": " << outcome.status();
    return outcome.ok() ? outcome->result : QueryResult{};
  }

  phylo::Tree tree_;
  std::unique_ptr<phylo::TreeIndex> index_;
  std::unique_ptr<Table> proteins_, activities_, ligands_;
  Catalog catalog_;
  std::unique_ptr<ResultCache> result_cache_;
  std::unique_ptr<Planner> planner_;
};

TEST_F(ExecTest, SimpleProjection) {
  auto r = Run("SELECT p.acc FROM proteins p");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"p.acc"}));
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(ExecTest, FilterEquality) {
  auto r = Run("SELECT p.acc FROM proteins p WHERE p.family = 'famA'");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "a");
  EXPECT_EQ(r.rows[1][0].AsString(), "b");
}

TEST_F(ExecTest, ComputedProjection) {
  auto r = Run("SELECT a.aff * 2 AS double_aff FROM activities a "
               "WHERE a.acc = 'a' ORDER BY double_aff");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 20.0);
  EXPECT_DOUBLE_EQ(r.rows[1][0].AsDouble(), 1000.0);
}

TEST_F(ExecTest, JoinTwoTables) {
  auto r = Run(
      "SELECT p.acc, a.aff FROM proteins p JOIN activities a "
      "ON p.acc = a.acc ORDER BY a.aff");
  EXPECT_EQ(r.rows.size(), 6u);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(r.rows[5][1].AsDouble(), 900.0);
}

TEST_F(ExecTest, ThreeWayJoin) {
  auto r = Run(
      "SELECT p.acc, l.lig FROM proteins p "
      "JOIN activities a ON p.acc = a.acc "
      "JOIN ligands l ON a.lig = l.lig "
      "WHERE a.aff < 100 ORDER BY p.acc, l.lig");
  // a-L1(10), b-L1(20), c-L3(5), d-L2(50).
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].AsString(), "a");
  EXPECT_EQ(r.rows[0][1].AsString(), "L1");
  EXPECT_EQ(r.rows[2][0].AsString(), "c");
  EXPECT_EQ(r.rows[2][1].AsString(), "L3");
}

TEST_F(ExecTest, CrossJoinWithoutCondition) {
  auto r = Run("SELECT p.acc, l.lig FROM proteins p, ligands l");
  EXPECT_EQ(r.rows.size(), 12u);  // 4 x 3
}

TEST_F(ExecTest, GroupByAggregates) {
  auto r = Run(
      "SELECT p.family, COUNT(*) AS n, MIN(a.aff) AS best, MAX(a.aff) AS "
      "worst, AVG(a.aff) AS mean, SUM(a.aff) AS total "
      "FROM proteins p JOIN activities a ON p.acc = a.acc "
      "GROUP BY p.family ORDER BY p.family");
  ASSERT_EQ(r.rows.size(), 2u);
  // famA: a(10,500), b(20) -> n=3 best=10 worst=500 sum=530.
  EXPECT_EQ(r.rows[0][0].AsString(), "famA");
  EXPECT_EQ(r.rows[0][1].AsInt64(), 3);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 500.0);
  EXPECT_NEAR(r.rows[0][4].AsDouble(), 530.0 / 3, 1e-9);
  EXPECT_DOUBLE_EQ(r.rows[0][5].AsDouble(), 530.0);
  // famB: c(5,900), d(50) -> n=3.
  EXPECT_EQ(r.rows[1][1].AsInt64(), 3);
}

TEST_F(ExecTest, GlobalAggregateWithoutGroupBy) {
  auto r = Run("SELECT COUNT(*) AS n, AVG(a.aff) AS m FROM activities a");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 6);
  EXPECT_NEAR(r.rows[0][1].AsDouble(), 1485.0 / 6, 1e-9);
}

TEST_F(ExecTest, GlobalAggregateOverEmptyInput) {
  auto r = Run("SELECT COUNT(*) AS n FROM activities a WHERE a.aff < 0");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 0);
}

TEST_F(ExecTest, OrderByDescAndLimit) {
  auto r = Run(
      "SELECT a.aff FROM activities a ORDER BY a.aff DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 900.0);
  EXPECT_DOUBLE_EQ(r.rows[1][0].AsDouble(), 500.0);
}

TEST_F(ExecTest, LimitZero) {
  auto r = Run("SELECT a.aff FROM activities a LIMIT 0");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(ExecTest, SubtreePredicateSelectsClade) {
  auto r = Run(
      "SELECT p.acc FROM proteins p WHERE SUBTREE(p.node_id, 'x') "
      "ORDER BY p.acc");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "a");
  EXPECT_EQ(r.rows[1][0].AsString(), "b");
}

TEST_F(ExecTest, SubtreeByNodeIdLiteral) {
  phylo::NodeId y = tree_.FindByName("y");
  auto r = Run("SELECT p.acc FROM proteins p WHERE SUBTREE(p.node_id, " +
               std::to_string(y) + ") ORDER BY p.acc");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "c");
  EXPECT_EQ(r.rows[1][0].AsString(), "d");
}

TEST_F(ExecTest, SubtreeOfRootSelectsEverything) {
  auto r = Run("SELECT p.acc FROM proteins p WHERE SUBTREE(p.node_id, 'r')");
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(ExecTest, TreeDepthScalar) {
  auto r = Run(
      "SELECT p.acc, TREE_DEPTH(p.node_id) AS d FROM proteins p "
      "ORDER BY p.acc LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 2);
}

TEST_F(ExecTest, IsNullPredicate) {
  ASSERT_TRUE(proteins_
                  ->Insert({Value::String("orphan"), Value::String("famC"),
                            Value::Null(), Value::Null()})
                  .ok());
  catalog_.BumpEpoch();
  auto r = Run("SELECT p.acc FROM proteins p WHERE p.node_id IS NULL");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "orphan");
  auto r2 = Run("SELECT p.acc FROM proteins p WHERE p.node_id IS NOT NULL");
  EXPECT_EQ(r2.rows.size(), 4u);
}

TEST_F(ExecTest, NaiveAndOptimizedAgree) {
  const char* queries[] = {
      "SELECT p.acc FROM proteins p WHERE SUBTREE(p.node_id, 'x') "
      "ORDER BY p.acc",
      "SELECT p.acc, a.aff FROM proteins p JOIN activities a ON "
      "p.acc = a.acc WHERE a.aff < 100 ORDER BY p.acc, a.aff",
      "SELECT p.family, COUNT(*) AS n FROM proteins p JOIN activities a ON "
      "p.acc = a.acc GROUP BY p.family ORDER BY p.family",
      "SELECT p.acc, l.lig FROM proteins p JOIN activities a ON p.acc = "
      "a.acc JOIN ligands l ON a.lig = l.lig WHERE SUBTREE(p.node_id, 'y') "
      "ORDER BY p.acc, l.lig",
  };
  for (const char* sql : queries) {
    auto naive = Run(sql, PlannerOptions::Naive());
    auto optimized = Run(sql, PlannerOptions::Optimized());
    ASSERT_EQ(naive.rows.size(), optimized.rows.size()) << sql;
    for (size_t i = 0; i < naive.rows.size(); ++i) {
      EXPECT_EQ(naive.rows[i], optimized.rows[i]) << sql << " row " << i;
    }
  }
}

TEST_F(ExecTest, IndexScanChosenAndCorrect) {
  PlannerOptions opts = PlannerOptions::Optimized();
  auto outcome = planner_->Run(
      "SELECT p.acc FROM proteins p WHERE SUBTREE(p.node_id, 'x') "
      "ORDER BY p.acc",
      opts);
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome->physical_plan.find("IndexScan"), std::string::npos)
      << outcome->physical_plan;
  EXPECT_EQ(outcome->result.rows.size(), 2u);
  // The naive plan instead scans sequentially.
  auto naive = planner_->Run(
      "SELECT p.acc FROM proteins p WHERE SUBTREE(p.node_id, 'x') "
      "ORDER BY p.acc",
      PlannerOptions::Naive());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->physical_plan.find("IndexScan"), std::string::npos);
  EXPECT_NE(naive->physical_plan.find("SeqScan"), std::string::npos);
}

TEST_F(ExecTest, HashJoinVsNestedLoopSameRows) {
  PlannerOptions hash = PlannerOptions::Optimized();
  PlannerOptions nlj = PlannerOptions::Optimized();
  nlj.enable_hash_join = false;
  const char* sql =
      "SELECT p.acc, a.lig FROM proteins p JOIN activities a ON "
      "p.acc = a.acc ORDER BY p.acc, a.lig";
  auto h = planner_->Run(sql, hash);
  auto n = planner_->Run(sql, nlj);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(n.ok());
  EXPECT_NE(h->physical_plan.find("HashJoin"), std::string::npos);
  EXPECT_NE(n->physical_plan.find("NestedLoopJoin"), std::string::npos);
  EXPECT_EQ(h->result.rows, n->result.rows);
}

TEST_F(ExecTest, ResultCacheHitSkipsExecution) {
  PlannerOptions opts = PlannerOptions::Optimized();
  opts.use_result_cache = true;
  const char* sql = "SELECT p.acc FROM proteins p ORDER BY p.acc";
  auto first = planner_->Run(sql, opts);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_result_cache);
  auto second = planner_->Run(sql, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_result_cache);
  EXPECT_EQ(second->result.rows, first->result.rows);
  // Textually different but canonically identical query also hits.
  auto third = planner_->Run("select  p.acc  from proteins p order by p.acc",
                             opts);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->from_result_cache);
}

TEST_F(ExecTest, EpochBumpInvalidatesResultCache) {
  PlannerOptions opts = PlannerOptions::Optimized();
  opts.use_result_cache = true;
  const char* sql = "SELECT COUNT(*) AS n FROM proteins p";
  auto first = planner_->Run(sql, opts);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(proteins_
                  ->Insert({Value::String("fresh"), Value::String("famZ"),
                            Value::Null(), Value::Null()})
                  .ok());
  catalog_.BumpEpoch();
  auto second = planner_->Run(sql, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_result_cache);
  EXPECT_EQ(second->result.rows[0][0].AsInt64(),
            first->result.rows[0][0].AsInt64() + 1);
}

TEST_F(ExecTest, ExecStatsPopulated) {
  auto outcome = planner_->Run("SELECT p.acc FROM proteins p",
                               PlannerOptions::Naive());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->stats.rows_scanned, 4);
}

TEST_F(ExecTest, SemanticErrorsSurface) {
  EXPECT_TRUE(planner_->Run("SELECT nope FROM proteins p", {})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(planner_->Run("SELECT p.acc FROM missing p", {})
                  .status()
                  .IsNotFound());
}

TEST_F(ExecTest, ResultToStringRenders) {
  auto r = Run("SELECT p.acc FROM proteins p ORDER BY p.acc LIMIT 2");
  std::string text = r.ToString();
  EXPECT_NE(text.find("p.acc"), std::string::npos);
  EXPECT_NE(text.find("a"), std::string::npos);
}

// Property: for randomized single-table range predicates, index-backed plans
// must match naive full scans exactly.
class IndexEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(IndexEquivalence, RangePredicatesAgree) {
  // Fresh mini-catalog with a numeric indexed column.
  auto schema = Schema::Create(
      {{"k", ValueType::kInt64, false}, {"v", ValueType::kDouble, false}});
  ASSERT_TRUE(schema.ok());
  Table table("nums", *schema);
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 9);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(table
                    .Insert({Value::Int64(rng.UniformRange(0, 100)),
                             Value::Double(rng.NextDouble())})
                    .ok());
  }
  ASSERT_TRUE(table.CreateIndex("k", IndexKind::kBTree).ok());
  ASSERT_TRUE(table.Analyze().ok());
  Catalog catalog;
  ASSERT_TRUE(catalog.Register(&table).ok());
  Planner planner(&catalog);
  for (int trial = 0; trial < 10; ++trial) {
    int64_t lo = rng.UniformRange(0, 100);
    int64_t hi = rng.UniformRange(0, 100);
    if (lo > hi) std::swap(lo, hi);
    std::string sql = "SELECT n.k FROM nums n WHERE n.k >= " +
                      std::to_string(lo) + " AND n.k <= " +
                      std::to_string(hi) + " ORDER BY n.k";
    auto fast = planner.Run(sql, PlannerOptions::Optimized());
    auto slow = planner.Run(sql, PlannerOptions::Naive());
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(fast->result.rows, slow->result.rows) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalence, ::testing::Range(0, 4));

}  // namespace
}  // namespace query
}  // namespace drugtree
