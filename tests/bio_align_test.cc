#include "bio/align.h"

#include <gtest/gtest.h>

#include "bio/synthetic.h"
#include "util/rng.h"

namespace drugtree {
namespace bio {
namespace {

Sequence Seq(const std::string& id, const std::string& r) {
  auto s = Sequence::Create(id, r);
  EXPECT_TRUE(s.ok()) << s.status();
  return *s;
}

TEST(GlobalAlignTest, IdenticalSequences) {
  Sequence a = Seq("a", "MKVLWAALLV");
  auto aln = GlobalAlign(a, a);
  ASSERT_TRUE(aln.ok());
  EXPECT_EQ(aln->aligned_a, "MKVLWAALLV");
  EXPECT_EQ(aln->aligned_b, "MKVLWAALLV");
  EXPECT_DOUBLE_EQ(aln->Identity(), 1.0);
  EXPECT_DOUBLE_EQ(aln->GapFraction(), 0.0);
  // Score = sum of diagonal BLOSUM62 scores.
  int expected = 0;
  for (char c : a.residues()) {
    expected += SubstitutionMatrix::Blosum62().Score(c, c);
  }
  EXPECT_EQ(aln->score, expected);
}

TEST(GlobalAlignTest, SingleGap) {
  // b is a with one residue deleted; affine gap alignment should produce a
  // single '-' column.
  Sequence a = Seq("a", "MKVLWAAL");
  Sequence b = Seq("b", "MKVLAAL");  // W removed
  auto aln = GlobalAlign(a, b);
  ASSERT_TRUE(aln.ok());
  EXPECT_EQ(aln->aligned_a.size(), 8u);
  size_t gaps = 0;
  for (char c : aln->aligned_b) gaps += c == '-';
  EXPECT_EQ(gaps, 1u);
  EXPECT_EQ(aln->aligned_a, "MKVLWAAL");
}

TEST(GlobalAlignTest, EmptyVsNonEmpty) {
  Sequence a = Seq("a", "");
  Sequence b = Seq("b", "MKV");
  auto aln = GlobalAlign(a, b);
  ASSERT_TRUE(aln.ok());
  EXPECT_EQ(aln->aligned_a, "---");
  EXPECT_EQ(aln->aligned_b, "MKV");
  AlignParams p;
  EXPECT_EQ(aln->score, -(p.gap_open + 3 * p.gap_extend));
}

TEST(GlobalAlignTest, BothEmpty) {
  auto aln = GlobalAlign(Seq("a", ""), Seq("b", ""));
  ASSERT_TRUE(aln.ok());
  EXPECT_EQ(aln->score, 0);
  EXPECT_EQ(aln->Length(), 0u);
}

TEST(GlobalAlignTest, AffineGapPrefersOneLongGap) {
  // With affine penalties, one gap of length 2 beats two gaps of length 1.
  Sequence a = Seq("a", "MKVLWAALLVAC");
  Sequence b = Seq("b", "MKVLAALLVAC");  // drop W... make 2-gap: drop WA
  Sequence c = Seq("c", "MKVLALLVAC");   // drop W and one A
  auto aln = GlobalAlign(a, c);
  ASSERT_TRUE(aln.ok());
  // Count gap runs in aligned_b.
  int runs = 0;
  bool in_gap = false;
  for (char ch : aln->aligned_b) {
    if (ch == '-' && !in_gap) {
      ++runs;
      in_gap = true;
    } else if (ch != '-') {
      in_gap = false;
    }
  }
  EXPECT_EQ(runs, 1);
}

TEST(GlobalAlignTest, InvalidParamsRejected) {
  Sequence a = Seq("a", "MKV");
  AlignParams p;
  p.gap_open = -1;
  EXPECT_TRUE(GlobalAlign(a, a, p).status().IsInvalidArgument());
  p = AlignParams();
  p.matrix = nullptr;
  EXPECT_TRUE(GlobalAlign(a, a, p).status().IsInvalidArgument());
  p = AlignParams();
  p.gap_open = 0;
  p.gap_extend = 0;
  EXPECT_TRUE(GlobalAlign(a, a, p).status().IsInvalidArgument());
}

TEST(GlobalAlignTest, SymmetricScore) {
  Sequence a = Seq("a", "MKVLWAALLVACMKV");
  Sequence b = Seq("b", "MKLWAGLLVAMKW");
  auto ab = GlobalAlign(a, b);
  auto ba = GlobalAlign(b, a);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(ab->score, ba->score);
}

TEST(LocalAlignTest, FindsEmbeddedMotif) {
  Sequence a = Seq("a", "GGGGGMKVLWGGGGG");
  Sequence b = Seq("b", "AAAAAMKVLWAAAAA");
  auto aln = LocalAlign(a, b);
  ASSERT_TRUE(aln.ok());
  EXPECT_EQ(aln->aligned_a, "MKVLW");
  EXPECT_EQ(aln->aligned_b, "MKVLW");
  EXPECT_GT(aln->score, 0);
}

TEST(LocalAlignTest, UnrelatedSequencesLowScore) {
  // Completely hostile pairing still yields score >= 0.
  Sequence a = Seq("a", "WWWWW");
  Sequence b = Seq("b", "GGGGG");
  auto aln = LocalAlign(a, b);
  ASSERT_TRUE(aln.ok());
  EXPECT_GE(aln->score, 0);
}

TEST(LocalAlignTest, LocalScoreAtLeastGlobal) {
  util::Rng rng(5);
  auto seqs = RandomSequences(2, 60, &rng);
  auto local = LocalAlign(seqs[0], seqs[1]);
  auto global = GlobalAlign(seqs[0], seqs[1]);
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(global.ok());
  EXPECT_GE(local->score, global->score);
}

class AlignScoreConsistency : public ::testing::TestWithParam<int> {};

TEST_P(AlignScoreConsistency, ScoreOnlyMatchesFullAlignment) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  auto seqs = RandomSequences(2, 40 + GetParam() * 7, &rng);
  auto full = GlobalAlign(seqs[0], seqs[1]);
  auto score = GlobalAlignScore(seqs[0], seqs[1]);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(score.ok());
  EXPECT_EQ(full->score, *score);
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, AlignScoreConsistency,
                         ::testing::Range(0, 12));

class AlignmentWellFormed : public ::testing::TestWithParam<int> {};

TEST_P(AlignmentWellFormed, GaplessProjectionRecoversInputs) {
  util::Rng rng(100 + static_cast<uint64_t>(GetParam()));
  auto seqs = RandomSequences(2, 30 + GetParam() * 11, &rng);
  auto aln = GlobalAlign(seqs[0], seqs[1]);
  ASSERT_TRUE(aln.ok());
  ASSERT_EQ(aln->aligned_a.size(), aln->aligned_b.size());
  std::string a_no_gap, b_no_gap;
  for (size_t i = 0; i < aln->aligned_a.size(); ++i) {
    // No column may be all gaps.
    EXPECT_FALSE(aln->aligned_a[i] == '-' && aln->aligned_b[i] == '-');
    if (aln->aligned_a[i] != '-') a_no_gap += aln->aligned_a[i];
    if (aln->aligned_b[i] != '-') b_no_gap += aln->aligned_b[i];
  }
  EXPECT_EQ(a_no_gap, seqs[0].residues());
  EXPECT_EQ(b_no_gap, seqs[1].residues());
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, AlignmentWellFormed,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace bio
}  // namespace drugtree
