// ThreadPool semantics, focused on the concurrency contract ParallelFor
// gained for morsel execution: per-call completion (no interference between
// concurrent callers) and safe nesting inside pool tasks.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace drugtree {
namespace util {
namespace {

TEST(ThreadPoolTest, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "fn called for n=0"; });
  std::atomic<int> calls{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, SubmitAndWaitDrains) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

// The regression this file exists for: concurrent ParallelFor callers (plus
// a background Submit stream) must each observe exactly their own work
// completed when their call returns. The old implementation waited on the
// pool-wide idle condition, so callers blocked on each other's queues.
TEST(ThreadPoolTest, ConcurrentParallelForCallersDoNotInterfere) {
  ThreadPool pool(4);
  constexpr int kCallers = 8;
  constexpr int kRounds = 25;
  constexpr size_t kItems = 500;

  std::atomic<int> background{0};
  std::atomic<bool> stop{false};
  std::thread submitter([&] {
    while (!stop.load()) {
      pool.Submit([&background] { background.fetch_add(1); });
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> callers;
  std::vector<std::atomic<bool>> failed(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::vector<int> owned(kItems);
      for (int round = 0; round < kRounds; ++round) {
        std::fill(owned.begin(), owned.end(), 0);
        pool.ParallelFor(kItems, [&owned](size_t i) { owned[i] += 1; });
        // Everything this caller asked for is done the moment its call
        // returns, regardless of the other callers' in-flight work.
        for (size_t i = 0; i < kItems; ++i) {
          if (owned[i] != 1) failed[c].store(true);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  stop.store(true);
  submitter.join();
  pool.Wait();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_FALSE(failed[c].load()) << "caller " << c << " saw unfinished work";
  }
  EXPECT_GT(background.load(), 0);
}

// Nested use: a pool task issuing its own ParallelFor must complete (the
// caller participates in the work loop, so this cannot deadlock even when
// every worker is occupied by the outer tasks).
TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(2);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> cells(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](size_t o) {
    pool.ParallelFor(kInner,
                     [&, o](size_t i) { cells[o * kInner + i].fetch_add(1); });
  });
  for (size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].load(), 1) << i;
}

TEST(ThreadPoolTest, QueueDepthObservesBacklog) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.QueueDepth(), 0u);
  EXPECT_EQ(pool.ActiveCount(), 0);
  std::mutex gate;
  gate.lock();
  // The single worker blocks on `gate`; everything submitted behind it
  // stays visible in the queue.
  pool.Submit([&] { std::lock_guard<std::mutex> hold(gate); });
  constexpr size_t kBacklog = 5;
  for (size_t i = 0; i < kBacklog; ++i) pool.Submit([] {});
  // The blocker may still be queued or already active; the backlog behind
  // it is queued either way.
  EXPECT_GE(pool.QueueDepth(), kBacklog);
  EXPECT_LE(pool.QueueDepth(), kBacklog + 1);
  gate.unlock();
  pool.Wait();
  EXPECT_EQ(pool.QueueDepth(), 0u);
  EXPECT_EQ(pool.ActiveCount(), 0);
}

TEST(ThreadPoolTest, ParallelForSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr size_t kN = 4096;
  std::vector<int64_t> values(kN);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(kN, [&](size_t i) { sum.fetch_add(values[i]); });
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kN) * (kN + 1) / 2);
}

}  // namespace
}  // namespace util
}  // namespace drugtree
