// Hash index, bloom filter, and LRU cache tests.

#include <gtest/gtest.h>

#include "storage/bloom.h"
#include "storage/hash_index.h"
#include "storage/lru_cache.h"
#include "util/rng.h"

namespace drugtree {
namespace storage {
namespace {

TEST(HashIndexTest, InsertFindErase) {
  HashIndex idx;
  ASSERT_TRUE(idx.Insert(Value::String("a"), 1).ok());
  ASSERT_TRUE(idx.Insert(Value::String("a"), 2).ok());
  ASSERT_TRUE(idx.Insert(Value::String("b"), 3).ok());
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.NumKeys(), 2u);
  EXPECT_EQ(idx.Find(Value::String("a")), (std::vector<RowId>{1, 2}));
  EXPECT_TRUE(idx.Find(Value::String("z")).empty());
  EXPECT_TRUE(idx.Contains(Value::String("b")));
  ASSERT_TRUE(idx.Erase(Value::String("a"), 1).ok());
  EXPECT_EQ(idx.Find(Value::String("a")), (std::vector<RowId>{2}));
  ASSERT_TRUE(idx.Erase(Value::String("a"), 2).ok());
  EXPECT_FALSE(idx.Contains(Value::String("a")));
  EXPECT_EQ(idx.NumKeys(), 1u);
}

TEST(HashIndexTest, DuplicatePairRejected) {
  HashIndex idx;
  ASSERT_TRUE(idx.Insert(Value::Int64(1), 7).ok());
  EXPECT_TRUE(idx.Insert(Value::Int64(1), 7).IsAlreadyExists());
}

TEST(HashIndexTest, EraseMissingNotFound) {
  HashIndex idx;
  EXPECT_TRUE(idx.Erase(Value::Int64(1), 7).IsNotFound());
  ASSERT_TRUE(idx.Insert(Value::Int64(1), 7).ok());
  EXPECT_TRUE(idx.Erase(Value::Int64(1), 8).IsNotFound());
}

TEST(HashIndexTest, MixedValueTypes) {
  HashIndex idx;
  ASSERT_TRUE(idx.Insert(Value::Int64(42), 1).ok());
  ASSERT_TRUE(idx.Insert(Value::String("42"), 2).ok());
  EXPECT_EQ(idx.Find(Value::Int64(42)), (std::vector<RowId>{1}));
  EXPECT_EQ(idx.Find(Value::String("42")), (std::vector<RowId>{2}));
  // Int64 42 and Double 42.0 are equal values, so they share an entry list.
  EXPECT_EQ(idx.Find(Value::Double(42.0)), (std::vector<RowId>{1}));
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(1000, 10);
  util::Rng rng(3);
  std::vector<Value> added;
  for (int i = 0; i < 1000; ++i) {
    added.push_back(Value::Int64(rng.UniformRange(0, 1000000)));
    bloom.Add(added.back());
  }
  for (const auto& v : added) {
    EXPECT_TRUE(bloom.MayContain(v));
  }
}

TEST(BloomFilterTest, FalsePositiveRateReasonable) {
  BloomFilter bloom(1000, 10);
  for (int i = 0; i < 1000; ++i) bloom.Add(Value::Int64(i));
  int fp = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    if (bloom.MayContain(Value::Int64(1'000'000 + i))) ++fp;
  }
  // 10 bits/key should give roughly 1% false positives; allow generous slack.
  EXPECT_LT(double(fp) / probes, 0.05);
  EXPECT_LT(bloom.EstimatedFalsePositiveRate(), 0.05);
}

TEST(BloomFilterTest, StringKeys) {
  BloomFilter bloom(100);
  bloom.Add(Value::String("P0001"));
  EXPECT_TRUE(bloom.MayContain(Value::String("P0001")));
  EXPECT_EQ(bloom.items_added(), 1u);
}

TEST(LruCacheTest, BasicPutGet) {
  LruCache<int, std::string> cache(10);
  cache.Put(1, "one");
  cache.Put(2, "two");
  auto v = cache.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "one");
  EXPECT_FALSE(cache.Get(3).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(3);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  cache.Get(1);       // 1 is now MRU; 2 is LRU
  cache.Put(4, 40);   // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, ChargeBasedEviction) {
  LruCache<int, std::string> cache(100);
  cache.Put(1, "a", 60);
  cache.Put(2, "b", 60);  // exceeds capacity: evicts 1
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.used(), 60u);
}

TEST(LruCacheTest, OversizedEntryNotCached) {
  LruCache<int, int> cache(10);
  cache.Put(1, 1, 11);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, OverwriteUpdatesValueAndCharge) {
  LruCache<int, std::string> cache(10);
  cache.Put(1, "old", 4);
  cache.Put(1, "new", 6);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.used(), 6u);
  EXPECT_EQ(*cache.Get(1), "new");
}

TEST(LruCacheTest, EraseAndClear) {
  LruCache<int, int> cache(10);
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Erase(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.used(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.used(), 0u);
}

TEST(LruCacheTest, ForEachVisitsAll) {
  LruCache<int, int> cache(10);
  cache.Put(1, 10);
  cache.Put(2, 20);
  int sum = 0;
  cache.ForEach([&](const int& k, const int& v) { sum += k + v; });
  EXPECT_EQ(sum, 33);
}

TEST(LruCacheTest, HitRate) {
  LruCache<int, int> cache(10);
  cache.Put(1, 1);
  cache.Get(1);
  cache.Get(1);
  cache.Get(2);
  EXPECT_NEAR(cache.stats().HitRate(), 2.0 / 3.0, 1e-12);
}

TEST(LruCacheTest, StressAgainstCapacity) {
  LruCache<int, int> cache(50);
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    cache.Put(static_cast<int>(rng.Uniform(200)), i);
    EXPECT_LE(cache.used(), 50u);
    EXPECT_LE(cache.size(), 50u);
  }
}

}  // namespace
}  // namespace storage
}  // namespace drugtree
