// E5 (Table 2): tree-construction cost and accuracy — UPGMA vs
// neighbor-joining across taxa counts, on clock-like and non-clock-like
// evolved families, scored by normalized Robinson-Foulds distance to the
// generating tree.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "bio/distance.h"
#include "bio/synthetic.h"
#include "phylo/builder.h"
#include "phylo/newick.h"
#include "phylo/tree_metrics.h"

namespace {

using namespace drugtree;

struct Family {
  bio::DistanceMatrix dist;
  phylo::Tree truth;
};

Family* GetFamily(int taxa, bool clock_like) {
  static std::map<std::pair<int, bool>, Family*> cache;
  auto key = std::make_pair(taxa, clock_like);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  util::Rng rng(static_cast<uint64_t>(taxa) * 2 + clock_like);
  bio::EvolutionParams ep;
  ep.num_taxa = taxa;
  ep.sequence_length = 200;
  ep.clock_like = clock_like;
  ep.indel_probability = 0.0;
  auto fam = bio::EvolveFamily(ep, &rng);
  DT_CHECK(fam.ok());
  auto* f = new Family();
  auto dist = bio::KmerDistanceMatrix(fam->sequences, 3);
  DT_CHECK(dist.ok());
  f->dist = std::move(*dist);
  auto truth = phylo::ParseNewick(fam->true_tree_newick);
  DT_CHECK(truth.ok());
  f->truth = std::move(*truth);
  cache[key] = f;
  return f;
}

void BM_Upgma(benchmark::State& state) {
  Family* f = GetFamily(static_cast<int>(state.range(0)), false);
  for (auto _ : state) {
    auto tree = phylo::BuildUpgma(f->dist);
    DT_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
}

void BM_NeighborJoining(benchmark::State& state) {
  Family* f = GetFamily(static_cast<int>(state.range(0)), false);
  for (auto _ : state) {
    auto tree = phylo::BuildNeighborJoining(f->dist);
    DT_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
}

void AccuracyTable() {
  std::printf("\n-- reconstruction accuracy (normalized RF; lower = better) --\n");
  std::printf("%6s %12s %12s %12s %12s\n", "taxa", "UPGMA/clock",
              "NJ/clock", "UPGMA/free", "NJ/free");
  for (int taxa : {16, 32, 64}) {
    double cells[4];
    int c = 0;
    for (bool clock_like : {true, false}) {
      Family* f = GetFamily(taxa, clock_like);
      for (auto method :
           {phylo::TreeMethod::kUpgma, phylo::TreeMethod::kNeighborJoining}) {
        auto tree = phylo::BuildTree(f->dist, method);
        DT_CHECK(tree.ok());
        auto nrf = phylo::NormalizedRobinsonFoulds(*tree, f->truth);
        DT_CHECK(nrf.ok());
        cells[c++] = *nrf;
      }
    }
    std::printf("%6d %12.3f %12.3f %12.3f %12.3f\n", taxa, cells[0], cells[1],
                cells[2], cells[3]);
  }
  std::printf("shape check: NJ >= UPGMA accuracy off the clock; both cheap\n"
              "at DrugTree scales, NJ cost grows ~n^3.\n");
}

}  // namespace

BENCHMARK(BM_Upgma)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NeighborJoining)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  drugtree::bench::Banner("E5 (Table 2)",
                          "tree construction: UPGMA vs neighbor-joining\n"
                          "(build cost + reconstruction accuracy)");
  auto metrics_flag = drugtree::bench::ParseMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  AccuracyTable();
  drugtree::bench::DumpMetrics(metrics_flag);
  return 0;
}
