// E7 (Fig 5): semantic result-cache behaviour over an interactive analyst
// session — hit rate as the session progresses (hot clades repeat), and the
// end-to-end speedup, with invalidation churn from live assay updates.

#include <cstdio>

#include "bench_util.h"
#include "core/drugtree.h"
#include "core/workload.h"
#include "util/clock.h"

namespace {

using namespace drugtree;

}  // namespace

int main(int argc, char** argv) {
  auto metrics_flag = drugtree::bench::ParseMetricsFlag(&argc, argv);
  bench::Banner("E7 (Fig 5)",
                "semantic result cache over an interactive session\n"
                "(Zipf-skewed workload; hit rate + speedup + invalidation)");
  util::SimulatedClock clock;
  core::BuildOptions options;
  options.seed = 47;
  options.num_families = 6;
  options.taxa_per_family = 24;
  options.num_ligands = 400;
  auto built = core::DrugTree::Build(options, &clock);
  DT_CHECK(built.ok()) << built.status();
  auto& dt = *built;

  core::WorkloadParams wp;
  wp.num_queries = 400;
  wp.node_skew = 0.9;  // hot clades
  util::Rng rng(3);
  auto workload = core::GenerateWorkload(dt->tree(), dt->tree_index(), wp, &rng);

  // Phase 1: hit-rate curve in windows of 50 queries.
  query::PlannerOptions cached = query::PlannerOptions::Optimized();
  cached.use_result_cache = true;
  std::printf("\n-- hit rate per 50-query window --\n");
  std::printf("%8s %10s\n", "window", "hit rate");
  int window_hits = 0, window_n = 0, window_id = 0;
  for (const auto& q : workload) {
    auto outcome = dt->Query(q.sql, cached);
    DT_CHECK(outcome.ok()) << q.sql << ": " << outcome.status();
    window_hits += outcome->from_result_cache ? 1 : 0;
    if (++window_n == 50) {
      std::printf("%8d %9.0f%%\n", ++window_id, 100.0 * window_hits / 50);
      window_hits = window_n = 0;
    }
  }

  // Phase 2: wall-clock speedup cached vs uncached (real compute time).
  auto time_workload = [&](const query::PlannerOptions& opts) {
    util::Timer timer(util::RealClock::Instance());
    for (const auto& q : workload) {
      auto outcome = dt->Query(q.sql, opts);
      DT_CHECK(outcome.ok());
    }
    return timer.ElapsedMicros() / 1000.0;
  };
  dt->result_cache()->Clear();
  double uncached_ms = time_workload(query::PlannerOptions::Optimized());
  dt->result_cache()->Clear();
  double cached_ms = time_workload(cached);
  std::printf("\n-- end-to-end (400 queries, real compute) --\n");
  std::printf("uncached: %8.1f ms\ncached:   %8.1f ms (%.1fx)\n", uncached_ms,
              cached_ms, uncached_ms / cached_ms);
  std::printf("cache stats: %llu hits / %llu misses\n",
              (unsigned long long)dt->result_cache()->stats().hits,
              (unsigned long long)dt->result_cache()->stats().misses);

  // Phase 3: invalidation churn — one live assay update per 20 queries.
  dt->result_cache()->Clear();
  auto leaves = dt->tree().Leaves();
  util::Rng update_rng(9);
  int hits = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (i % 20 == 19) {
      const auto& leaf = leaves[update_rng.Uniform(leaves.size())];
      DT_CHECK(dt->AddActivity(dt->tree().node(leaf).name, "L000001",
                               update_rng.UniformDouble(1, 1000))
                   .ok());
    }
    auto outcome = dt->Query(workload[i].sql, cached);
    DT_CHECK(outcome.ok());
    hits += outcome->from_result_cache ? 1 : 0;
  }
  std::printf("\n-- with live updates every 20 queries --\n");
  std::printf("hit rate under churn: %.0f%% (vs steady-state above)\n",
              100.0 * hits / double(workload.size()));
  std::printf("\nshape check: hit rate climbs as hot clades repeat; epoch\n"
              "invalidation trades hits for freshness under churn.\n");
  drugtree::bench::DumpMetrics(metrics_flag);
  return 0;
}
