// E9 (Fig 6): the headline end-to-end experiment — a complete analyst
// workflow (integrate sources, build tree, run an interactive mobile
// session with overlay queries) timed cold and warm, unoptimized vs fully
// optimized. Reproduces the poster's summary claim: the combined standard +
// novel mechanisms "improve performance time".

#include <cstdio>

#include "bench_util.h"
#include "core/drugtree.h"
#include "core/workload.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace {

using namespace drugtree;

struct WorkflowResult {
  double build_ms = 0;         // integrate + tree + overlay (simulated net +
                               // real compute)
  double query_phase_ms = 0;   // 100-query analyst batch (real compute)
  double session_mean_ms = 0;  // mobile interaction mean (simulated)
  double session_p95_ms = 0;
};

WorkflowResult RunWorkflow(bool optimized, bool batch_integration,
                           int fetch_concurrency = 1, int parallelism = 1) {
  WorkflowResult result;
  util::SimulatedClock clock;
  // Spans opened during this workflow are stamped off the simulated clock,
  // so per-phase span totals report exact simulated attribution.
  obs::Tracer::Default()->set_clock(&clock);
  util::Timer real(util::RealClock::Instance());

  core::BuildOptions options;
  options.seed = 61;
  options.num_families = 6;
  options.taxa_per_family = 24;
  options.num_ligands = 400;
  options.batch_requests = batch_integration;
  options.fetch_concurrency = fetch_concurrency;
  int64_t sim0 = clock.NowMicros();
  auto built = core::DrugTree::Build(options, &clock);
  DT_CHECK(built.ok()) << built.status();
  auto& dt = *built;
  result.build_ms =
      (clock.NowMicros() - sim0) / 1000.0 + real.ElapsedMicros() / 1000.0;

  query::PlannerOptions qopts = optimized ? query::PlannerOptions::Optimized()
                                          : query::PlannerOptions::Naive();
  qopts.use_result_cache = optimized;
  qopts.parallelism = parallelism;

  // Analyst query batch.
  core::WorkloadParams wp;
  wp.num_queries = 100;
  wp.node_skew = 0.8;
  util::Rng rng(7);
  auto workload = core::GenerateWorkload(dt->tree(), dt->tree_index(), wp, &rng);
  util::Timer qtimer(util::RealClock::Instance());
  for (const auto& q : workload) {
    auto outcome = dt->Query(q.sql, qopts);
    DT_CHECK(outcome.ok()) << q.sql << ": " << outcome.status();
  }
  result.query_phase_ms = qtimer.ElapsedMicros() / 1000.0;

  // Mobile session on 3G.
  mobile::TraceParams tp;
  tp.num_actions = 30;
  auto trace = dt->MakeTrace(tp, 5);
  mobile::SessionOptions sopts;
  sopts.progressive_lod = optimized;
  sopts.delta_encoding = optimized;
  auto session =
      dt->MakeSession(mobile::DeviceProfile::Phone3G(), sopts, qopts);
  auto report = session.Run(trace);
  DT_CHECK(report.ok());
  result.session_mean_ms = report->latency_ms.Mean();
  result.session_p95_ms = report->latency_ms.Percentile(95);
  obs::Tracer::Default()->set_clock(nullptr);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto metrics_flag = bench::ParseMetricsFlag(&argc, argv);
  bench::Banner("E9 (Fig 6)",
                "end-to-end analyst workflow: unoptimized vs optimized\n"
                "(integration + tree build + 100 queries + mobile session)");
  auto naive = RunWorkflow(/*optimized=*/false, /*batch_integration=*/false);
  auto fast = RunWorkflow(/*optimized=*/true, /*batch_integration=*/true);

  std::printf("\n%-28s %14s %14s %10s\n", "phase", "unoptimized",
              "optimized", "speedup");
  auto row = [](const char* label, double a, double b) {
    std::printf("%-28s %12.1fms %12.1fms %9.1fx\n", label, a, b, a / b);
  };
  row("source integration + build", naive.build_ms, fast.build_ms);
  row("100-query analyst batch", naive.query_phase_ms, fast.query_phase_ms);
  row("mobile interaction (mean)", naive.session_mean_ms,
      fast.session_mean_ms);
  row("mobile interaction (p95)", naive.session_p95_ms, fast.session_p95_ms);
  std::printf("\n-- overlapped fetch + morsel parallelism: window sweep --\n");
  std::printf("(per-record integration, optimized planner; concurrency\n"
              "drives both the fetch window and query parallelism)\n");
  std::printf("%12s %16s %18s\n", "concurrency", "build (ms)",
              "query batch (ms)");
  for (int c : {1, 2, 4, 8}) {
    auto r = RunWorkflow(/*optimized=*/true, /*batch_integration=*/false,
                         /*fetch_concurrency=*/c, /*parallelism=*/c);
    std::printf("%12d %16.1f %18.1f\n", c, r.build_ms, r.query_phase_ms);
  }

  std::printf("\nshape check: every phase improves; the query batch and the\n"
              "mobile path (the poster's two complaints) improve the most;\n"
              "widening the fetch window shrinks per-record build time.\n");
  bench::DumpMetrics(metrics_flag);
  return 0;
}
