// E6 (Fig 4): ligand similarity search — linear Tanimoto scan vs the
// popcount-bound (Swamidass-Baldi) binned index, across library sizes and
// thresholds; plus top-k search.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "chem/fingerprint.h"
#include "chem/similarity.h"
#include "chem/smiles.h"
#include "chem/synthetic_ligands.h"
#include "util/thread_pool.h"

namespace {

using namespace drugtree;
using chem::Fingerprint;
using chem::SimilarityIndex;

struct Library {
  SimilarityIndex index{1024};
  std::vector<Fingerprint> fingerprints;
};

Library* GetLibrary(int size) {
  static std::map<int, Library*> cache;
  auto it = cache.find(size);
  if (it != cache.end()) return it->second;
  auto* lib = new Library();
  util::Rng rng(static_cast<uint64_t>(size) + 3);
  chem::LigandGenParams params;
  params.num_families = std::max(10, size / 40);
  auto ligands = chem::GenerateLigands(size, params, &rng);
  DT_CHECK(ligands.ok());
  for (size_t i = 0; i < ligands->size(); ++i) {
    auto mol = chem::ParseSmiles((*ligands)[i].smiles);
    DT_CHECK(mol.ok());
    auto fp = chem::ComputeFingerprint(*mol);
    DT_CHECK(fp.ok());
    lib->fingerprints.push_back(*fp);
    DT_CHECK(lib->index.Add(static_cast<int64_t>(i), *fp).ok());
  }
  cache[size] = lib;
  return lib;
}

// Threshold is passed scaled by 100 in range(1).
void BM_LinearScan(benchmark::State& state) {
  Library* lib = GetLibrary(static_cast<int>(state.range(0)));
  double threshold = state.range(1) / 100.0;
  size_t cursor = 0;
  int64_t hits = 0;
  for (auto _ : state) {
    const auto& q = lib->fingerprints[cursor++ % lib->fingerprints.size()];
    auto result = lib->index.LinearSearchThreshold(q, threshold);
    hits += static_cast<int64_t>(result.size());
    benchmark::DoNotOptimize(result);
  }
  state.counters["hits"] = benchmark::Counter(
      double(hits) / double(state.iterations()));
}

void BM_BinnedIndex(benchmark::State& state) {
  Library* lib = GetLibrary(static_cast<int>(state.range(0)));
  double threshold = state.range(1) / 100.0;
  size_t cursor = 0;
  int64_t hits = 0;
  for (auto _ : state) {
    const auto& q = lib->fingerprints[cursor++ % lib->fingerprints.size()];
    auto result = lib->index.SearchThreshold(q, threshold);
    DT_CHECK(result.ok());
    hits += static_cast<int64_t>(result->size());
    benchmark::DoNotOptimize(result);
  }
  state.counters["hits"] = benchmark::Counter(
      double(hits) / double(state.iterations()));
}

// Morsel-parallel binned scan; range(2) is the parallelism (1 = serial
// fallback, pool of parallelism-1 workers + the caller otherwise).
void BM_ParallelBinnedIndex(benchmark::State& state) {
  Library* lib = GetLibrary(static_cast<int>(state.range(0)));
  double threshold = state.range(1) / 100.0;
  int parallelism = static_cast<int>(state.range(2));
  static std::map<int, util::ThreadPool*> pools;
  util::ThreadPool* pool = nullptr;
  if (parallelism > 1) {
    auto it = pools.find(parallelism);
    if (it == pools.end()) {
      it = pools.emplace(parallelism, new util::ThreadPool(parallelism - 1))
               .first;
    }
    pool = it->second;
  }
  size_t cursor = 0;
  int64_t hits = 0;
  for (auto _ : state) {
    const auto& q = lib->fingerprints[cursor++ % lib->fingerprints.size()];
    auto result = lib->index.SearchThresholdParallel(q, threshold, pool);
    DT_CHECK(result.ok());
    hits += static_cast<int64_t>(result->size());
    benchmark::DoNotOptimize(result);
  }
  state.counters["hits"] = benchmark::Counter(
      double(hits) / double(state.iterations()));
}

void BM_TopK(benchmark::State& state) {
  Library* lib = GetLibrary(static_cast<int>(state.range(0)));
  size_t cursor = 0;
  for (auto _ : state) {
    const auto& q = lib->fingerprints[cursor++ % lib->fingerprints.size()];
    auto result = lib->index.SearchTopK(q, 10);
    DT_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}

}  // namespace

BENCHMARK(BM_LinearScan)
    ->Args({1000, 70})->Args({5000, 70})->Args({20000, 70})
    ->Args({20000, 90});
BENCHMARK(BM_BinnedIndex)
    ->Args({1000, 70})->Args({5000, 70})->Args({20000, 70})
    ->Args({20000, 90});
BENCHMARK(BM_ParallelBinnedIndex)
    ->Args({20000, 70, 1})->Args({20000, 70, 2})->Args({20000, 70, 4})
    ->Args({20000, 70, 8})->Args({20000, 90, 4});
BENCHMARK(BM_TopK)->Arg(1000)->Arg(5000)->Arg(20000);

int main(int argc, char** argv) {
  drugtree::bench::Banner(
      "E6 (Fig 4)",
      "ligand Tanimoto search: linear scan vs popcount-binned index\n"
      "(args: {library size, threshold*100})");
  auto metrics_flag = drugtree::bench::ParseMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  drugtree::bench::DumpMetrics(metrics_flag);
  return 0;
}
