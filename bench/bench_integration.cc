// E3 (Fig 2): federated integration latency vs source RTT, with and without
// the semantic cache / batching / tree-aware prefetching. Time is simulated,
// so the x-axis sweeps real 2013-era RTTs cheaply.

#include <cstdio>

#include "bench_util.h"
#include "integration/mediator.h"
#include "integration/prefetcher.h"
#include "util/clock.h"

namespace {

using namespace drugtree;
using namespace drugtree::integration;

struct World {
  std::unique_ptr<util::SimulatedClock> clock;
  std::unique_ptr<SimulatedNetwork> network;
  std::unique_ptr<ProteinSource> proteins;
  std::unique_ptr<LigandSource> ligands;
  std::unique_ptr<ActivitySource> activities;
  std::unique_ptr<SemanticCache> cache;
  std::unique_ptr<Mediator> mediator;
  std::vector<std::string> accessions;
};

World MakeWorld(int64_t rtt_ms) {
  World w;
  w.clock = std::make_unique<util::SimulatedClock>();
  NetworkParams params;
  params.latency_micros = rtt_ms * 1000;
  params.jitter_fraction = 0.0;
  w.network = std::make_unique<SimulatedNetwork>(w.clock.get(), params);
  util::Rng rng(17);
  ProteinSourceParams pp;
  pp.num_families = 6;
  pp.taxa_per_family = 16;
  auto ps = ProteinSource::Create(pp, w.network.get(), &rng);
  DT_CHECK(ps.ok());
  w.proteins = std::make_unique<ProteinSource>(std::move(*ps));
  chem::LigandGenParams lp;
  auto ls = LigandSource::Create(300, lp, w.network.get(), &rng);
  DT_CHECK(ls.ok());
  w.ligands = std::make_unique<LigandSource>(std::move(*ls));
  w.accessions = w.proteins->ListAccessions();
  ActivityGenParams ap;
  auto as = ActivitySource::Create(w.accessions, w.ligands->ListIds(), ap,
                                   w.network.get(), &rng);
  DT_CHECK(as.ok());
  w.activities = std::make_unique<ActivitySource>(std::move(*as));
  w.cache = std::make_unique<SemanticCache>(16 * 1024 * 1024);
  w.mediator = std::make_unique<Mediator>(w.proteins.get(), w.ligands.get(),
                                          w.activities.get(), w.cache.get());
  return w;
}

// Interactive access pattern: 200 protein+activity lookups with clade
// locality (runs of the same family).
void DrillDownSession(World& w, bool use_cache, bool prefetch,
                      bool async_prefetch, double* out_total_ms,
                      uint64_t* out_requests) {
  util::Rng rng(5);
  MediatorOptions mopts;
  mopts.use_cache = use_cache;
  PrefetcherOptions popts;
  popts.widen_to_family = prefetch;
  popts.async_prefetch = async_prefetch;
  TreeAwarePrefetcher prefetcher(w.mediator.get(), w.cache.get(), popts);

  int64_t t0 = w.clock->NowMicros();
  uint64_t r0 = w.network->num_requests();
  for (int burst = 0; burst < 20; ++burst) {
    // Pick a protein; inspect it and 9 clade mates (locality).
    const std::string& seed = w.accessions[rng.Uniform(w.accessions.size())];
    std::string family;
    if (prefetch) {
      auto rec = prefetcher.GetProtein(seed);
      DT_CHECK(rec.ok());
      family = rec->family;
    } else {
      auto rec = w.mediator->GetProtein(seed, mopts);
      DT_CHECK(rec.ok());
      family = rec->family;
    }
    // Mates come from the same family (what the analyst clicks next).
    std::vector<std::string> mates;
    for (const auto& acc : w.accessions) {
      if (acc != seed && acc.substr(0, 3) == seed.substr(0, 3)) {
        mates.push_back(acc);
      }
    }
    for (size_t i = 0; i < std::min<size_t>(9, mates.size()); ++i) {
      if (prefetch) {
        DT_CHECK(prefetcher.GetProtein(mates[i]).ok());
      } else {
        DT_CHECK(w.mediator->GetProtein(mates[i], mopts).ok());
      }
    }
  }
  prefetcher.Quiesce();  // pay any overlapped widening still in flight
  *out_total_ms = (w.clock->NowMicros() - t0) / 1000.0;
  *out_requests = w.network->num_requests() - r0;
}

}  // namespace

int main(int argc, char** argv) {
  auto metrics_flag = drugtree::bench::ParseMetricsFlag(&argc, argv);
  bench::Banner("E3 (Fig 2)",
                "federated integration latency vs source RTT\n"
                "(96 proteins, 300 ligands; simulated network)");

  std::printf("\n-- bulk integration: batched vs per-record requests --\n");
  std::printf("%8s %18s %18s %10s\n", "RTT(ms)", "batched(ms)",
              "per-record(ms)", "speedup");
  for (int64_t rtt : {10, 50, 100, 250, 500}) {
    World w = MakeWorld(rtt);
    MediatorOptions batched;
    batched.batch_requests = true;
    int64_t t0 = w.clock->NowMicros();
    DT_CHECK(w.mediator->IntegrateAll(batched).ok());
    double batched_ms = (w.clock->NowMicros() - t0) / 1000.0;
    MediatorOptions per_record;
    per_record.batch_requests = false;
    per_record.use_cache = false;
    t0 = w.clock->NowMicros();
    DT_CHECK(w.mediator->IntegrateAll(per_record).ok());
    double record_ms = (w.clock->NowMicros() - t0) / 1000.0;
    std::printf("%8lld %18.1f %18.1f %9.1fx\n", (long long)rtt, batched_ms,
                record_ms, record_ms / batched_ms);
  }

  std::printf(
      "\n-- interactive drill-down (200 lookups, clade locality) --\n");
  std::printf("%8s %14s %14s %14s %22s\n", "RTT(ms)", "no-cache(ms)",
              "cache(ms)", "+prefetch(ms)", "requests (nc/c/pf)");
  for (int64_t rtt : {10, 50, 100, 250, 500}) {
    double no_cache_ms, cache_ms, prefetch_ms;
    uint64_t nc_req, c_req, pf_req;
    {
      World w = MakeWorld(rtt);
      DrillDownSession(w, false, false, false, &no_cache_ms, &nc_req);
    }
    {
      World w = MakeWorld(rtt);
      DrillDownSession(w, true, false, false, &cache_ms, &c_req);
    }
    {
      World w = MakeWorld(rtt);
      DrillDownSession(w, true, true, false, &prefetch_ms, &pf_req);
    }
    std::printf("%8lld %14.1f %14.1f %14.1f %10llu/%llu/%llu\n",
                (long long)rtt, no_cache_ms, cache_ms, prefetch_ms,
                (unsigned long long)nc_req, (unsigned long long)c_req,
                (unsigned long long)pf_req);
  }
  std::printf("\n-- flaky link (100 ms RTT, 2 s timeout, retried) --\n");
  std::printf("%12s %18s %14s\n", "failure p", "integrate (ms)", "timeouts");
  for (double p : {0.0, 0.05, 0.15, 0.30}) {
    World w = MakeWorld(100);
    // Rebuild the network with failure injection.
    NetworkParams params = w.network->params();
    params.failure_probability = p;
    params.timeout_micros = 2'000'000;
    w.network->set_params(params);
    uint64_t f0 = w.network->num_failures();
    int64_t t0 = w.clock->NowMicros();
    // Per-record fetching (hundreds of requests) so failures actually bite.
    MediatorOptions opts;
    opts.batch_requests = false;
    opts.use_cache = false;
    DT_CHECK(w.mediator->IntegrateAll(opts).ok());
    std::printf("%12.2f %18.1f %14llu\n", p,
                (w.clock->NowMicros() - t0) / 1000.0,
                (unsigned long long)(w.network->num_failures() - f0));
  }

  std::printf(
      "\n-- overlapped fetch: per-record integration, window sweep --\n");
  std::printf("(default link: 50 ms RTT, 1 MB/s, cold cache)\n");
  std::printf("%12s %18s %10s %15s\n", "concurrency", "integrate (ms)",
              "speedup", "peak in-flight");
  double base_ms = 0.0;
  for (int c : {1, 2, 4, 8}) {
    World w = MakeWorld(50);
    NetworkParams params = w.network->params();
    params.max_concurrency = c;
    w.network->set_params(params);
    MediatorOptions opts;
    opts.batch_requests = false;
    opts.use_cache = false;
    opts.max_concurrency = c;
    int64_t t0 = w.clock->NowMicros();
    DT_CHECK(w.mediator->IntegrateAll(opts).ok());
    double ms = (w.clock->NowMicros() - t0) / 1000.0;
    if (c == 1) base_ms = ms;
    std::printf("%12d %18.1f %9.1fx %15d\n", c, ms, base_ms / ms,
                w.mediator->async_stats().peak_in_flight);
  }

  std::printf(
      "\n-- drill-down with overlapped prefetch (100 ms RTT, 4 channels) --\n");
  std::printf("%18s %14s %12s\n", "prefetch mode", "session(ms)", "requests");
  for (bool async_pf : {false, true}) {
    World w = MakeWorld(100);
    NetworkParams params = w.network->params();
    params.max_concurrency = 4;
    w.network->set_params(params);
    double ms;
    uint64_t req;
    DrillDownSession(w, true, true, async_pf, &ms, &req);
    std::printf("%18s %14.1f %12llu\n", async_pf ? "overlapped" : "blocking",
                ms, (unsigned long long)req);
  }

  std::printf("\nshape check: caching flattens repeat cost; prefetching\n"
              "collapses clade drill-downs to ~1 batched request per clade;\n"
              "retries absorb link failures at timeout-proportional cost;\n"
              "overlapping the fetch window hides per-record round trips.\n");
  drugtree::bench::DumpMetrics(metrics_flag);
  return 0;
}
