// Shared helpers for the experiment benchmarks (E1-E9). Each bench binary
// regenerates one table/figure of the reconstructed evaluation; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for results.

#ifndef DRUGTREE_BENCH_BENCH_UTIL_H_
#define DRUGTREE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/overlay.h"
#include "obs/metrics.h"
#include "phylo/tree.h"
#include "phylo/tree_index.h"
#include "query/catalog.h"
#include "query/planner.h"
#include "storage/table.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace drugtree {
namespace bench {

/// Grows a random binary tree with `num_leaves` leaves (named L0..Ln-1).
/// Cheap (no sequence evolution), used where only tree *query* behaviour
/// matters, not reconstruction.
inline phylo::Tree MakeRandomTree(int num_leaves, uint64_t seed) {
  util::Rng rng(seed);
  phylo::Tree tree;
  phylo::NodeId root = *tree.AddRoot();
  std::vector<phylo::NodeId> leaves = {root};
  while (static_cast<int>(leaves.size()) < num_leaves) {
    size_t pick = rng.Uniform(leaves.size());
    phylo::NodeId node = leaves[pick];
    leaves.erase(leaves.begin() + static_cast<long>(pick));
    leaves.push_back(*tree.AddChild(node, "", rng.NextDouble()));
    leaves.push_back(*tree.AddChild(node, "", rng.NextDouble()));
  }
  int counter = 0;
  for (size_t i = 0; i < tree.NumNodes(); ++i) {
    auto id = static_cast<phylo::NodeId>(i);
    if (tree.node(id).IsLeaf()) {
      tree.mutable_node(id).name = "L" + std::to_string(counter++);
    }
  }
  return tree;
}

/// Builds a `tree_nodes` table (with B+-tree on pre, hash on node_id) for a
/// tree, mirroring core::Overlay's relation.
inline std::unique_ptr<storage::Table> BuildTreeNodesTable(
    const phylo::Tree& tree, const phylo::TreeIndex& index) {
  using storage::Value;
  auto table = std::make_unique<storage::Table>("tree_nodes",
                                                core::TreeNodeTableSchema());
  for (size_t i = 0; i < tree.NumNodes(); ++i) {
    auto id = static_cast<phylo::NodeId>(i);
    const phylo::Node& n = tree.node(id);
    storage::Row row = {
        Value::Int64(id),
        n.IsRoot() ? Value::Null() : Value::Int64(n.parent),
        Value::String(n.name),
        Value::Int64(index.Pre(id)),
        Value::Int64(index.Post(id)),
        Value::Int64(index.Depth(id)),
        Value::Double(n.branch_length),
        Value::Bool(n.IsLeaf()),
        Value::Int64(index.SubtreeLeafCount(id)),
    };
    DT_CHECK(table->Insert(std::move(row)).ok());
  }
  DT_CHECK(table->CreateIndex("pre", storage::IndexKind::kBTree).ok());
  DT_CHECK(table->CreateIndex("node_id", storage::IndexKind::kHash).ok());
  DT_CHECK(table->Analyze().ok());
  return table;
}

/// Canonical "p50=..ms p95=..ms p99=..ms" rendering of a latency histogram.
/// Benches report through this (or obs::HistogramMetric::ValueAtPercentile
/// for registry metrics) instead of re-deriving percentiles by hand.
inline std::string PercentileSummary(const util::Histogram& h) {
  return util::StringPrintf("p50=%.2fms p95=%.2fms p99=%.2fms", h.Median(),
                            h.Percentile(95), h.Percentile(99));
}

/// Prints the experiment banner all bench binaries lead with.
inline void Banner(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

/// `--metrics-json[=path]` support for bench binaries.
struct MetricsDumpOptions {
  bool enabled = false;
  std::string path;  // empty = stdout
};

/// Strips `--metrics-json` / `--metrics-json=path` out of argv. Call before
/// benchmark::Initialize (google-benchmark rejects flags it does not know).
inline MetricsDumpOptions ParseMetricsFlag(int* argc, char** argv) {
  MetricsDumpOptions options;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0) {
      options.enabled = true;
    } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
      options.enabled = true;
      options.path = argv[i] + 15;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
  return options;
}

/// Dumps the process metric registry as JSON to the flag's destination.
/// No-op when the flag was absent.
inline void DumpMetrics(const MetricsDumpOptions& options) {
  if (!options.enabled) return;
  std::string json = obs::MetricRegistry::Default()->Snapshot().ToJson();
  if (options.path.empty()) {
    std::printf("%s\n", json.c_str());
    return;
  }
  std::FILE* f = std::fopen(options.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for metrics dump\n",
                 options.path.c_str());
    return;
  }
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
}

}  // namespace bench
}  // namespace drugtree

#endif  // DRUGTREE_BENCH_BENCH_UTIL_H_
