// E1 (Fig 1): subtree-query latency vs tree size — the poster's reported
// "lags concerning querying the tree" and their removal.
//
// Series: naive per-row SUBTREE evaluation (full scan) vs the interval
// rewrite + B+-tree range scan. Focus clades are mid-size (~10% of leaves).

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"

namespace {

using namespace drugtree;
using bench::BuildTreeNodesTable;
using bench::MakeRandomTree;

struct Fixture {
  phylo::Tree tree;
  std::unique_ptr<phylo::TreeIndex> index;
  std::unique_ptr<storage::Table> table;
  query::Catalog catalog;
  std::unique_ptr<query::Planner> planner;
  std::vector<phylo::NodeId> focus_nodes;
};

Fixture* MakeFixture(int leaves) {
  auto* f = new Fixture();
  f->tree = MakeRandomTree(leaves, 7);
  f->index = std::make_unique<phylo::TreeIndex>(
      std::move(*phylo::TreeIndex::Build(f->tree)));
  f->table = BuildTreeNodesTable(f->tree, *f->index);
  DT_CHECK(f->catalog.Register(f->table.get()).ok());
  f->catalog.SetTree(&f->tree, f->index.get());
  DT_CHECK(f->catalog.BindTree("tree_nodes", {"node_id", "pre", "post"}).ok());
  f->planner = std::make_unique<query::Planner>(&f->catalog);
  // Focus nodes: internal nodes with ~5-15% of the leaves.
  int lo = std::max(2, leaves / 20), hi = std::max(3, leaves / 7);
  f->tree.PreOrder([&](phylo::NodeId id) {
    int n = f->index->SubtreeLeafCount(id);
    if (!f->tree.node(id).IsLeaf() && n >= lo && n <= hi) {
      f->focus_nodes.push_back(id);
    }
  });
  DT_CHECK(!f->focus_nodes.empty());
  return f;
}

// One fixture per size, built lazily and leaked (benchmark process lifetime).
Fixture* GetFixture(int leaves) {
  static std::map<int, Fixture*> fixtures;
  auto it = fixtures.find(leaves);
  if (it == fixtures.end()) {
    it = fixtures.emplace(leaves, MakeFixture(leaves)).first;
  }
  return it->second;
}

void RunSubtreeQueries(benchmark::State& state,
                       const query::PlannerOptions& options) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  size_t cursor = 0;
  int64_t rows = 0;
  for (auto _ : state) {
    phylo::NodeId node = f->focus_nodes[cursor++ % f->focus_nodes.size()];
    std::string sql =
        "SELECT t.node_id FROM tree_nodes t WHERE SUBTREE(t.node_id, " +
        std::to_string(node) + ")";
    auto outcome = f->planner->Run(sql, options);
    DT_CHECK(outcome.ok()) << outcome.status();
    rows += static_cast<int64_t>(outcome->result.rows.size());
    benchmark::DoNotOptimize(outcome->result);
  }
  state.counters["result_rows"] =
      benchmark::Counter(static_cast<double>(rows) /
                         static_cast<double>(state.iterations()));
  state.counters["tree_nodes"] =
      benchmark::Counter(static_cast<double>(f->tree.NumNodes()));
}

void BM_SubtreeQuery_Naive(benchmark::State& state) {
  RunSubtreeQueries(state, query::PlannerOptions::Naive());
}

void BM_SubtreeQuery_Optimized(benchmark::State& state) {
  RunSubtreeQueries(state, query::PlannerOptions::Optimized());
}

// Ancestor queries: the second tree-access pattern the poster's UI needs
// (breadcrumbs / path-to-root).
void RunAncestorQueries(benchmark::State& state,
                        const query::PlannerOptions& options) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  auto leaves = f->tree.Leaves();
  size_t cursor = 0;
  for (auto _ : state) {
    phylo::NodeId leaf = leaves[cursor++ % leaves.size()];
    std::string sql =
        "SELECT t.node_id FROM tree_nodes t WHERE ANCESTOR_OF(t.node_id, " +
        std::to_string(leaf) + ")";
    auto outcome = f->planner->Run(sql, options);
    DT_CHECK(outcome.ok()) << outcome.status();
    benchmark::DoNotOptimize(outcome->result);
  }
}

// Execution batch-size sweep on the naive (full-scan) subtree filter: the
// same plan at batch sizes 1 (row engine), 4, 64, and 1024, isolating the
// vectorized pipeline's contribution from the plan-level optimizations.
void BM_SubtreeQuery_BatchSize(benchmark::State& state) {
  query::PlannerOptions o = query::PlannerOptions::Naive();
  o.batch_size = static_cast<size_t>(state.range(1));
  RunSubtreeQueries(state, o);
}

void BM_AncestorQuery_Naive(benchmark::State& state) {
  RunAncestorQueries(state, query::PlannerOptions::Naive());
}

void BM_AncestorQuery_Optimized(benchmark::State& state) {
  RunAncestorQueries(state, query::PlannerOptions::Optimized());
}

}  // namespace

BENCHMARK(BM_SubtreeQuery_Naive)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_SubtreeQuery_Optimized)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_SubtreeQuery_BatchSize)
    ->Args({4096, 1})
    ->Args({4096, 4})
    ->Args({4096, 64})
    ->Args({4096, 1024});
BENCHMARK(BM_AncestorQuery_Naive)->Arg(256)->Arg(4096);
BENCHMARK(BM_AncestorQuery_Optimized)->Arg(256)->Arg(4096);

int main(int argc, char** argv) {
  drugtree::bench::Banner(
      "E1 (Fig 1)", "subtree/ancestor query latency vs tree size:\n"
      "naive per-row tree walk vs interval rewrite + B+-tree range scan");
  auto metrics_flag = drugtree::bench::ParseMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  drugtree::bench::DumpMetrics(metrics_flag);
  return 0;
}
