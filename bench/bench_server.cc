// E10: multi-session serving under load — admission control, weighted-fair
// scheduling, and deadline-driven cancellation. A closed-loop client fleet
// (Phone3G / TabletWifi interactive overlay queries, DesktopLan analytic
// scans) sweeps offered load from unloaded to ~8x slot saturation. The
// serving claim: interactive p99 stays bounded (load shedding + deadline
// cancellation trade completed work for latency) instead of collapsing with
// the queue, and analytic work keeps making progress at every load point.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/drugtree.h"
#include "obs/alerts.h"
#include "obs/metrics.h"
#include "obs/resource_tracker.h"
#include "obs/slo_tracker.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/trace_store.h"
#include "server/server.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

using namespace drugtree;

std::unique_ptr<core::DrugTree> MakeInstance(util::SimulatedClock* clock) {
  core::BuildOptions options;
  options.seed = 13;
  options.num_families = 6;
  options.taxa_per_family = 24;  // 144 leaves -> ~286 nodes
  options.num_ligands = 300;
  auto built = core::DrugTree::Build(options, clock);
  DT_CHECK(built.ok()) << built.status();
  return std::move(*built);
}

constexpr const char* kAnalyticSql =
    "SELECT p.family, COUNT(*), AVG(a.affinity_nm) "
    "FROM proteins p, activities a WHERE p.accession = a.accession "
    "GROUP BY p.family";

struct ClientResult {
  util::Histogram latency_ms;  // completed requests only
  int64_t completed = 0;
  int64_t shed = 0;
  int64_t cancelled = 0;
  int64_t failed = 0;
};

// One closed-loop client: issues the next request only after the previous
// one finishes, for `duration_micros` of wall time.
ClientResult RunClient(core::DrugTree* dt, server::DrugTreeServer* server,
                       uint64_t session_id, bool analytic,
                       int64_t deadline_budget_micros,
                       int64_t duration_micros) {
  ClientResult out;
  util::Rng rng(session_id * 7919 + 17);
  size_t num_nodes = dt->tree().NumNodes();
  util::Clock* wall = util::RealClock::Instance();
  int64_t end_at = wall->NowMicros() + duration_micros;
  while (wall->NowMicros() < end_at) {
    server::QueryRequest request;
    request.session_id = session_id;
    if (analytic) {
      request.sql = kAnalyticSql;
      request.query_class = server::QueryClass::kAnalytic;
    } else {
      request.sql = dt->OverlayQuerySql(
          static_cast<phylo::NodeId>(rng.Uniform(num_nodes)));
      request.query_class = server::QueryClass::kInteractive;
      request.deadline_micros = wall->NowMicros() + deadline_budget_micros;
    }
    int64_t start = wall->NowMicros();
    auto result = server->Submit(std::move(request));
    int64_t micros = wall->NowMicros() - start;
    if (result.ok()) {
      ++out.completed;
      out.latency_ms.Add(static_cast<double>(micros) / 1000.0);
    } else if (result.status().IsResourceExhausted()) {
      ++out.shed;
      // Honour the busy signal: back off instead of hammering admission.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    } else if (result.status().IsCancelled()) {
      ++out.cancelled;
    } else {
      ++out.failed;
    }
  }
  return out;
}

// E11: the slow-query forensics pipeline, end to end, on a virtual clock so
// every number is exact and repeatable. Stage 1 builds a deterministic
// dispatch backlog (paused server + clock advance), which pushes a batch of
// requests over the slow-query threshold — the store logs them with their
// full phase timeline and EXPLAIN ANALYZE. Stage 2 replays a served mobile
// session over a 3G link with the server's TraceStore as its sink, so
// fetch-blocked time shows up in the "mobile" class. The run then emits the
// slow-query log, a Chrome trace JSON, and the per-class tail attribution
// (shares must sum to ~100%).
int RunForensics(const std::string& trace_json_path) {
  bench::Banner("E11",
                "slow-query forensics: phase timelines, slow-query log,\n"
                "Chrome trace export, per-class tail attribution");
  util::SimulatedClock clock;
  auto dt = MakeInstance(&clock);
  obs::Tracer::Default()->set_clock(&clock);
  std::printf("tree: %zu nodes, %zu leaves (virtual clock)\n",
              dt->tree().NumNodes(), dt->tree().NumLeaves());

  server::ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.scheduler.total_slots = 2;
  sopts.scheduler.interactive_slots = 2;
  sopts.scheduler.analytic_slots = 1;
  sopts.admission.interactive_queue_capacity = 32;
  sopts.admission.analytic_queue_capacity = 8;
  sopts.slow_query_micros = 50'000;  // arm the slow-query log at 50ms
  auto server = dt->MakeServer(sopts);
  obs::TraceStore* store = server->trace_store();
  std::printf("slow-query threshold: %.1fms\n",
              static_cast<double>(store->slow_threshold_micros()) / 1000.0);

  // Stage 1a: unloaded requests — dispatch immediately, total ~0 virtual
  // time, nowhere near the threshold.
  util::Rng rng(23);
  size_t num_nodes = dt->tree().NumNodes();
  for (int i = 0; i < 8; ++i) {
    server::QueryRequest request;
    request.session_id = static_cast<uint64_t>(100 + i);
    request.sql = dt->OverlayQuerySql(
        static_cast<phylo::NodeId>(rng.Uniform(num_nodes)));
    request.query_class = server::QueryClass::kInteractive;
    auto r = server->Submit(std::move(request));
    DT_CHECK(r.ok()) << r.status();
  }

  // Stage 1b: a deterministic backlog. Pause dispatch, queue a burst, age
  // it 120ms of virtual time, resume: every queued request crosses the
  // threshold with queue_wait as the dominant phase.
  server->Pause();
  std::vector<server::ResponseHandle> backlog;
  for (int i = 0; i < 6; ++i) {
    server::QueryRequest request;
    request.session_id = static_cast<uint64_t>(200 + i);
    request.sql = dt->OverlayQuerySql(
        static_cast<phylo::NodeId>(rng.Uniform(num_nodes)));
    request.query_class = server::QueryClass::kInteractive;
    backlog.push_back(server->SubmitAsync(std::move(request)));
  }
  for (int i = 0; i < 2; ++i) {
    server::QueryRequest request;
    request.session_id = static_cast<uint64_t>(300 + i);
    request.sql = kAnalyticSql;
    request.query_class = server::QueryClass::kAnalytic;
    backlog.push_back(server->SubmitAsync(std::move(request)));
  }
  clock.AdvanceMicros(120'000);
  server->Resume();
  for (auto& handle : backlog) {
    auto r = handle.Wait();
    DT_CHECK(r.ok()) << r.status();
  }
  server->Drain();

  // Stage 2: a served mobile session on 3G, traced into the same store —
  // device-link transfers become fetch_blocked time in the "mobile" class.
  mobile::SessionOptions msopts;
  msopts.trace_sink = store;
  msopts.charge_real_compute = false;  // virtual-time only: bit-deterministic
  auto session = dt->MakeSession(mobile::DeviceProfile::Phone3G(), msopts,
                                 query::PlannerOptions::Optimized(),
                                 server.get(), /*session_id=*/7,
                                 /*overlay_deadline_micros=*/500'000);
  mobile::TraceParams tp;
  tp.num_actions = 20;
  auto trace = dt->MakeTrace(tp, 9);
  auto report = session.Run(trace);
  DT_CHECK(report.ok()) << report.status();
  std::printf("\n-- served mobile session (3G, traced) --\n%s",
              report->ToString().c_str());

  // Forensics output 1: the slow-query log.
  std::vector<obs::TraceRecord> slow = store->SlowQueries();
  DT_CHECK(!slow.empty()) << "backlog produced no slow queries";
  std::printf("\n-- slow-query log (%zu offenders, threshold %.0fms) --\n",
              slow.size(),
              static_cast<double>(store->slow_threshold_micros()) / 1000.0);
  std::printf("%s", slow.front().TimelineString().c_str());
  DT_CHECK(!slow.front().analyzed_plan.empty())
      << "slow offender lost its EXPLAIN ANALYZE";
  std::printf("offender plan:\n%s", slow.front().analyzed_plan.c_str());

  // Forensics output 2: Chrome trace export.
  std::string json = obs::ExportChromeTrace(store->Snapshot());
  DT_CHECK(json.rfind("{\"traceEvents\":", 0) == 0);
  std::FILE* f = std::fopen(trace_json_path.c_str(), "w");
  DT_CHECK(f != nullptr) << "cannot open " << trace_json_path;
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
  // (Byte size is not printed: which slot lane served a request is
  // scheduling-dependent, so the JSON differs by a tid digit across runs
  // even though every timestamp and duration is exact.)
  std::printf("\nChrome trace (%zu records) -> %s\n", store->Snapshot().size(),
              trace_json_path.c_str());

  // Forensics output 3: per-class tail attribution. Shares must account
  // for ~100% of tail latency.
  std::printf("\n-- per-class tail attribution --\n%s",
              server->TailAttributionReport().c_str());
  auto attrs = obs::ComputeTailAttribution(store->Snapshot());
  DT_CHECK(!attrs.empty());
  for (const auto& a : attrs) {
    double sum = a.other_share;
    for (double s : a.share) sum += s;
    DT_CHECK(std::fabs(sum - 1.0) < 0.01)
        << a.query_class << " attribution sums to " << sum;
  }
  std::printf("\nshape check: every class's phase shares sum to ~100%%; the\n"
              "backlogged interactive tail is dominated by queue_wait and\n"
              "the mobile tail by fetch_blocked (3G link).\n");
  return 0;
}

// `--statusz`: runs a small deterministic workload on a virtual clock and
// prints only the server's Statusz() JSON — the machine-readable
// introspection snapshot scripts/statusz_check.sh validates.
int RunStatusz() {
  util::SimulatedClock clock;
  auto dt = MakeInstance(&clock);
  server::ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.scheduler.total_slots = 2;
  auto server = dt->MakeServer(sopts);

  util::Rng rng(11);
  size_t num_nodes = dt->tree().NumNodes();
  for (int i = 0; i < 6; ++i) {
    server::QueryRequest request;
    request.session_id = static_cast<uint64_t>(1 + i % 3);
    request.sql = dt->OverlayQuerySql(
        static_cast<phylo::NodeId>(rng.Uniform(num_nodes)));
    request.query_class = server::QueryClass::kInteractive;
    auto r = server->Submit(std::move(request));
    DT_CHECK(r.ok()) << r.status();
  }
  {
    server::QueryRequest request;
    request.session_id = 9;
    request.sql = kAnalyticSql;
    request.query_class = server::QueryClass::kAnalytic;
    auto r = server->Submit(std::move(request));
    DT_CHECK(r.ok()) << r.status();
  }
  server->Drain();
  std::printf("%s\n", server->Statusz().c_str());
  return 0;
}

// E12: memory-pressure saturation sweep on a virtual clock. Resident
// pressure is staged directly against the server's root tracker (an
// unconditional ScopedMemoryCharge, so the sweep point is exact and does
// not depend on execution order), then a fixed interactive + analytic
// workload runs at each point. The resource-accounting claim: above the
// high watermark analytic work is shed at admission while interactive work
// keeps completing inside its SLO, and per-query budgets turn would-be
// OOMs into clean kResourceExhausted aborts.
int RunMemSweep() {
  bench::Banner("E12",
                "memory-pressure saturation sweep: analytic shedding,\n"
                "interactive floor, per-query budget aborts (virtual clock)");
  util::SimulatedClock clock;
  auto dt = MakeInstance(&clock);
  std::printf("tree: %zu nodes, %zu leaves (virtual clock)\n\n",
              dt->tree().NumNodes(), dt->tree().NumLeaves());

  constexpr int kInteractive = 12;
  constexpr int kAnalytic = 4;
  std::printf("%-10s %9s %9s %9s %9s %11s %11s %12s\n", "pressure",
              "int-done", "int-comp", "int-burn", "ana-done", "ana-shed",
              "ana-memshed", "peak-mb");
  for (double fraction : {0.0, 0.50, 0.85, 0.95}) {
    server::ServerOptions sopts;
    sopts.worker_threads = 2;
    sopts.scheduler.total_slots = 2;
    auto server = dt->MakeServer(sopts);
    obs::MemoryTracker* root = server->memory_tracker();
    int64_t staged = static_cast<int64_t>(
        fraction * static_cast<double>(sopts.server_memory_bytes));
    obs::ScopedMemoryCharge pressure(root, staged);

    server->Pause();
    std::vector<server::ResponseHandle> handles;
    util::Rng rng(41);
    size_t num_nodes = dt->tree().NumNodes();
    for (int i = 0; i < kInteractive; ++i) {
      server::QueryRequest request;
      request.session_id = static_cast<uint64_t>(1 + i % 4);
      request.sql = dt->OverlayQuerySql(
          static_cast<phylo::NodeId>(rng.Uniform(num_nodes)));
      request.query_class = server::QueryClass::kInteractive;
      handles.push_back(server->SubmitAsync(std::move(request)));
    }
    for (int i = 0; i < kAnalytic; ++i) {
      server::QueryRequest request;
      request.session_id = static_cast<uint64_t>(20 + i);
      request.sql = kAnalyticSql;
      request.query_class = server::QueryClass::kAnalytic;
      handles.push_back(server->SubmitAsync(std::move(request)));
    }
    clock.AdvanceMicros(10'000);
    server->Resume();
    for (auto& h : handles) h.Wait();  // sheds resolve to statuses
    server->Drain();

    auto ci = server->counters(server::QueryClass::kInteractive);
    auto ca = server->counters(server::QueryClass::kAnalytic);
    auto si = server->slo_tracker(server::QueryClass::kInteractive)
                  ->GetSnapshot();
    bool over = fraction >= sopts.memory_high_watermark;
    // Shape gates: the interactive floor holds at every pressure point;
    // analytic admission flips exactly at the watermark.
    DT_CHECK(ci.completed == kInteractive) << "interactive floor broken";
    DT_CHECK(ci.memory_shed == 0);
    DT_CHECK(ca.memory_shed == (over ? kAnalytic : 0))
        << "at pressure " << fraction;
    DT_CHECK(ca.completed == (over ? 0 : kAnalytic));
    std::printf("%8.0f%% %9lld %9.4f %9.3f %9lld %11lld %11lld %10.2f\n",
                fraction * 100.0, (long long)ci.completed, si.compliance,
                si.burn_rate, (long long)ca.completed, (long long)ca.shed,
                (long long)ca.memory_shed,
                static_cast<double>(root->peak()) / (1024.0 * 1024.0));
  }

  // Per-query budget point: a 4 KiB budget turns the full-table sort into
  // a clean caller-visible abort, and the server keeps serving.
  {
    server::ServerOptions sopts;
    sopts.worker_threads = 2;
    sopts.scheduler.total_slots = 2;
    sopts.query_memory_bytes = 4 * 1024;
    auto server = dt->MakeServer(sopts);
    server::QueryRequest request;
    request.session_id = 1;
    request.sql = "SELECT * FROM activities ORDER BY affinity_nm";
    request.query_class = server::QueryClass::kAnalytic;
    auto r = server->Submit(std::move(request));
    DT_CHECK(!r.ok() && r.status().IsResourceExhausted()) << r.status();
    auto ca = server->counters(server::QueryClass::kAnalytic);
    DT_CHECK(ca.memory_aborted == 1);
    std::printf("\nper-query budget: 4KiB sort abort -> %s\n",
                r.status().ToString().c_str());
  }

  // Encoded-segment shed point: the server charges resident table bytes at
  // construction (compressed bytes when encoded), so compressing the
  // catalog moves the 80% watermark shed point by exactly the saved bytes.
  // Staging pressure midway between the two footprints' headrooms makes
  // the plain server shed analytic work while the encoded server admits.
  {
    DT_CHECK(dt->BuildEncodedSegments().ok());
    auto encoded_server = dt->MakeServer();
    int64_t b_enc = encoded_server->resident_table_bytes();
    dt->DropEncodedSegments();
    auto plain_server = dt->MakeServer();
    int64_t b_plain = plain_server->resident_table_bytes();
    DT_CHECK(dt->BuildEncodedSegments().ok());
    DT_CHECK(b_enc > 0 && b_enc < b_plain)
        << "encoded " << b_enc << " plain " << b_plain;

    int64_t soft = plain_server->memory_tracker()->soft_limit_bytes();
    int64_t staged = soft - (b_plain + b_enc) / 2;
    obs::ScopedMemoryCharge p1(plain_server->memory_tracker(), staged);
    obs::ScopedMemoryCharge p2(encoded_server->memory_tracker(), staged);

    auto make_analytic = [] {
      server::QueryRequest request;
      request.session_id = 1;
      request.sql = kAnalyticSql;
      request.query_class = server::QueryClass::kAnalytic;
      return request;
    };
    auto shed = plain_server->Submit(make_analytic());
    auto admitted = encoded_server->Submit(make_analytic());
    DT_CHECK(!shed.ok() && shed.status().IsResourceExhausted())
        << shed.status();
    DT_CHECK(admitted.ok()) << admitted.status();
    plain_server->Drain();
    encoded_server->Drain();
    std::printf(
        "\nencoded shed point: resident tables %.1f KB plain -> %.1f KB\n"
        "encoded (%.2fx); at %.1f KB staged pressure the plain server sheds\n"
        "analytic work, the encoded server admits it.\n",
        static_cast<double>(b_plain) / 1024.0,
        static_cast<double>(b_enc) / 1024.0,
        static_cast<double>(b_plain) / static_cast<double>(b_enc),
        static_cast<double>(staged) / 1024.0);
  }

  std::printf("\nshape check: interactive completes everything at every\n"
              "pressure point; analytic admission flips off exactly at the\n"
              "%d%% watermark; budget breaches abort, never OOM; the shed\n"
              "point moves with the catalog's compression ratio.\n",
              80);
  return 0;
}

// E16: continuous telemetry on a virtual clock. A single-slot server runs a
// serialized closed-loop workload in three phases — healthy, browned-out
// (the fault knob adds 20ms of virtual execution delay, 4x the 5ms
// interactive SLO), recovery — while the sampler records the metric
// timeline and the alert engine watches the SLO burn rate. The telemetry
// claim: the multi-window burn-rate alert fires during the brown-out (and
// only then), health goes critical, the alert resolves once the faulted
// requests roll out of the SLO window, and the whole timeline + alert
// history is *bit-identical* across runs — which is what perf_gate.sh
// stands on.
struct TelemetryRunResult {
  std::string timeline_json;
  std::string alerts_json;
  int64_t timeline_points = 0;
  size_t num_series = 0;
  int64_t burn_fired = 0;
  int64_t burn_resolved = 0;
};

TelemetryRunResult RunTelemetryScenarioOnce() {
  // Registry metrics are process-global and cumulative; reset so the second
  // run starts from the same state as the first.
  obs::MetricRegistry::Default()->ResetAll();
  util::SimulatedClock clock;
  auto dt = MakeInstance(&clock);

  server::ServerOptions sopts;
  sopts.worker_threads = 1;
  sopts.scheduler.total_slots = 1;
  sopts.scheduler.interactive_slots = 1;
  sopts.scheduler.analytic_slots = 1;
  sopts.interactive_slo_micros = 5'000;    // fault delay (20ms) is 4x this
  sopts.slo_window_micros = 2'000'000;     // 2s rolling SLO window
  sopts.telemetry.sample_interval_micros = 100'000;
  auto server = dt->MakeServer(sopts);
  DT_CHECK(server->timeline() != nullptr)
      << "telemetry disabled (DRUGTREE_TELEMETRY=0?) -- E16 needs it on";

  util::Rng rng(31);
  size_t num_nodes = dt->tree().NumNodes();
  auto pump = [&](int n) {
    for (int i = 0; i < n; ++i) {
      server::QueryRequest request;
      request.session_id = 1;
      request.sql = dt->OverlayQuerySql(
          static_cast<phylo::NodeId>(rng.Uniform(num_nodes)));
      request.query_class = server::QueryClass::kInteractive;
      auto r = server->Submit(std::move(request));
      DT_CHECK(r.ok()) << r.status();
      clock.AdvanceMicros(50'000);  // 20 requests/s of virtual time
    }
  };

  pump(20);  // phase 1: healthy (zero virtual latency, SLO met)
  DT_CHECK(server->health() == obs::HealthState::kHealthy)
      << "healthy phase ended " << obs::HealthStateName(server->health());

  server->set_fault_execution_delay_micros(20'000);
  pump(20);  // phase 2: brown-out (every request misses the 5ms SLO)
  DT_CHECK(server->health() == obs::HealthState::kCritical)
      << "brown-out did not go critical: "
      << obs::HealthStateName(server->health());

  server->set_fault_execution_delay_micros(0);
  // Phase 3: recovery. 3s of virtual time -- the SLO window is 2s and the
  // last faulted request landed ~2.4s in (the fault itself advances the
  // clock), so the misses roll out with a full second of clean samples to
  // spare for the alert's own short window to drop below threshold.
  pump(60);
  server->Drain();
  DT_CHECK(server->health() == obs::HealthState::kHealthy)
      << "recovery ended " << obs::HealthStateName(server->health());

  TelemetryRunResult out;
  out.timeline_json = server->timeline()->ToJson();
  out.alerts_json = server->alert_engine()->ToJson();
  out.timeline_points = server->timeline()->total_points();
  out.num_series = server->timeline()->num_series();
  for (const obs::AlertStatus& s : server->alert_engine()->Statuses()) {
    if (s.rule.name != "interactive_burn") continue;
    out.burn_fired = s.fired;
    out.burn_resolved = s.resolved;
    DT_CHECK(s.state == obs::AlertState::kInactive)
        << "interactive_burn still " << obs::AlertStateName(s.state);
  }
  DT_CHECK(out.burn_fired == 1 && out.burn_resolved == 1)
      << "interactive_burn fired " << out.burn_fired << " resolved "
      << out.burn_resolved;
  return out;
}

int RunTelemetry(const std::string& timeline_json_path) {
  bench::Banner("E16",
                "continuous telemetry: deterministic metric timeline,\n"
                "burn-rate alert firing/resolution, health transitions");
  TelemetryRunResult a = RunTelemetryScenarioOnce();
  TelemetryRunResult b = RunTelemetryScenarioOnce();
  DT_CHECK(a.timeline_json == b.timeline_json)
      << "timeline JSON differs across identical runs";
  DT_CHECK(a.alerts_json == b.alerts_json)
      << "alert JSON differs across identical runs";
  std::printf("timeline: %zu series, %lld points (ring-bounded)\n",
              a.num_series, (long long)a.timeline_points);
  std::printf("interactive_burn: fired %lld, resolved %lld\n",
              (long long)a.burn_fired, (long long)a.burn_resolved);
  std::printf("bit-determinism: run1 == run2 (%zu timeline bytes, "
              "%zu alert bytes)\n",
              a.timeline_json.size(), a.alerts_json.size());

  std::string artifact = "{\"timeline\":" + a.timeline_json +
                         ",\"alerts\":" + a.alerts_json + "}";
  std::FILE* f = std::fopen(timeline_json_path.c_str(), "w");
  DT_CHECK(f != nullptr) << "cannot open " << timeline_json_path;
  std::fprintf(f, "%s\n", artifact.c_str());
  std::fclose(f);
  std::printf("timeline artifact -> %s (%zu bytes)\n",
              timeline_json_path.c_str(), artifact.size());

  std::printf("\nshape check: the burn-rate alert fires exactly once (during\n"
              "the injected brown-out), resolves after the SLO window rolls\n"
              "clear, health walks healthy -> critical -> healthy, and both\n"
              "runs produce byte-identical telemetry.\n");
  return 0;
}

// `--abprobe`: a fixed-count serialized real-clock workload whose total
// wall time is the only output. scripts/obs_noop_ab.sh runs it with
// DRUGTREE_TELEMETRY=0 vs =1 (interleaved, best-of-N) to bound telemetry
// overhead. The 10ms sample interval makes sampling *actually happen* many
// times within the run, unlike the 250ms default.
int RunAbProbe() {
  util::SimulatedClock build_clock;
  auto dt = MakeInstance(&build_clock);
  server::ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.scheduler.total_slots = 2;
  sopts.telemetry.sample_interval_micros = 10'000;
  auto server = dt->MakeServer(sopts, util::RealClock::Instance());

  util::Rng rng(3);
  size_t num_nodes = dt->tree().NumNodes();
  util::Clock* wall = util::RealClock::Instance();
  auto submit_one = [&] {
    server::QueryRequest request;
    request.session_id = 1;
    request.sql = dt->OverlayQuerySql(
        static_cast<phylo::NodeId>(rng.Uniform(num_nodes)));
    request.query_class = server::QueryClass::kInteractive;
    auto r = server->Submit(std::move(request));
    DT_CHECK(r.ok()) << r.status();
  };
  for (int i = 0; i < 50; ++i) submit_one();  // warm caches + pool
  int64_t start = wall->NowMicros();
  for (int i = 0; i < 400; ++i) submit_one();
  int64_t micros = wall->NowMicros() - start;
  server->Drain();
  std::printf("abprobe_micros: %lld\n", (long long)micros);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto metrics_flag = drugtree::bench::ParseMetricsFlag(&argc, argv);
  // `--forensics [--trace-json=path]` runs the deterministic E11 forensics
  // pipeline instead of the E10 load sweep.
  bool forensics = false;
  bool statusz = false;
  bool memsweep = false;
  bool telemetry = false;
  bool abprobe = false;
  std::string trace_json_path = "bench_forensics_trace.json";
  std::string timeline_json_path = "bench_server_timeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--forensics") == 0) forensics = true;
    if (std::strcmp(argv[i], "--statusz") == 0) statusz = true;
    if (std::strcmp(argv[i], "--memsweep") == 0) memsweep = true;
    if (std::strcmp(argv[i], "--telemetry") == 0) telemetry = true;
    if (std::strcmp(argv[i], "--abprobe") == 0) abprobe = true;
    if (std::strncmp(argv[i], "--trace-json=", 13) == 0) {
      trace_json_path = argv[i] + 13;
    }
    if (std::strncmp(argv[i], "--timeline-json=", 16) == 0) {
      timeline_json_path = argv[i] + 16;
    }
  }
  // `--statusz` keeps stdout machine-readable: the JSON snapshot only.
  if (statusz) return RunStatusz();
  // `--abprobe` keeps stdout machine-readable: the wall-time line only.
  if (abprobe) return RunAbProbe();
  if (telemetry) {
    int rc = RunTelemetry(timeline_json_path);
    drugtree::bench::DumpMetrics(metrics_flag);
    return rc;
  }
  if (memsweep) {
    int rc = RunMemSweep();
    drugtree::bench::DumpMetrics(metrics_flag);
    return rc;
  }
  if (forensics) {
    int rc = RunForensics(trace_json_path);
    drugtree::bench::DumpMetrics(metrics_flag);
    return rc;
  }
  bench::Banner("E10",
                "multi-session serving under offered-load sweep:\n"
                "admission shedding, fair scheduling, deadline cancellation");
  util::SimulatedClock build_clock;
  auto dt = MakeInstance(&build_clock);
  std::printf("tree: %zu nodes, %zu leaves\n", dt->tree().NumNodes(),
              dt->tree().NumLeaves());

  server::ServerOptions sopts;
  sopts.worker_threads = 4;
  sopts.scheduler.total_slots = 4;
  sopts.scheduler.interactive_slots = 3;
  sopts.scheduler.analytic_slots = 2;
  sopts.admission.interactive_queue_capacity = 8;
  sopts.admission.analytic_queue_capacity = 4;
  auto server = dt->MakeServer(sopts, util::RealClock::Instance());

  // Sanity: the served path returns exactly what the direct planner does.
  {
    auto direct = dt->Query(kAnalyticSql);
    DT_CHECK(direct.ok()) << direct.status();
    server::QueryRequest request;
    request.session_id = 0;
    request.sql = kAnalyticSql;
    request.query_class = server::QueryClass::kAnalytic;
    auto served = server->Submit(std::move(request));
    DT_CHECK(served.ok()) << served.status();
    DT_CHECK(direct->result.rows == served->result.rows);
    std::printf("row-for-row vs direct executor: ok (%zu rows)\n",
                served->result.rows.size());
  }

  // Calibrate: unloaded interactive latency sets the deadline budget.
  util::Histogram unloaded;
  {
    util::Rng rng(5);
    util::Clock* wall = util::RealClock::Instance();
    for (int i = 0; i < 60; ++i) {
      server::QueryRequest request;
      request.session_id = 1;
      request.sql = dt->OverlayQuerySql(
          static_cast<phylo::NodeId>(rng.Uniform(dt->tree().NumNodes())));
      request.query_class = server::QueryClass::kInteractive;
      int64_t start = wall->NowMicros();
      auto r = server->Submit(std::move(request));
      DT_CHECK(r.ok()) << r.status();
      unloaded.Add(static_cast<double>(wall->NowMicros() - start) / 1000.0);
    }
  }
  double unloaded_p99_ms = unloaded.Percentile(99);
  // The interactive SLO: ~1.5x unloaded p99 (floored against timer jitter).
  int64_t deadline_budget_micros =
      std::max<int64_t>(2'000, static_cast<int64_t>(unloaded_p99_ms * 1500.0));
  std::printf("unloaded interactive: %s -> deadline budget %.1fms\n\n",
              bench::PercentileSummary(unloaded).c_str(),
              static_cast<double>(deadline_budget_micros) / 1000.0);

  // Offered-load sweep. 4 slots serve the fleet; every 4th client is a
  // DesktopLan analyst issuing grouped scans, the rest are Phone3G /
  // TabletWifi sessions issuing deadline-bound overlay queries.
  std::printf("%-8s %10s %8s %8s %8s %9s %9s %10s\n", "clients", "int-qps",
              "p50(ms)", "p95(ms)", "p99(ms)", "shed%", "miss%", "ana-done");
  constexpr int64_t kDurationMicros = 500'000;
  for (int clients : {1, 4, 8, 16, 32}) {
    std::vector<ClientResult> results(static_cast<size_t>(clients));
    std::vector<std::thread> fleet;
    fleet.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      bool analytic = clients > 1 && (c % 4) == 3;
      fleet.emplace_back([&, c, analytic] {
        results[static_cast<size_t>(c)] =
            RunClient(dt.get(), server.get(), static_cast<uint64_t>(c + 1),
                      analytic, deadline_budget_micros, kDurationMicros);
      });
    }
    for (auto& t : fleet) t.join();

    util::Histogram interactive;
    int64_t completed = 0, shed = 0, cancelled = 0, failed = 0;
    int64_t analytic_done = 0;
    for (int c = 0; c < clients; ++c) {
      const ClientResult& r = results[static_cast<size_t>(c)];
      if (clients > 1 && (c % 4) == 3) {
        analytic_done += r.completed;
        continue;
      }
      interactive.Merge(r.latency_ms);
      completed += r.completed;
      shed += r.shed;
      cancelled += r.cancelled;
      failed += r.failed;
    }
    DT_CHECK(failed == 0);
    int64_t offered = completed + shed + cancelled;
    double qps = static_cast<double>(completed) /
                 (static_cast<double>(kDurationMicros) / 1e6);
    auto pct = [&](int64_t n) {
      return offered > 0 ? 100.0 * static_cast<double>(n) /
                               static_cast<double>(offered)
                         : 0.0;
    };
    std::printf("%-8d %10.0f %8.2f %8.2f %8.2f %8.1f%% %8.1f%% %10lld\n",
                clients, qps, interactive.Median(),
                interactive.Percentile(95), interactive.Percentile(99),
                pct(shed), pct(cancelled), (long long)analytic_done);
  }

  std::printf("\nshape check: completed-interactive p99 stays within the\n"
              "deadline budget at every load point (shed + cancelled absorb\n"
              "the overload); analytic throughput never drops to zero.\n");
  drugtree::bench::DumpMetrics(metrics_flag);
  return 0;
}
