// E10: multi-session serving under load — admission control, weighted-fair
// scheduling, and deadline-driven cancellation. A closed-loop client fleet
// (Phone3G / TabletWifi interactive overlay queries, DesktopLan analytic
// scans) sweeps offered load from unloaded to ~8x slot saturation. The
// serving claim: interactive p99 stays bounded (load shedding + deadline
// cancellation trade completed work for latency) instead of collapsing with
// the queue, and analytic work keeps making progress at every load point.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/drugtree.h"
#include "server/server.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

using namespace drugtree;

std::unique_ptr<core::DrugTree> MakeInstance(util::SimulatedClock* clock) {
  core::BuildOptions options;
  options.seed = 13;
  options.num_families = 6;
  options.taxa_per_family = 24;  // 144 leaves -> ~286 nodes
  options.num_ligands = 300;
  auto built = core::DrugTree::Build(options, clock);
  DT_CHECK(built.ok()) << built.status();
  return std::move(*built);
}

constexpr const char* kAnalyticSql =
    "SELECT p.family, COUNT(*), AVG(a.affinity_nm) "
    "FROM proteins p, activities a WHERE p.accession = a.accession "
    "GROUP BY p.family";

struct ClientResult {
  util::Histogram latency_ms;  // completed requests only
  int64_t completed = 0;
  int64_t shed = 0;
  int64_t cancelled = 0;
  int64_t failed = 0;
};

// One closed-loop client: issues the next request only after the previous
// one finishes, for `duration_micros` of wall time.
ClientResult RunClient(core::DrugTree* dt, server::DrugTreeServer* server,
                       uint64_t session_id, bool analytic,
                       int64_t deadline_budget_micros,
                       int64_t duration_micros) {
  ClientResult out;
  util::Rng rng(session_id * 7919 + 17);
  size_t num_nodes = dt->tree().NumNodes();
  util::Clock* wall = util::RealClock::Instance();
  int64_t end_at = wall->NowMicros() + duration_micros;
  while (wall->NowMicros() < end_at) {
    server::QueryRequest request;
    request.session_id = session_id;
    if (analytic) {
      request.sql = kAnalyticSql;
      request.query_class = server::QueryClass::kAnalytic;
    } else {
      request.sql = dt->OverlayQuerySql(
          static_cast<phylo::NodeId>(rng.Uniform(num_nodes)));
      request.query_class = server::QueryClass::kInteractive;
      request.deadline_micros = wall->NowMicros() + deadline_budget_micros;
    }
    int64_t start = wall->NowMicros();
    auto result = server->Submit(std::move(request));
    int64_t micros = wall->NowMicros() - start;
    if (result.ok()) {
      ++out.completed;
      out.latency_ms.Add(static_cast<double>(micros) / 1000.0);
    } else if (result.status().IsResourceExhausted()) {
      ++out.shed;
      // Honour the busy signal: back off instead of hammering admission.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    } else if (result.status().IsCancelled()) {
      ++out.cancelled;
    } else {
      ++out.failed;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto metrics_flag = drugtree::bench::ParseMetricsFlag(&argc, argv);
  bench::Banner("E10",
                "multi-session serving under offered-load sweep:\n"
                "admission shedding, fair scheduling, deadline cancellation");
  util::SimulatedClock build_clock;
  auto dt = MakeInstance(&build_clock);
  std::printf("tree: %zu nodes, %zu leaves\n", dt->tree().NumNodes(),
              dt->tree().NumLeaves());

  server::ServerOptions sopts;
  sopts.worker_threads = 4;
  sopts.scheduler.total_slots = 4;
  sopts.scheduler.interactive_slots = 3;
  sopts.scheduler.analytic_slots = 2;
  sopts.admission.interactive_queue_capacity = 8;
  sopts.admission.analytic_queue_capacity = 4;
  auto server = dt->MakeServer(sopts, util::RealClock::Instance());

  // Sanity: the served path returns exactly what the direct planner does.
  {
    auto direct = dt->Query(kAnalyticSql);
    DT_CHECK(direct.ok()) << direct.status();
    server::QueryRequest request;
    request.session_id = 0;
    request.sql = kAnalyticSql;
    request.query_class = server::QueryClass::kAnalytic;
    auto served = server->Submit(std::move(request));
    DT_CHECK(served.ok()) << served.status();
    DT_CHECK(direct->result.rows == served->result.rows);
    std::printf("row-for-row vs direct executor: ok (%zu rows)\n",
                served->result.rows.size());
  }

  // Calibrate: unloaded interactive latency sets the deadline budget.
  util::Histogram unloaded;
  {
    util::Rng rng(5);
    util::Clock* wall = util::RealClock::Instance();
    for (int i = 0; i < 60; ++i) {
      server::QueryRequest request;
      request.session_id = 1;
      request.sql = dt->OverlayQuerySql(
          static_cast<phylo::NodeId>(rng.Uniform(dt->tree().NumNodes())));
      request.query_class = server::QueryClass::kInteractive;
      int64_t start = wall->NowMicros();
      auto r = server->Submit(std::move(request));
      DT_CHECK(r.ok()) << r.status();
      unloaded.Add(static_cast<double>(wall->NowMicros() - start) / 1000.0);
    }
  }
  double unloaded_p99_ms = unloaded.Percentile(99);
  // The interactive SLO: ~1.5x unloaded p99 (floored against timer jitter).
  int64_t deadline_budget_micros =
      std::max<int64_t>(2'000, static_cast<int64_t>(unloaded_p99_ms * 1500.0));
  std::printf("unloaded interactive: p50=%.2fms p99=%.2fms -> "
              "deadline budget %.1fms\n\n",
              unloaded.Median(), unloaded_p99_ms,
              static_cast<double>(deadline_budget_micros) / 1000.0);

  // Offered-load sweep. 4 slots serve the fleet; every 4th client is a
  // DesktopLan analyst issuing grouped scans, the rest are Phone3G /
  // TabletWifi sessions issuing deadline-bound overlay queries.
  std::printf("%-8s %10s %8s %8s %8s %9s %9s %10s\n", "clients", "int-qps",
              "p50(ms)", "p95(ms)", "p99(ms)", "shed%", "miss%", "ana-done");
  constexpr int64_t kDurationMicros = 500'000;
  for (int clients : {1, 4, 8, 16, 32}) {
    std::vector<ClientResult> results(static_cast<size_t>(clients));
    std::vector<std::thread> fleet;
    fleet.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      bool analytic = clients > 1 && (c % 4) == 3;
      fleet.emplace_back([&, c, analytic] {
        results[static_cast<size_t>(c)] =
            RunClient(dt.get(), server.get(), static_cast<uint64_t>(c + 1),
                      analytic, deadline_budget_micros, kDurationMicros);
      });
    }
    for (auto& t : fleet) t.join();

    util::Histogram interactive;
    int64_t completed = 0, shed = 0, cancelled = 0, failed = 0;
    int64_t analytic_done = 0;
    for (int c = 0; c < clients; ++c) {
      const ClientResult& r = results[static_cast<size_t>(c)];
      if (clients > 1 && (c % 4) == 3) {
        analytic_done += r.completed;
        continue;
      }
      interactive.Merge(r.latency_ms);
      completed += r.completed;
      shed += r.shed;
      cancelled += r.cancelled;
      failed += r.failed;
    }
    DT_CHECK(failed == 0);
    int64_t offered = completed + shed + cancelled;
    double qps = static_cast<double>(completed) /
                 (static_cast<double>(kDurationMicros) / 1e6);
    auto pct = [&](int64_t n) {
      return offered > 0 ? 100.0 * static_cast<double>(n) /
                               static_cast<double>(offered)
                         : 0.0;
    };
    std::printf("%-8d %10.0f %8.2f %8.2f %8.2f %8.1f%% %8.1f%% %10lld\n",
                clients, qps, interactive.Median(),
                interactive.Percentile(95), interactive.Percentile(99),
                pct(shed), pct(cancelled), (long long)analytic_done);
  }

  std::printf("\nshape check: completed-interactive p99 stays within the\n"
              "deadline budget at every load point (shed + cancelled absorb\n"
              "the overload); analytic throughput never drops to zero.\n");
  drugtree::bench::DumpMetrics(metrics_flag);
  return 0;
}
