// E14: sharded, replicated serving tier — scatter-gather scale-out. Two
// phases over a topology sweep of shard count {1,2,4,8} x replication
// factor {1,2}:
//
//   Phase A (virtual clock, bit-deterministic): a fixed mixed workload runs
//   through each topology's router. The table records the routing decision
//   mix, per-shard fan-out, observed hop-cost EWMA, and the exact virtual
//   time the workload consumed — diffable across PRs.
//
//   Phase B (real clock): closed-loop client fleets measure serving
//   capacity. The analytic fleet runs a deliberately heavy broadcast
//   subtree join (naive plan: per-shard work shrinks superlinearly with
//   partition size); a separate interactive fleet then measures the
//   routed single-shard path. The scale-out claims gated in tier-1
//   (--gate, Release build): 4-shard analytic throughput >= 2x the
//   1-shard topology, and the routed interactive p99 — two hops plus
//   admission, scheduling, and execution — stays within the 2ms mobile
//   budget.
//
// `--statusz` prints only the sharded Statusz() JSON snapshot for
// scripts/statusz_check.sh.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/drugtree.h"
#include "core/workload.h"
#include "shard/router.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

using namespace drugtree;

std::unique_ptr<core::DrugTree> MakeInstance(util::Clock* clock) {
  core::BuildOptions options;
  options.seed = 29;
  options.num_families = 6;
  options.taxa_per_family = 24;  // 144 leaves -> ~286 nodes
  options.num_ligands = 300;
  auto built = core::DrugTree::Build(options, clock);
  DT_CHECK(built.ok()) << built.status();
  return std::move(*built);
}

struct Topology {
  int shards;
  int replicas;
};

constexpr Topology kSweep[] = {{1, 1}, {2, 1}, {4, 1}, {8, 1},
                               {1, 2}, {2, 2}, {4, 2}, {8, 2}};

shard::RouterOptions MakeTopology(int shards, int replicas) {
  shard::RouterOptions options;
  options.num_shards = shards;
  options.replicas_per_shard = replicas;
  return options;
}

// Phase A: deterministic routing/fan-out sweep on the virtual clock.
void RunVirtualSweep(core::DrugTree* dt, util::SimulatedClock* clock) {
  bench::Banner("E14a",
                "topology sweep, fixed workload (virtual clock, exact)");
  core::WorkloadParams params;
  params.num_queries = 60;
  util::Rng rng(4242);
  auto workload = core::GenerateWorkload(dt->tree(), dt->tree_index(),
                                         params, &rng);
  std::printf("workload: %zu queries (subtree scans/overlays, screening\n"
              "joins, family aggregates, ancestor paths), zipf skew %.2f\n\n",
              workload.size(), params.node_skew);
  std::printf("%-8s %7s %8s %10s %9s %7s %9s %11s %12s\n", "topology",
              "routed", "scatter", "broadcast", "fallback", "subs",
              "hop-ewma", "gather-p99", "virtual-ms");
  for (const Topology& t : kSweep) {
    auto router = dt->MakeShardRouter(MakeTopology(t.shards, t.replicas));
    DT_CHECK(router.ok()) << router.status();
    int64_t start = clock->NowMicros();
    for (const auto& q : workload) {
      server::QueryRequest request;
      request.session_id = 1;
      request.sql = q.sql;
      request.query_class = server::QueryClass::kAnalytic;
      auto out = (*router)->Submit(std::move(request));
      DT_CHECK(out.ok()) << q.sql << ": " << out.status();
    }
    (*router)->Drain();
    int64_t virtual_micros = clock->NowMicros() - start;
    auto rc = (*router)->route_counters();
    int64_t subs = 0;
    int64_t hop_ewma = 0;
    double gather_p99 = 0.0;
    util::Histogram gather;
    for (const auto& rec : (*router)->trace_store()->Snapshot()) {
      gather.Add(static_cast<double>(
                     rec.PhaseMicros(obs::TracePhase::kGather)) /
                 1000.0);
    }
    gather_p99 = gather.Percentile(99);
    for (int s = 0; s < t.shards; ++s) {
      subs += (*router)->shard_counters(s).sub_requests;
      hop_ewma += (*router)->hop_cost_micros(s);
    }
    hop_ewma /= t.shards;
    std::printf("%dx%-6d %7lld %8lld %10lld %9lld %7lld %7lldus %9.2fms %10.1f\n",
                t.shards, t.replicas, (long long)rc.routed,
                (long long)rc.scatter, (long long)rc.broadcast,
                (long long)rc.fallback, (long long)subs, (long long)hop_ewma,
                gather_p99, static_cast<double>(virtual_micros) / 1000.0);
    DT_CHECK(rc.failed == 0);
  }
  std::printf("\nshape check: every topology answers the same workload; the\n"
              "broadcast fan-out grows with shard count while routed\n"
              "queries stay single-sub; the aggregate falls back to the\n"
              "coordinator at every point.\n");
}

// The heavy analytic statement for phase B: a broadcast subtree join whose
// naive (nested-loop) plan makes per-shard work scale superlinearly with
// partition size, so partitioning pays beyond raw slot count.
std::string HeavyBroadcastSql(core::DrugTree* dt) {
  return util::StringPrintf(
      "SELECT p.accession, a.affinity_nm FROM proteins p JOIN activities a "
      "ON p.accession = a.accession WHERE SUBTREE(p.node_id, %d) "
      "ORDER BY a.affinity_nm, p.accession LIMIT 50",
      dt->tree().root());
}

struct FleetResult {
  int64_t analytic_completed = 0;
  double analytic_qps = 0.0;
  util::Histogram interactive_ms;
  int64_t interactive_completed = 0;
  int64_t errors = 0;
};

// Closed-loop fleets against one topology for `duration_micros` of wall
// time: `analytic_clients` run the broadcast join (`heavy` picks the
// naive nested-loop plan vs the optimized one), `interactive_clients`
// issue small routed subtree scans concurrently. Shed analytic requests
// back off instead of hammering admission.
FleetResult RunFleet(core::DrugTree* dt, shard::ShardRouter* router,
                     int analytic_clients, int interactive_clients,
                     bool heavy_analytic, int64_t duration_micros) {
  FleetResult out;
  util::Clock* wall = util::RealClock::Instance();
  std::string heavy = HeavyBroadcastSql(dt);
  std::atomic<int64_t> analytic_done{0};
  std::atomic<int64_t> interactive_done{0};
  std::atomic<int64_t> errors{0};
  std::mutex latency_mu;
  int64_t end_at = wall->NowMicros() + duration_micros;

  std::vector<std::thread> fleet;
  for (int c = 0; c < analytic_clients; ++c) {
    fleet.emplace_back([&, c] {
      while (wall->NowMicros() < end_at) {
        server::QueryRequest request;
        request.session_id = static_cast<uint64_t>(100 + c);
        request.sql = heavy;
        request.query_class = server::QueryClass::kAnalytic;
        request.planner = heavy_analytic ? query::PlannerOptions::Naive()
                                         : query::PlannerOptions::Optimized();
        auto r = router->Submit(std::move(request));
        if (r.ok()) {
          analytic_done.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().IsResourceExhausted()) {
          // Honour the busy signal: a retry storm would burn the very CPU
          // the measured servers need.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Interactive foci: leaves (single-shard routed by construction).
  std::vector<phylo::NodeId> leaves = dt->tree().Leaves();
  for (int c = 0; c < interactive_clients; ++c) {
    fleet.emplace_back([&, c] {
      util::Rng rng(static_cast<uint64_t>(c) * 97 + 5);
      core::WorkloadParams params;
      while (wall->NowMicros() < end_at) {
        phylo::NodeId focus = leaves[rng.Uniform(leaves.size())];
        server::QueryRequest request;
        request.session_id = static_cast<uint64_t>(1 + c);
        request.sql = core::MakeQuerySql(core::QueryKind::kSubtreeProteins,
                                         focus, dt->tree(), params);
        request.query_class = server::QueryClass::kInteractive;
        int64_t start = wall->NowMicros();
        auto r = router->Submit(std::move(request));
        int64_t micros = wall->NowMicros() - start;
        if (r.ok()) {
          interactive_done.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(latency_mu);
          out.interactive_ms.Add(static_cast<double>(micros) / 1000.0);
        } else if (!r.status().IsResourceExhausted()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : fleet) t.join();
  out.analytic_completed = analytic_done.load();
  out.analytic_qps = static_cast<double>(out.analytic_completed) /
                     (static_cast<double>(duration_micros) / 1e6);
  out.interactive_completed = interactive_done.load();
  out.errors = errors.load();
  return out;
}

shard::RouterOptions RealClockTopology(int shards, int replicas) {
  shard::RouterOptions options = MakeTopology(shards, replicas);
  // Real-clock hops: SimulatedNetwork sleeps through AdvanceMicros, so the
  // modelled per-hop latency must stay small against the measured work,
  // and the link must be wide enough that channel queueing never gates the
  // fleet (the capacity under test is the servers', not the fabric's).
  options.hop.latency_micros = 100;
  options.hop.jitter_fraction = 0.0;
  options.hop.bandwidth_bytes_per_sec = 1'000'000'000;
  options.hop.max_concurrency = 64;
  return options;
}

// Phase B: real-clock capacity sweep + the tier-1 scale-out gates.
int RunThroughput(core::DrugTree* dt, bool enforce) {
  bench::Banner("E14b",
                "scale-out capacity: closed-loop fleets, real clock");
  constexpr int kAnalyticClients = 8;
  constexpr int64_t kDuration = 1'000'000;  // 1s per topology point

  // B1: analytic capacity. The naive nested-loop join makes per-shard work
  // shrink quadratically with partition size, so the scatter tier wins
  // even when every replica shares one physical core.
  std::printf("capacity fleet: %d closed-loop analytic clients, heavy\n"
              "broadcast join (naive plan); %.1fs per point; hop 100us\n\n",
              kAnalyticClients, static_cast<double>(kDuration) / 1e6);
  std::printf("%-8s %9s %9s %9s %7s\n", "topology", "ana-done", "ana-qps",
              "speedup", "errors");
  double qps_1shard = 0.0;
  double qps_4shard = 0.0;
  for (const Topology& t : kSweep) {
    auto router = dt->MakeShardRouter(RealClockTopology(t.shards, t.replicas),
                                      util::RealClock::Instance());
    DT_CHECK(router.ok()) << router.status();
    FleetResult r = RunFleet(dt, router->get(), kAnalyticClients,
                             /*interactive_clients=*/0,
                             /*heavy_analytic=*/true, kDuration);
    (*router)->Drain();
    if (t.shards == 1 && t.replicas == 1) qps_1shard = r.analytic_qps;
    if (t.shards == 4 && t.replicas == 1) qps_4shard = r.analytic_qps;
    std::printf("%dx%-6d %9lld %9.1f %8.2fx %7lld\n", t.shards, t.replicas,
                (long long)r.analytic_completed, r.analytic_qps,
                qps_1shard > 0.0 ? r.analytic_qps / qps_1shard : 1.0,
                (long long)r.errors);
    DT_CHECK(r.errors == 0) << "capacity fleet saw hard errors";
  }

  // B2: the routed interactive path on the gated 4-shard topology. A
  // routed leaf scan crosses the full serving stack — route decision, two
  // modelled hops, replica admission/scheduling/execution, merge-free
  // single-sub return — and the whole round trip must fit the 2ms mobile
  // budget. (Concurrent-load isolation is measured deterministically in
  // phase A and by the scheduler's own gates: this host's single core
  // would fold OS timeslice noise, not serving behaviour, into a
  // contended wall-clock tail.)
  std::printf("\nrouted path (4x1): 2 interactive clients, leaf subtree\n"
              "scans, single-shard routing\n");
  auto router = dt->MakeShardRouter(RealClockTopology(4, 1),
                                    util::RealClock::Instance());
  DT_CHECK(router.ok()) << router.status();
  FleetResult iso = RunFleet(dt, router->get(), /*analytic_clients=*/0,
                             /*interactive_clients=*/2,
                             /*heavy_analytic=*/false, kDuration);
  (*router)->Drain();
  std::printf("interactive: %lld completed, %s\n",
              (long long)iso.interactive_completed,
              bench::PercentileSummary(iso.interactive_ms).c_str());
  DT_CHECK(iso.errors == 0) << "isolation fleet saw hard errors";
  double int_p99 = iso.interactive_ms.Percentile(99);

  double speedup = qps_1shard > 0.0 ? qps_4shard / qps_1shard : 0.0;
  bool qps_ok = speedup >= 2.0;
  bool p99_ok = int_p99 <= 2.0;
  std::printf("\ngate: 4-shard analytic speedup %.2fx (>= 2.00x required) %s\n",
              speedup, qps_ok ? "PASS" : "FAIL");
  std::printf("gate: 4-shard interactive p99 %.2fms (<= 2.00ms budget) %s\n",
              int_p99, p99_ok ? "PASS" : "FAIL");
  if (enforce) {
    DT_CHECK(qps_ok) << "scale-out gate: 4-shard analytic speedup "
                     << speedup << "x < 2x";
    DT_CHECK(p99_ok) << "scale-out gate: interactive p99 " << int_p99
                     << "ms > 2ms budget";
  } else {
    std::printf("(informational run: gates enforced by --gate in tier-1's\n"
                "Release lane)\n");
  }
  return 0;
}

// `--statusz`: a small deterministic sharded workload on the virtual
// clock; stdout is exactly one JSON object (the router snapshot).
int RunStatusz() {
  util::SimulatedClock clock;
  auto dt = MakeInstance(&clock);
  auto router = dt->MakeShardRouter(MakeTopology(2, 2));
  DT_CHECK(router.ok()) << router.status();
  core::WorkloadParams params;
  params.num_queries = 12;
  util::Rng rng(17);
  for (const auto& q : core::GenerateWorkload(dt->tree(), dt->tree_index(),
                                              params, &rng)) {
    server::QueryRequest request;
    request.session_id = 1;
    request.sql = q.sql;
    request.query_class = server::QueryClass::kInteractive;
    auto r = (*router)->Submit(std::move(request));
    DT_CHECK(r.ok()) << r.status();
  }
  (*router)->Drain();
  std::printf("%s\n", (*router)->Statusz().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto metrics_flag = drugtree::bench::ParseMetricsFlag(&argc, argv);
  bool statusz = false;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--statusz") == 0) statusz = true;
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }
  if (statusz) return RunStatusz();

  util::SimulatedClock clock;
  auto dt = MakeInstance(&clock);
  std::printf("tree: %zu nodes, %zu leaves\n", dt->tree().NumNodes(),
              dt->tree().NumLeaves());
  RunVirtualSweep(dt.get(), &clock);
  int rc = RunThroughput(dt.get(), gate);
  drugtree::bench::DumpMetrics(metrics_flag);
  return rc;
}
