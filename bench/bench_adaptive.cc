// E15: the observe->plan feedback loop — plan-cache efficacy, calibration
// movement, and per-class adaptive knob retuning.
//
// Phase A (virtual clock): determinism guard. On a SimulatedClock every
// operator elapsed is zero, so the cost calibrator must refuse every
// observation and the coefficient version must stay 0 — simulation replays
// stay bit-exact with calibration compiled in and enabled.
//
// Phase B (real clock): plan-cache efficacy on a skewed serving mix —
// repeated overlay shapes and parameterized analytic joins. Two identical
// servers run the identical request stream, one with the plan cache off.
// Gates (tier-1, Release, --gate):
//   * hit rate >= 90% on the cached server;
//   * optimizer time (span.query.optimize — the re-plan work a hit skips)
//     with the cache on <= 1/2 of cache-off. The full kPlan phase is
//     reported too, but not gated: parse and physical planning run on hits
//     as well, so the phase total is noise-bounded around ~2x on this mix.
//
// Phase C (real clock): a closed-loop mixed fleet with the adaptive
// controller enabled. The controller may only trade analytic batch shape
// for interactive latency, so the gate is the serving floor itself:
// interactive p99 <= 2ms while analytic work keeps completing.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/drugtree.h"
#include "obs/cost_calibrator.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "obs/trace_store.h"
#include "query/plan_cache.h"
#include "query/planner.h"
#include "server/server.h"
#include "util/clock.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

using namespace drugtree;

std::unique_ptr<core::DrugTree> MakeInstance(util::SimulatedClock* clock) {
  core::BuildOptions options;
  options.seed = 13;
  options.num_families = 6;
  options.taxa_per_family = 24;
  options.num_ligands = 300;
  auto built = core::DrugTree::Build(options, clock);
  DT_CHECK(built.ok()) << built.status();
  return std::move(*built);
}

/// The serving mix: a handful of hot overlay nodes (identical-statement
/// reuse: templates are non-rebindable after the tree-predicate rewrite,
/// so only exact repeats hit) plus parameterized analytic scans (literal
/// variants re-bind one template). Skew is the whole point — mobile
/// sessions hammer the same subtrees.
struct Workload {
  std::vector<std::string> overlay;  // hot overlay statements, reused
  std::vector<std::string> analytic; // literal variants of two shapes
};

Workload MakeWorkload(core::DrugTree* dt, int hot_nodes, int variants) {
  Workload w;
  util::Rng rng(4242);
  size_t num_nodes = dt->tree().NumNodes();
  for (int i = 0; i < hot_nodes; ++i) {
    w.overlay.push_back(dt->OverlayQuerySql(
        static_cast<phylo::NodeId>(rng.Uniform(num_nodes))));
  }
  for (int i = 0; i < variants; ++i) {
    w.analytic.push_back(util::StringPrintf(
        "SELECT p.family, COUNT(*), AVG(l.mw) FROM proteins p, "
        "activities a, ligands l WHERE p.accession = a.accession "
        "AND a.ligand_id = l.ligand_id AND l.mw < %d.0 GROUP BY p.family",
        350 + 50 * i));
    w.analytic.push_back(util::StringPrintf(
        "SELECT p.family, COUNT(*) FROM proteins p, activities a "
        "WHERE p.accession = a.accession AND a.affinity_nm < %d.0 "
        "GROUP BY p.family",
        200 + 100 * i));
  }
  return w;
}

int RunCalibrationDeterminism() {
  bench::Banner("E15a", "calibration determinism: virtual clock is a no-op");
  util::SimulatedClock clock;
  auto dt = MakeInstance(&clock);
  obs::Tracer::Default()->set_clock(&clock);

  server::ServerOptions sopts;
  sopts.worker_threads = 2;
  auto server = dt->MakeServer(sopts);
  Workload w = MakeWorkload(dt.get(), 4, 4);
  int requests = 0;
  for (int round = 0; round < 3; ++round) {
    for (const std::string& sql : w.overlay) {
      server::QueryRequest r;
      r.sql = sql;
      DT_CHECK(server->Submit(std::move(r)).ok());
      ++requests;
    }
    for (const std::string& sql : w.analytic) {
      server::QueryRequest r;
      r.sql = sql;
      r.query_class = server::QueryClass::kAnalytic;
      DT_CHECK(server->Submit(std::move(r)).ok());
      ++requests;
    }
  }
  server->Drain();
  obs::Tracer::Default()->set_clock(nullptr);

  obs::CalibratedCosts costs = server->cost_calibrator()->snapshot();
  std::printf("%d requests on the virtual clock: calibrator version %llu, "
              "effective updates %lld\n",
              requests, (unsigned long long)costs.version,
              (long long)server->cost_calibrator()->effective_updates());
  DT_CHECK(costs.version == 0)
      << "virtual-clock serving moved cost coefficients — simulation "
         "replays are no longer deterministic";
  std::printf("PASS: zero-elapsed observations rejected, coefficients "
              "untouched\n");
  return 0;
}

/// Sums the planning phase across every completed trace record.
int64_t TotalPlanMicros(server::DrugTreeServer* server) {
  int64_t total = 0;
  for (const obs::TraceRecord& r : server->trace_store()->Snapshot()) {
    total += r.PhaseMicros(obs::TracePhase::kPlan);
  }
  return total;
}

/// Process-wide optimizer time (the DT_SPAN mirror counter).
int64_t OptimizeMicros() {
  return obs::MetricRegistry::Default()
      ->GetCounter("span.query.optimize.total_micros")
      ->Value();
}

int RunPlanCacheEfficacy(core::DrugTree* dt, bool enforce) {
  bench::Banner("E15b", "plan-cache efficacy: skewed mix, cache on vs off");
  constexpr int kRounds = 100;
  Workload w = MakeWorkload(dt, 6, 4);

  server::ServerOptions on;
  on.worker_threads = 2;
  on.trace_store_capacity = 16384;
  server::ServerOptions off = on;
  off.enable_plan_cache = false;
  off.enable_cost_calibration = false;

  struct Lane {
    const char* name;
    std::unique_ptr<server::DrugTreeServer> server;
    int64_t plan_micros = 0;
    int64_t optimize_micros = 0;
  };
  Lane lanes[2] = {
      {"cache-on", dt->MakeServer(on, util::RealClock::Instance())},
      {"cache-off", dt->MakeServer(off, util::RealClock::Instance())},
  };

  int requests = 0;
  for (Lane& lane : lanes) {
    requests = 0;
    int64_t optimize_before = OptimizeMicros();
    for (int round = 0; round < kRounds; ++round) {
      // Mobile skew: each round replays the hot subtree overlays several
      // times for every pass over the analytic variants.
      for (int rep = 0; rep < 3; ++rep) {
        for (const std::string& sql : w.overlay) {
          server::QueryRequest r;
          r.sql = sql;
          DT_CHECK(lane.server->Submit(std::move(r)).ok());
          ++requests;
        }
      }
      for (const std::string& sql : w.analytic) {
        server::QueryRequest r;
        r.sql = sql;
        r.query_class = server::QueryClass::kAnalytic;
        DT_CHECK(lane.server->Submit(std::move(r)).ok());
        ++requests;
      }
    }
    lane.server->Drain();
    lane.plan_micros = TotalPlanMicros(lane.server.get());
    lane.optimize_micros = OptimizeMicros() - optimize_before;
  }

  query::PlanCache::Stats stats = lanes[0].server->plan_cache()->stats();
  int64_t lookups = stats.hits + stats.misses;
  double hit_rate =
      lookups > 0 ? static_cast<double>(stats.hits) / lookups : 0.0;
  double phase_ratio =
      lanes[0].plan_micros > 0
          ? static_cast<double>(lanes[1].plan_micros) / lanes[0].plan_micros
          : 0.0;
  double reduction = lanes[0].optimize_micros > 0
                         ? static_cast<double>(lanes[1].optimize_micros) /
                               lanes[0].optimize_micros
                         : 0.0;

  std::printf("%d requests/lane (%zu overlay shapes x 3 + %zu analytic "
              "variants, x %d rounds)\n\n",
              requests, w.overlay.size(), w.analytic.size(), kRounds);
  std::printf("%-10s %8s %8s %8s %8s %8s %12s %12s\n", "lane", "hits",
              "rebinds", "misses", "inval", "install", "optimize", "plan-total");
  std::printf("%-10s %8lld %8lld %8lld %8lld %8lld %9.2fms %9.2fms\n",
              lanes[0].name, (long long)stats.hits, (long long)stats.rebinds,
              (long long)stats.misses, (long long)stats.invalidations,
              (long long)stats.installs,
              static_cast<double>(lanes[0].optimize_micros) / 1000.0,
              static_cast<double>(lanes[0].plan_micros) / 1000.0);
  std::printf("%-10s %8s %8s %8s %8s %8s %9.2fms %9.2fms\n", lanes[1].name,
              "-", "-", "-", "-", "-",
              static_cast<double>(lanes[1].optimize_micros) / 1000.0,
              static_cast<double>(lanes[1].plan_micros) / 1000.0);
  std::printf("(plan-phase totals include parse + physical planning, which "
              "run on hits too: %.2fx end-to-end)\n",
              phase_ratio);

  bool hit_ok = hit_rate >= 0.90;
  bool plan_ok = reduction >= 2.0;
  std::printf("\ngate: plan-cache hit rate %.1f%% (>= 90%% required) %s\n",
              hit_rate * 100.0, hit_ok ? "PASS" : "FAIL");
  std::printf("gate: re-plan (optimizer) reduction %.2fx (>= 2.00x required) "
              "%s\n",
              reduction, plan_ok ? "PASS" : "FAIL");
  if (enforce) {
    DT_CHECK(hit_ok) << "plan-cache gate: hit rate " << hit_rate * 100.0
                     << "% < 90%";
    DT_CHECK(plan_ok) << "plan-cache gate: re-plan (optimizer) reduction "
                      << reduction << "x < 2x";
  } else {
    std::printf("(informational run: gates enforced by --gate in tier-1's\n"
                "Release lane)\n");
  }
  return 0;
}

int RunAdaptiveFleet(core::DrugTree* dt, bool enforce) {
  bench::Banner("E15c", "adaptive knobs: mixed closed-loop fleet, real clock");
  constexpr int64_t kDuration = 1'500'000;  // 1.5s
  // Samples from the first stretch are dropped: that is the controller's
  // convergence window (it has to see a few latency windows before the
  // analytic knobs settle), and steady state is what the gate is about.
  constexpr int64_t kWarmup = 500'000;
  constexpr int kInteractiveClients = 2;
  constexpr int kAnalyticClients = 1;

  server::ServerOptions sopts;
  sopts.worker_threads = 4;
  sopts.scheduler.total_slots = 4;
  sopts.scheduler.interactive_slots = 3;
  sopts.scheduler.analytic_slots = 2;
  sopts.adaptive.enabled = true;
  sopts.adaptive.window = 32;
  sopts.adaptive.target_micros = 2'000;
  auto server = dt->MakeServer(sopts, util::RealClock::Instance());

  const char* kAnalyticSql =
      "SELECT p.family, COUNT(*), AVG(a.affinity_nm) "
      "FROM proteins p, activities a WHERE p.accession = a.accession "
      "GROUP BY p.family";
  struct Client {
    util::Histogram latency_ms;
    int64_t completed = 0;
    int64_t errors = 0;
  };
  auto run_client = [&](Client* out, uint64_t session, bool analytic) {
    util::Rng rng(session * 7919 + 17);
    // Mobile skew: each session explores a small working set of subtree
    // nodes, so its overlay statements stay resident in the plan cache.
    std::vector<std::string> hot;
    for (int i = 0; i < 8; ++i) {
      hot.push_back(dt->OverlayQuerySql(
          static_cast<phylo::NodeId>(rng.Uniform(dt->tree().NumNodes()))));
    }
    util::Clock* wall = util::RealClock::Instance();
    int64_t started_at = wall->NowMicros();
    int64_t end_at = started_at + kDuration;
    while (wall->NowMicros() < end_at) {
      server::QueryRequest r;
      r.session_id = session;
      if (analytic) {
        r.sql = kAnalyticSql;
        r.query_class = server::QueryClass::kAnalytic;
      } else {
        r.sql = hot[rng.Uniform(hot.size())];
      }
      int64_t start = wall->NowMicros();
      auto result = server->Submit(std::move(r));
      int64_t now = wall->NowMicros();
      if (result.ok()) {
        ++out->completed;
        if (now - started_at > kWarmup) {
          out->latency_ms.Add(static_cast<double>(now - start) / 1000.0);
        }
      } else if (!result.status().IsResourceExhausted()) {
        ++out->errors;
      }
    }
  };

  std::vector<Client> clients(kInteractiveClients + kAnalyticClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kInteractiveClients + kAnalyticClients; ++i) {
    threads.emplace_back(run_client, &clients[static_cast<size_t>(i)],
                         static_cast<uint64_t>(i + 1),
                         i >= kInteractiveClients);
  }
  for (auto& t : threads) t.join();
  server->Drain();

  util::Histogram interactive_ms;
  int64_t analytic_completed = 0;
  int64_t errors = 0;
  for (int i = 0; i < kInteractiveClients + kAnalyticClients; ++i) {
    const Client& c = clients[static_cast<size_t>(i)];
    errors += c.errors;
    if (i < kInteractiveClients) {
      interactive_ms.Merge(c.latency_ms);
    } else {
      analytic_completed += c.completed;
    }
  }

  const server::AdaptiveController* ctl = server->adaptive();
  server::AdaptiveKnobs knobs = ctl->knobs(server::QueryClass::kAnalytic);
  std::printf("interactive: %lld completed, %s\n",
              (long long)interactive_ms.count(),
              bench::PercentileSummary(interactive_ms).c_str());
  std::printf("analytic:    %lld completed (errors %lld)\n",
              (long long)analytic_completed, (long long)errors);
  std::printf("controller:  %lld decisions, %lld down, %lld up; analytic "
              "knobs now batch=%zu parallelism=%d\n",
              (long long)ctl->decisions(), (long long)ctl->steps_down(),
              (long long)ctl->steps_up(), knobs.batch_size, knobs.parallelism);
  DT_CHECK(errors == 0) << "adaptive fleet saw hard errors";

  double p99 = interactive_ms.Percentile(99);
  bool p99_ok = p99 <= 2.0;
  std::printf("\ngate: interactive p99 %.2fms (<= 2.00ms budget) %s\n", p99,
              p99_ok ? "PASS" : "FAIL");
  if (enforce) {
    DT_CHECK(p99_ok) << "adaptive gate: interactive p99 " << p99
                     << "ms > 2ms budget";
  } else {
    std::printf("(informational run: gates enforced by --gate in tier-1's\n"
                "Release lane)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto metrics_flag = drugtree::bench::ParseMetricsFlag(&argc, argv);
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }

  int rc = RunCalibrationDeterminism();
  if (rc != 0) return rc;

  util::SimulatedClock build_clock;
  auto dt = MakeInstance(&build_clock);
  std::printf("tree: %zu nodes, %zu leaves\n", dt->tree().NumNodes(),
              dt->tree().NumLeaves());
  rc = RunPlanCacheEfficacy(dt.get(), gate);
  if (rc != 0) return rc;
  rc = RunAdaptiveFleet(dt.get(), gate);
  drugtree::bench::DumpMetrics(metrics_flag);
  return rc;
}
