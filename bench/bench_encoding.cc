// E13: compressed columnar segments with direct encoded execution.
//
// A deterministic 256k-row table with one column per encoding sweet spot
// (dict-friendly categories, RLE-friendly sorted runs, FoR-friendly narrow
// ints, incompressible doubles) is scanned at several predicate
// selectivities with encoded segments ON and OFF (interleaved best-of-N).
// Reports per-column compression ratios, bytes scanned, and rows/sec.
//
// Like bench_vectorized_smoke this is a pass/fail smoke, not a
// google-benchmark binary. Gates (release builds, scripts/tier1.sh):
//   * compression ratio >= 2x on the dict and RLE columns
//   * encoded scan-filter throughput >= 1x plain on the low-cardinality
//     predicate (the workload direct encoded execution is supposed to win)
//
// With DRUGTREE_ENCODED_TRACKED=1 it instead gates the encoded scan's
// tracker overhead: the encoded batch query runs with and without a
// per-query obs::MemoryTracker attached and fails if tracking costs more
// than DRUGTREE_TRACKER_BUDGET_PCT percent (default 5). Used by
// scripts/obs_noop_ab.sh as the encoded lane.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/resource_tracker.h"
#include "query/planner.h"
#include "query/query_context.h"
#include "storage/encoded_segment.h"
#include "storage/table.h"

namespace {

using namespace drugtree;

constexpr int kRows = 256 * 1024;
constexpr int kRounds = 5;

/// Predicate sweep: name, SQL, and which gate (if any) it feeds.
struct Probe {
  const char* name;
  const char* sql;
  bool gated;  // encoded must be >= 1x plain here
};

const Probe kProbes[] = {
    // Low-cardinality equality on the dictionary column: one literal
    // translation, then pure code compares. The headline gate.
    {"dict-eq (1/8)",
     "SELECT e.run FROM enc e WHERE e.cat = 'family-3'", true},
    // Run-structured range: whole-run accept/reject.
    {"rle-range (~25%)",
     "SELECT e.cat FROM enc e WHERE e.run < 64", true},
    // Narrow-int range on the FoR column.
    {"for-range (~6%)",
     "SELECT e.narrow FROM enc e WHERE e.narrow < 256", false},
    // Conjunction across encodings.
    {"conj (~3%)",
     "SELECT e.run FROM enc e WHERE e.cat = 'family-3' AND e.run < 64",
     false},
    // Near-zero selectivity: dominated by filter speed, no decode.
    {"dict-miss (0%)",
     "SELECT e.run FROM enc e WHERE e.cat = 'family-none'", false},
};

double RunOnce(query::Planner* planner, const char* sql, size_t* rows_out,
               obs::MemoryTracker* tracker = nullptr) {
  query::PlannerOptions opts;  // optimized defaults
  opts.batch_size = 1024;
  query::QueryContext context;
  context.memory = tracker;
  auto start = std::chrono::steady_clock::now();
  auto outcome = planner->Run(sql, opts, tracker ? &context : nullptr);
  auto stop = std::chrono::steady_clock::now();
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    std::exit(2);
  }
  *rows_out = outcome->result.rows.size();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main() {
  auto schema = storage::Schema::Create({
      {"cat", storage::ValueType::kString, false},    // 8 distinct -> dict
      {"run", storage::ValueType::kInt64, false},     // sorted runs -> rle
      {"narrow", storage::ValueType::kInt64, false},  // range 4096 -> for
      {"score", storage::ValueType::kDouble, false},  // distinct -> plain
  });
  if (!schema.ok()) return 2;
  storage::Table enc("enc", *schema);
  for (int i = 0; i < kRows; ++i) {
    auto s = enc.Insert(
        {storage::Value::String("family-" + std::to_string(i % 8)),
         storage::Value::Int64(i / 1024),
         storage::Value::Int64((i * 2654435761LL) % 4096),
         storage::Value::Double(i * 1.0000001)});
    if (!s.ok()) return 2;
  }
  if (!enc.Analyze().ok()) return 2;
  query::Catalog catalog;
  if (!catalog.Register(&enc).ok()) return 2;
  query::Planner planner(&catalog);

  if (!enc.BuildEncodedSegments().ok()) return 2;
  const storage::EncodedTableSnapshot* snap = enc.encoded();
  if (snap == nullptr) return 2;

  const char* tracked_env = std::getenv("DRUGTREE_ENCODED_TRACKED");
  if (tracked_env != nullptr && std::string(tracked_env) == "1") {
    // Tracker-overhead gate on the encoded path (obs_noop_ab.sh lane).
    double budget_pct = 5.0;
    if (const char* b = std::getenv("DRUGTREE_TRACKER_BUDGET_PCT")) {
      budget_pct = std::atof(b);
    }
    obs::MemoryTracker root("server");
    obs::MemoryTracker* session = root.GetOrCreateChild("interactive")
                                      ->GetOrCreateChild("session-1");
    const char* sql = kProbes[0].sql;
    double plain_best = 1e300, tracked_best = 1e300;
    size_t plain_rows = 0, tracked_rows = 0;
    for (int r = 0; r < kRounds; ++r) {
      plain_best = std::min(plain_best, RunOnce(&planner, sql, &plain_rows));
      obs::MemoryTracker query_tracker("query", session);
      tracked_best = std::min(
          tracked_best, RunOnce(&planner, sql, &tracked_rows, &query_tracker));
    }
    if (plain_rows != tracked_rows) {
      std::fprintf(stderr, "tracked/plain result mismatch: %zu vs %zu rows\n",
                   tracked_rows, plain_rows);
      return 2;
    }
    double overhead_pct = (tracked_best / plain_best - 1.0) * 100.0;
    std::printf(
        "encoded tracker smoke: dict-eq scan over %d rows (%zu out)\n"
        "  untracked: %8.3f ms\n"
        "  tracked:   %8.3f ms  (peak %lld bytes at root)\n"
        "  overhead: %+.1f%% (budget %.1f%%)\n",
        kRows, tracked_rows, plain_best * 1e3, tracked_best * 1e3,
        (long long)root.peak(), overhead_pct, budget_pct);
    if (overhead_pct > budget_pct) {
      std::fprintf(stderr, "FAIL: tracker overhead %.1f%% over budget %.1f%%\n",
                   overhead_pct, budget_pct);
      return 1;
    }
    std::printf("OK\n");
    return 0;
  }

  // --- compression report + gate -----------------------------------------
  std::printf("encoding smoke: %d rows, %zu segments, ratio %.2fx\n", kRows,
              snap->segments.size(), snap->CompressionRatio());
  const char* names[] = {"cat", "run", "narrow", "score"};
  double col_ratio[4] = {0, 0, 0, 0};
  for (size_t c = 0; c < 4; ++c) {
    uint64_t enc_bytes = 0, plain_bytes = 0;
    for (const auto& seg : snap->segments) {
      enc_bytes += seg.columns[c].EncodedBytes();
      plain_bytes += seg.columns[c].PlainBytes();
    }
    col_ratio[c] = enc_bytes > 0 ? static_cast<double>(plain_bytes) /
                                       static_cast<double>(enc_bytes)
                                 : 1.0;
    std::printf("  %-7s %-5s %8.2f KB -> %8.2f KB  (%5.2fx)\n", names[c],
                storage::ColumnEncodingName(snap->DominantEncoding(c)),
                plain_bytes / 1024.0, enc_bytes / 1024.0, col_ratio[c]);
  }
  bool ratio_ok = col_ratio[0] >= 2.0 && col_ratio[1] >= 2.0;
  if (!ratio_ok) {
    std::fprintf(stderr,
                 "FAIL: dict/rle compression below 2x (cat %.2fx run %.2fx)\n",
                 col_ratio[0], col_ratio[1]);
    return 1;
  }

  // --- selectivity sweep, encoded vs plain, interleaved best-of-N --------
  std::printf("\n  %-18s %10s %10s %9s %8s\n", "probe", "plain ms",
              "encoded ms", "speedup", "rows");
  bool throughput_ok = true;
  for (const Probe& probe : kProbes) {
    double plain_best = 1e300, enc_best = 1e300;
    size_t plain_rows = 0, enc_rows = 0;
    for (int r = 0; r < kRounds; ++r) {
      enc.DropEncodedSegments();
      plain_best = std::min(plain_best,
                            RunOnce(&planner, probe.sql, &plain_rows));
      if (!enc.BuildEncodedSegments().ok()) return 2;
      enc_best = std::min(enc_best, RunOnce(&planner, probe.sql, &enc_rows));
    }
    if (plain_rows != enc_rows) {
      std::fprintf(stderr, "%s: encoded/plain result mismatch: %zu vs %zu\n",
                   probe.name, enc_rows, plain_rows);
      return 2;
    }
    double speedup = plain_best / enc_best;
    std::printf("  %-18s %10.3f %10.3f %8.2fx %8zu%s\n", probe.name,
                plain_best * 1e3, enc_best * 1e3, speedup, enc_rows,
                probe.gated ? "  [gated >=1x]" : "");
    if (probe.gated && speedup < 1.0) throughput_ok = false;
  }
  if (!throughput_ok) {
    std::fprintf(stderr,
                 "FAIL: encoded scan slower than plain on a gated probe\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
