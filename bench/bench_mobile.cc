// E4 (Fig 3): mobile interaction response time vs link bandwidth — full-tree
// shipping vs progressive LOD (+ delta encoding). The poster's mobile claim:
// progressive transmission makes first-response time roughly
// bandwidth-independent while full shipping degrades with tree size / link.

#include <cstdio>

#include "bench_util.h"
#include "core/drugtree.h"
#include "mobile/session.h"
#include "util/string_util.h"
#include "util/clock.h"

namespace {

using namespace drugtree;

std::unique_ptr<core::DrugTree> MakeInstance(util::SimulatedClock* clock) {
  core::BuildOptions options;
  options.seed = 13;
  options.num_families = 8;
  options.taxa_per_family = 32;  // 256 leaves -> ~510 nodes
  options.num_ligands = 300;
  auto built = core::DrugTree::Build(options, clock);
  DT_CHECK(built.ok()) << built.status();
  return std::move(*built);
}

}  // namespace

int main(int argc, char** argv) {
  auto metrics_flag = drugtree::bench::ParseMetricsFlag(&argc, argv);
  bench::Banner("E4 (Fig 3)",
                "mobile interaction latency vs link bandwidth:\n"
                "full-tree shipping vs progressive LOD + delta encoding");
  util::SimulatedClock clock;
  auto dt = MakeInstance(&clock);
  std::printf("tree: %zu nodes, %zu leaves\n", dt->tree().NumNodes(),
              dt->tree().NumLeaves());

  // Sessions issue overlay queries through the serving layer (single-tenant
  // here), so admission + scheduling overhead shows up in these numbers.
  // Deadlines run on the real clock; a generous budget keeps E4 about
  // transmission behaviour, not load shedding.
  auto server = dt->MakeServer(server::ServerOptions(),
                               util::RealClock::Instance());
  constexpr int64_t kOverlayDeadlineMicros = 2'000'000;
  uint64_t next_session_id = 1;

  mobile::TraceParams tp;
  tp.num_actions = 40;
  auto trace = dt->MakeTrace(tp, 77);

  struct LinkPoint {
    const char* label;
    int64_t bandwidth;  // bytes/sec
    int64_t rtt_us;
  };
  LinkPoint links[] = {
      {"2G-edge (30 KB/s)", 30'000, 400'000},
      {"3G (125 KB/s)", 125'000, 250'000},
      {"3.5G (500 KB/s)", 500'000, 120'000},
      {"wifi (2.5 MB/s)", 2'500'000, 40'000},
      {"lan (50 MB/s)", 50'000'000, 2'000},
  };

  std::printf("\n%-20s %14s %14s %14s %12s\n", "link", "full mean(ms)",
              "lod mean(ms)", "lod p95(ms)", "bytes ratio");
  for (const auto& link : links) {
    auto run = [&](bool lod, bool delta) {
      mobile::DeviceProfile device = mobile::DeviceProfile::Phone3G();
      device.link.bandwidth_bytes_per_sec = link.bandwidth;
      device.link.latency_micros = link.rtt_us;
      device.link.jitter_fraction = 0;
      mobile::SessionOptions sopts;
      sopts.progressive_lod = lod;
      sopts.delta_encoding = delta;
      auto session = dt->MakeSession(device, sopts,
                                     query::PlannerOptions::Optimized(),
                                     server.get(), next_session_id++,
                                     kOverlayDeadlineMicros);
      auto report = session.Run(trace);
      DT_CHECK(report.ok()) << report.status();
      return *report;
    };
    auto full = run(false, false);
    auto lod = run(true, true);
    std::printf("%-20s %14.1f %14.1f %14.1f %11.1fx\n", link.label,
                full.latency_ms.Mean(), lod.latency_ms.Mean(),
                lod.latency_ms.Percentile(95),
                double(full.bytes_shipped) /
                    double(std::max<uint64_t>(1, lod.bytes_shipped)));
  }

  // Ablation at the 3G point: LOD and delta independently.
  std::printf("\n-- 3G ablation --\n");
  struct Config {
    const char* label;
    bool lod, delta;
  };
  struct FullConfig {
    const char* label;
    bool lod, delta;
    double boost;
  };
  for (const FullConfig& c :
       {FullConfig{"full shipping", false, false, 1.0},
        FullConfig{"LOD only", true, false, 1.0},
        FullConfig{"LOD + delta", true, true, 1.0},
        FullConfig{"LOD + delta + hot-boost", true, true, 4.0}}) {
    mobile::SessionOptions sopts;
    sopts.progressive_lod = c.lod;
    sopts.delta_encoding = c.delta;
    sopts.lod.annotation_boost = c.boost;
    sopts.lod.annotation_hot_threshold = 0.8;  // log10-count overlay scale
    auto session = dt->MakeSession(mobile::DeviceProfile::Phone3G(), sopts,
                                   query::PlannerOptions::Optimized(),
                                   server.get(), next_session_id++,
                                   kOverlayDeadlineMicros);
    auto report = session.Run(trace);
    DT_CHECK(report.ok());
    std::printf("%-24s mean=%7.1fms p95=%7.1fms bytes=%s nodes=%llu\n",
                c.label, report->latency_ms.Mean(),
                report->latency_ms.Percentile(95),
                util::HumanBytes(report->bytes_shipped).c_str(),
                (unsigned long long)report->nodes_shipped);
  }
  auto served = server->counters(server::QueryClass::kInteractive);
  std::printf("\nserving layer: %lld overlay queries admitted, "
              "%lld shed, %lld deadline-missed\n",
              (long long)served.admitted, (long long)served.shed,
              (long long)served.deadline_missed);
  std::printf("\nshape check: full shipping degrades as bandwidth shrinks;\n"
              "LOD keeps mean latency near the RTT floor at every link.\n");
  drugtree::bench::DumpMetrics(metrics_flag);
  return 0;
}
