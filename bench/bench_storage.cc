// E8 (Table 3): storage microbenchmarks — B+-tree vs hash index for point
// and range access, bloom-filter probe cost, and buffer-pool hit behaviour
// under skewed page access.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "storage/bloom.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/hash_index.h"
#include "storage/heap_file.h"

namespace {

using namespace drugtree;
using storage::BPlusTree;
using storage::HashIndex;
using storage::RowId;
using storage::Value;

struct Indexes {
  BPlusTree btree{64};
  HashIndex hash;
};

Indexes* GetIndexes(int n) {
  static std::map<int, Indexes*> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  auto* ix = new Indexes();
  util::Rng rng(11);
  std::vector<int64_t> keys;
  for (int i = 0; i < n; ++i) keys.push_back(i);
  rng.Shuffle(keys);
  for (int i = 0; i < n; ++i) {
    DT_CHECK(ix->btree.Insert(Value::Int64(keys[size_t(i)]), i).ok());
    DT_CHECK(ix->hash.Insert(Value::Int64(keys[size_t(i)]), i).ok());
  }
  cache[n] = ix;
  return ix;
}

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree tree(64);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(tree.Insert(Value::Int64(i), i));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BTreePointLookup(benchmark::State& state) {
  Indexes* ix = GetIndexes(static_cast<int>(state.range(0)));
  util::Rng rng(3);
  for (auto _ : state) {
    auto rows = ix->btree.Find(
        Value::Int64(rng.UniformRange(0, state.range(0) - 1)));
    benchmark::DoNotOptimize(rows);
  }
}

void BM_HashPointLookup(benchmark::State& state) {
  Indexes* ix = GetIndexes(static_cast<int>(state.range(0)));
  util::Rng rng(3);
  for (auto _ : state) {
    auto rows = ix->hash.Find(
        Value::Int64(rng.UniformRange(0, state.range(0) - 1)));
    benchmark::DoNotOptimize(rows);
  }
}

void BM_BTreeRangeScan100(benchmark::State& state) {
  Indexes* ix = GetIndexes(static_cast<int>(state.range(0)));
  util::Rng rng(5);
  for (auto _ : state) {
    int64_t lo = rng.UniformRange(0, state.range(0) - 101);
    auto rows = ix->btree.RangeScan(Value::Int64(lo), true,
                                    Value::Int64(lo + 99), true);
    benchmark::DoNotOptimize(rows);
  }
}

// Hash "range" baseline: 100 point probes (the only way a hash index can
// answer a range) — the reason pre-order intervals need the B+-tree.
void BM_HashRangeVia100Probes(benchmark::State& state) {
  Indexes* ix = GetIndexes(static_cast<int>(state.range(0)));
  util::Rng rng(5);
  for (auto _ : state) {
    int64_t lo = rng.UniformRange(0, state.range(0) - 101);
    std::vector<RowId> rows;
    for (int64_t k = lo; k < lo + 100; ++k) {
      for (RowId r : ix->hash.Find(Value::Int64(k))) rows.push_back(r);
    }
    benchmark::DoNotOptimize(rows);
  }
}

void BM_BloomProbe(benchmark::State& state) {
  static storage::BloomFilter* bloom = [] {
    auto* b = new storage::BloomFilter(100'000, 10);
    for (int i = 0; i < 100'000; ++i) b->Add(Value::Int64(i));
    return b;
  }();
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bloom->MayContain(Value::Int64(rng.UniformRange(0, 200'000))));
  }
}

void BM_BufferPoolSkewedReads(benchmark::State& state) {
  // 400 pages, pool of state.range(0) frames, Zipf access.
  static storage::DiskManager* disk = [] {
    auto dm = storage::DiskManager::Open("/tmp/drugtree_bench_storage.db");
    DT_CHECK(dm.ok());
    storage::DiskManager* d = dm->release();
    for (int i = 0; i < 400; ++i) DT_CHECK(d->AllocatePage().ok());
    return d;
  }();
  storage::BufferPool pool(disk, static_cast<size_t>(state.range(0)));
  // Pre-generate the Zipf access sequence (Zipf sampling is slow).
  static std::vector<storage::PageId> sequence = [] {
    util::Rng zipf_rng(13);
    std::vector<storage::PageId> s;
    for (int i = 0; i < 20000; ++i) {
      s.push_back(static_cast<storage::PageId>(zipf_rng.Zipf(400, 0.9)));
    }
    return s;
  }();
  size_t cursor = 0;
  for (auto _ : state) {
    auto page = pool.Fetch(sequence[cursor++ % sequence.size()]);
    DT_CHECK(page.ok());
    benchmark::DoNotOptimize(page->get()->data()[0]);
  }
  state.counters["hit_rate"] = benchmark::Counter(
      double(pool.hits()) / double(std::max<uint64_t>(1, pool.hits() +
                                                              pool.misses())));
}

}  // namespace

BENCHMARK(BM_BTreeInsert)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BTreePointLookup)->Arg(10000)->Arg(100000);
BENCHMARK(BM_HashPointLookup)->Arg(10000)->Arg(100000);
BENCHMARK(BM_BTreeRangeScan100)->Arg(10000)->Arg(100000);
BENCHMARK(BM_HashRangeVia100Probes)->Arg(10000)->Arg(100000);
BENCHMARK(BM_BloomProbe);
BENCHMARK(BM_BufferPoolSkewedReads)->Arg(40)->Arg(100)->Arg(400);

int main(int argc, char** argv) {
  drugtree::bench::Banner(
      "E8 (Table 3)",
      "storage microbenchmarks: B+-tree vs hash, bloom, buffer pool");
  auto metrics_flag = drugtree::bench::ParseMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::remove("/tmp/drugtree_bench_storage.db");
  drugtree::bench::DumpMetrics(metrics_flag);
  return 0;
}
