// Throughput gate for the vectorized engine: a scan-filter-project query
// over a 200k-row synthetic table, timed through the legacy row-at-a-time
// path (batch_size=1) and the columnar batch path (batch_size=1024).
//
// This is not a google-benchmark binary: it is a pass/fail smoke used by
// scripts/tier1.sh (release build) that exits non-zero if the batch engine
// is ever slower than the row engine on the workload vectorization is
// supposed to win. scripts/bench_baseline.sh records its output so the
// measured speedup lands in baselines/.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "query/planner.h"
#include "storage/table.h"

namespace {

using namespace drugtree;

constexpr int kRows = 200000;
constexpr int kRounds = 5;
const char* kSql =
    "SELECT w.k, w.v * 2.0 AS v2 FROM wide w "
    "WHERE w.v > 50.0 AND w.k < 50000";

double RunOnce(query::Planner* planner, size_t batch_size, size_t* rows_out) {
  query::PlannerOptions opts;  // optimized defaults
  opts.batch_size = batch_size;
  auto start = std::chrono::steady_clock::now();
  auto outcome = planner->Run(kSql, opts);
  auto stop = std::chrono::steady_clock::now();
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    std::exit(2);
  }
  *rows_out = outcome->result.rows.size();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main() {
  auto schema = storage::Schema::Create({
      {"k", storage::ValueType::kInt64, false},
      {"v", storage::ValueType::kDouble, false},
      {"s", storage::ValueType::kString, false},
  });
  if (!schema.ok()) return 2;
  storage::Table wide("wide", *schema);
  for (int i = 0; i < kRows; ++i) {
    auto s = wide.Insert({storage::Value::Int64(i),
                          storage::Value::Double((i * 37) % 200),
                          storage::Value::String("tag" + std::to_string(i % 8))});
    if (!s.ok()) return 2;
  }
  if (!wide.Analyze().ok()) return 2;
  query::Catalog catalog;
  if (!catalog.Register(&wide).ok()) return 2;
  query::Planner planner(&catalog);

  // Interleaved best-of-N so one-off stalls don't skew either side.
  double row_best = 1e300, batch_best = 1e300;
  size_t row_rows = 0, batch_rows = 0;
  for (int r = 0; r < kRounds; ++r) {
    row_best = std::min(row_best, RunOnce(&planner, 1, &row_rows));
    batch_best = std::min(batch_best, RunOnce(&planner, 1024, &batch_rows));
  }
  if (row_rows != batch_rows) {
    std::fprintf(stderr, "row/batch result mismatch: %zu vs %zu rows\n",
                 row_rows, batch_rows);
    return 2;
  }

  double speedup = row_best / batch_best;
  std::printf(
      "vectorized smoke: scan-filter-project over %d rows (%zu out)\n"
      "  row engine   (batch=1):    %8.3f ms  (%6.1f Mrows/s)\n"
      "  batch engine (batch=1024): %8.3f ms  (%6.1f Mrows/s)\n"
      "  speedup: %.2fx\n",
      kRows, row_rows, row_best * 1e3, kRows / row_best / 1e6,
      batch_best * 1e3, kRows / batch_best / 1e6, speedup);
  if (speedup < 1.0) {
    std::fprintf(stderr,
                 "FAIL: batch engine slower than row engine (%.2fx)\n",
                 speedup);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
