// Throughput gate for the vectorized engine: a scan-filter-project query
// over a 200k-row synthetic table, timed through the legacy row-at-a-time
// path (batch_size=1) and the columnar batch path (batch_size=1024).
//
// This is not a google-benchmark binary: it is a pass/fail smoke used by
// scripts/tier1.sh (release build) that exits non-zero if the batch engine
// is ever slower than the row engine on the workload vectorization is
// supposed to win. scripts/bench_baseline.sh records its output so the
// measured speedup lands in baselines/.
//
// With DRUGTREE_SMOKE_TRACKED=1 it instead gates the memory-tracker fast
// path: the same batch query runs interleaved with and without a
// per-query obs::MemoryTracker attached, and the run fails if tracking
// costs more than DRUGTREE_TRACKER_BUDGET_PCT percent (default 5).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/resource_tracker.h"
#include "query/planner.h"
#include "query/query_context.h"
#include "storage/table.h"

namespace {

using namespace drugtree;

constexpr int kRows = 200000;
constexpr int kRounds = 5;
const char* kSql =
    "SELECT w.k, w.v * 2.0 AS v2 FROM wide w "
    "WHERE w.v > 50.0 AND w.k < 50000";

double RunOnce(query::Planner* planner, size_t batch_size, size_t* rows_out,
               obs::MemoryTracker* tracker = nullptr) {
  query::PlannerOptions opts;  // optimized defaults
  opts.batch_size = batch_size;
  query::QueryContext context;
  context.memory = tracker;
  auto start = std::chrono::steady_clock::now();
  auto outcome = planner->Run(kSql, opts, tracker ? &context : nullptr);
  auto stop = std::chrono::steady_clock::now();
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    std::exit(2);
  }
  *rows_out = outcome->result.rows.size();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main() {
  auto schema = storage::Schema::Create({
      {"k", storage::ValueType::kInt64, false},
      {"v", storage::ValueType::kDouble, false},
      {"s", storage::ValueType::kString, false},
  });
  if (!schema.ok()) return 2;
  storage::Table wide("wide", *schema);
  for (int i = 0; i < kRows; ++i) {
    auto s = wide.Insert({storage::Value::Int64(i),
                          storage::Value::Double((i * 37) % 200),
                          storage::Value::String("tag" + std::to_string(i % 8))});
    if (!s.ok()) return 2;
  }
  if (!wide.Analyze().ok()) return 2;
  query::Catalog catalog;
  if (!catalog.Register(&wide).ok()) return 2;
  query::Planner planner(&catalog);

  const char* tracked_env = std::getenv("DRUGTREE_SMOKE_TRACKED");
  if (tracked_env != nullptr && std::string(tracked_env) == "1") {
    // Tracker fast-path gate: identical batch query with and without a
    // hierarchical tracker (three levels, like the serving path) attached.
    double budget_pct = 5.0;
    if (const char* b = std::getenv("DRUGTREE_TRACKER_BUDGET_PCT")) {
      budget_pct = std::atof(b);
    }
    obs::MemoryTracker root("server");
    obs::MemoryTracker* session = root.GetOrCreateChild("interactive")
                                      ->GetOrCreateChild("session-1");
    double plain_best = 1e300, tracked_best = 1e300;
    size_t plain_rows = 0, tracked_rows = 0;
    for (int r = 0; r < kRounds; ++r) {
      plain_best = std::min(plain_best, RunOnce(&planner, 1024, &plain_rows));
      obs::MemoryTracker query_tracker("query", session);
      tracked_best = std::min(
          tracked_best, RunOnce(&planner, 1024, &tracked_rows, &query_tracker));
    }
    if (plain_rows != tracked_rows) {
      std::fprintf(stderr, "tracked/plain result mismatch: %zu vs %zu rows\n",
                   tracked_rows, plain_rows);
      return 2;
    }
    double overhead_pct = (tracked_best / plain_best - 1.0) * 100.0;
    std::printf(
        "tracker smoke: batch scan-filter-project over %d rows (%zu out)\n"
        "  untracked: %8.3f ms\n"
        "  tracked:   %8.3f ms  (peak %lld bytes at root)\n"
        "  overhead: %+.1f%% (budget %.1f%%)\n",
        kRows, tracked_rows, plain_best * 1e3, tracked_best * 1e3,
        (long long)root.peak(), overhead_pct, budget_pct);
    if (overhead_pct > budget_pct) {
      std::fprintf(stderr, "FAIL: tracker overhead %.1f%% over budget %.1f%%\n",
                   overhead_pct, budget_pct);
      return 1;
    }
    if (root.peak() <= 0) {
      std::fprintf(stderr, "FAIL: tracked run charged nothing\n");
      return 1;
    }
    std::printf("OK\n");
    return 0;
  }

  // Interleaved best-of-N so one-off stalls don't skew either side.
  double row_best = 1e300, batch_best = 1e300;
  size_t row_rows = 0, batch_rows = 0;
  for (int r = 0; r < kRounds; ++r) {
    row_best = std::min(row_best, RunOnce(&planner, 1, &row_rows));
    batch_best = std::min(batch_best, RunOnce(&planner, 1024, &batch_rows));
  }
  if (row_rows != batch_rows) {
    std::fprintf(stderr, "row/batch result mismatch: %zu vs %zu rows\n",
                 row_rows, batch_rows);
    return 2;
  }

  double speedup = row_best / batch_best;
  std::printf(
      "vectorized smoke: scan-filter-project over %d rows (%zu out)\n"
      "  row engine   (batch=1):    %8.3f ms  (%6.1f Mrows/s)\n"
      "  batch engine (batch=1024): %8.3f ms  (%6.1f Mrows/s)\n"
      "  speedup: %.2fx\n",
      kRows, row_rows, row_best * 1e3, kRows / row_best / 1e6,
      batch_best * 1e3, kRows / batch_best / 1e6, speedup);
  if (speedup < 1.0) {
    std::fprintf(stderr,
                 "FAIL: batch engine slower than row engine (%.2fx)\n",
                 speedup);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
