// E2 (Table 1): optimizer ablation on the canonical overlay screening join
//   proteins ⋈ activities ⋈ ligands, filtered to a clade and an affinity
//   threshold.
// Each row of the table toggles one optimization class off, isolating its
// contribution ("applies standards as well as uses novel mechanisms").

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "core/drugtree.h"
#include "core/workload.h"
#include "util/clock.h"

namespace {

using namespace drugtree;

core::DrugTree* GetInstance() {
  static core::DrugTree* dt = [] {
    static util::SimulatedClock clock;
    core::BuildOptions options;
    options.seed = 31;
    options.num_families = 6;
    options.taxa_per_family = 24;
    options.num_ligands = 500;
    options.activities_per_protein = 8;
    auto built = core::DrugTree::Build(options, &clock);
    DT_CHECK(built.ok()) << built.status();
    return built->release();
  }();
  return dt;
}

std::vector<std::string> ScreeningQueries() {
  core::DrugTree* dt = GetInstance();
  core::WorkloadParams wp;
  wp.num_queries = 16;
  wp.w_subtree_proteins = 0;
  wp.w_subtree_overlay = 0;
  wp.w_screening_join = 1;
  wp.w_family_aggregate = 0;
  wp.w_ancestor_path = 0;
  util::Rng rng(5);
  std::vector<std::string> out;
  for (auto& q :
       core::GenerateWorkload(dt->tree(), dt->tree_index(), wp, &rng)) {
    out.push_back(q.sql);
  }
  return out;
}

void RunConfig(benchmark::State& state, query::PlannerOptions options) {
  core::DrugTree* dt = GetInstance();
  static const std::vector<std::string> queries = ScreeningQueries();
  size_t cursor = 0;
  int64_t scanned = 0, fetched = 0, evals = 0, runs = 0;
  for (auto _ : state) {
    auto outcome = dt->Query(queries[cursor++ % queries.size()], options);
    DT_CHECK(outcome.ok()) << outcome.status();
    scanned += outcome->stats.rows_scanned;
    fetched += outcome->stats.rows_index_fetched;
    evals += outcome->stats.predicate_evals;
    ++runs;
    benchmark::DoNotOptimize(outcome->result);
  }
  state.counters["rows_scanned"] = benchmark::Counter(double(scanned) / runs);
  state.counters["idx_fetched"] = benchmark::Counter(double(fetched) / runs);
  state.counters["pred_evals"] = benchmark::Counter(double(evals) / runs);
}

void BM_AllOff(benchmark::State& state) {
  RunConfig(state, query::PlannerOptions::Naive());
}

void BM_OnlyPushdown(benchmark::State& state) {
  query::PlannerOptions o = query::PlannerOptions::Naive();
  o.optimizer.enable_pushdown = true;
  RunConfig(state, o);
}

void BM_OnlyTreeRewriteAndIndex(benchmark::State& state) {
  query::PlannerOptions o = query::PlannerOptions::Naive();
  o.optimizer.enable_pushdown = true;  // rewrite needs predicates at scans
  o.optimizer.enable_tree_rewrite = true;
  o.enable_index_selection = true;
  RunConfig(state, o);
}

void BM_OnlyJoinReorder(benchmark::State& state) {
  query::PlannerOptions o = query::PlannerOptions::Naive();
  o.optimizer.enable_join_reorder = true;
  o.enable_hash_join = true;
  RunConfig(state, o);
}

void BM_AllOnNoHashJoin(benchmark::State& state) {
  query::PlannerOptions o = query::PlannerOptions::Optimized();
  o.enable_hash_join = false;
  RunConfig(state, o);
}

void BM_AllOn(benchmark::State& state) {
  RunConfig(state, query::PlannerOptions::Optimized());
}

// Vectorization ablation (the row-vs-batch axis): identical fully optimized
// plans, but driven through the legacy row-at-a-time volcano path instead of
// the columnar batch pipeline. Compare against BM_AllOn (batch_size=1024).
void BM_AllOnRowEngine(benchmark::State& state) {
  query::PlannerOptions o = query::PlannerOptions::Optimized();
  o.batch_size = 1;
  RunConfig(state, o);
}

}  // namespace

BENCHMARK(BM_AllOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlyPushdown)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlyTreeRewriteAndIndex)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlyJoinReorder)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllOnNoHashJoin)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllOnRowEngine)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllOn)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  drugtree::bench::Banner(
      "E2 (Table 1)",
      "optimizer ablation on the 3-way overlay screening join\n"
      "(144 proteins x ~1200 activities x 500 ligands)");
  auto metrics_flag = drugtree::bench::ParseMetricsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  drugtree::bench::DumpMetrics(metrics_flag);
  return 0;
}
